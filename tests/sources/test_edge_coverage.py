"""Edge and error paths of the source layer.

Everything here is small and surgical: spec validation, the remaining
coercion corners, the :class:`SourceDatabase` facade methods the parity
and fault suites do not reach, and the manifest loader's rejection
paths.  Together with those suites this holds the package to the CI
coverage floor.
"""

import datetime

import pytest

from repro.errors import (
    InstanceError,
    SourceConfigError,
    SourceFormatError,
    SourceUnavailableError,
    UnknownClassError,
)
from repro.federation.mappings import FunctionMapping
from repro.federation.relational import Column, ForeignKey
from repro.model.datatypes import DataType
from repro.model.oids import OID
from repro.sources import (
    ColumnMapping,
    CsvSourceAdapter,
    JsonSourceAdapter,
    LinearMapping,
    MemorySourceAdapter,
    RelationSpec,
    SourceAdapter,
    coerce_value,
)
from repro.sources.base import declared_relations
from repro.sources.manifest import (
    build_adapter,
    load_source_federation,
    mapping_from_json,
    mapping_to_json,
    write_manifest,
)


def _spec(name="person"):
    return RelationSpec(
        name,
        (Column("ssn", DataType.STRING), Column("dept", DataType.STRING)),
        foreign_keys=(ForeignKey("dept", "department", "code"),),
    )


def _flat_spec(name="person"):
    return RelationSpec(name, (Column("ssn", DataType.STRING),))


class TestRelationSpecValidation:
    def test_empty_name_is_rejected(self):
        with pytest.raises(SourceConfigError):
            RelationSpec("", (Column("a"),))

    def test_no_columns_is_rejected(self):
        with pytest.raises(SourceConfigError, match="at least one column"):
            RelationSpec("r", ())

    def test_duplicate_columns_are_rejected(self):
        with pytest.raises(SourceConfigError, match="duplicate"):
            RelationSpec("r", (Column("a"), Column("a")))

    def test_primary_key_must_be_a_column(self):
        with pytest.raises(SourceConfigError, match="primary key"):
            RelationSpec("r", (Column("a"),), primary_key="b")

    def test_fk_column_must_be_a_column(self):
        with pytest.raises(SourceConfigError, match="FK column"):
            RelationSpec(
                "r", (Column("a"),),
                foreign_keys=(ForeignKey("b", "t", "c"),),
            )

    def test_unknown_column_lookup_is_typed(self):
        with pytest.raises(SourceConfigError, match="no column"):
            _spec().column("nope")

    def test_declared_relations_indexes_by_name(self):
        spec = _spec()
        assert declared_relations([spec]) == {"person": spec}


class TestAdapterContract:
    def test_empty_source_name_is_rejected(self):
        with pytest.raises(SourceConfigError):
            MemorySourceAdapter("", {}, (_spec(),))

    def test_base_storage_hooks_are_abstract(self):
        adapter = SourceAdapter("base")
        with pytest.raises(NotImplementedError):
            adapter.discover()
        with pytest.raises(NotImplementedError):
            adapter.fetch_rows(_spec())
        with pytest.raises(NotImplementedError):
            adapter.source_version()

    def test_relationless_source_is_a_config_error(self):
        adapter = MemorySourceAdapter("m", {}, ())
        with pytest.raises(SourceConfigError, match="no relations"):
            adapter.relations()

    def test_linear_mapping_repr_names_the_function(self):
        assert "2.54" in repr(LinearMapping(a=2.54))
        assert "int" in repr(LinearMapping(a=0.01, as_int=True))


class TestRemainingCoercions:
    def test_real_and_integer_reject_foreign_objects(self):
        kw = dict(source="s", relation="r", column="c")
        with pytest.raises(SourceFormatError):
            coerce_value(["list"], DataType.REAL, **kw)
        with pytest.raises(SourceFormatError):
            coerce_value(object(), DataType.INTEGER, **kw)
        with pytest.raises(SourceFormatError):
            coerce_value(True, DataType.REAL, **kw)

    def test_string_accepts_dates_and_rejects_collections(self):
        kw = dict(source="s", relation="r", column="c")
        assert (
            coerce_value(datetime.date(2024, 5, 1), DataType.STRING, **kw)
            == "2024-05-01"
        )
        with pytest.raises(SourceFormatError):
            coerce_value(["x"], DataType.STRING, **kw)

    def test_date_accepts_datetime_and_date(self):
        kw = dict(source="s", relation="r", column="c")
        moment = datetime.datetime(2024, 5, 1, 12, 30)
        assert coerce_value(moment, DataType.DATE, **kw) == moment.date()
        today = datetime.date(2024, 5, 2)
        assert coerce_value(today, DataType.DATE, **kw) is today
        with pytest.raises(SourceFormatError):
            coerce_value(3.5, DataType.DATE, **kw)

    def test_boolean_rejects_floats(self):
        with pytest.raises(SourceFormatError):
            coerce_value(1.0, DataType.BOOLEAN, source="s", relation="r", column="c")


class TestStoreFacade:
    def _store(self):
        return MemorySourceAdapter(
            "m",
            {
                "department": [
                    {"code": "d0", "title": "x"},
                    {"code": "d1", "title": None},
                ],
                "person": [
                    {"ssn": "1", "dept": "d0"},
                    {"ssn": "2", "dept": None},
                ],
            },
            (
                RelationSpec(
                    "department",
                    (Column("code"), Column("title")),
                ),
                _spec(),
            ),
            agent="agent-m",
            system="component",
        ).database()

    def test_unknown_class_raises(self):
        with pytest.raises(UnknownClassError):
            self._store().direct_extent("nope")

    def test_select_filters_the_extent(self):
        store = self._store()
        chosen = store.select("person", lambda i: i.get("ssn") == "2")
        assert [i.get("ssn") for i in chosen] == ["2"]

    def test_follow_resolves_and_tolerates_null_fks(self):
        store = self._store()
        linked, unlinked = store.extent("person")
        (department,) = store.follow(linked, "dept")
        assert department.get("code") == "d0"
        assert store.follow(unlinked, "dept") == []

    def test_by_oid_miss_is_typed(self):
        store = self._store()
        missing = OID("agent-m", "component", "m", "person", 99)
        assert store.get(missing) is None
        with pytest.raises(InstanceError):
            store.by_oid(missing)
        foreign = OID("agent-m", "component", "m", "no_relation", 1)
        assert store.get(foreign) is None

    def test_iteration_and_len_cover_every_relation(self):
        store = self._store()
        assert len(store) == 4
        assert len(list(store)) == 4

    def test_value_set_skips_nulls(self):
        assert self._store().value_set("department", "title") == {"x"}


class TestWeaklyTypedEdges:
    def test_empty_csv_file_has_no_header(self, tmp_path):
        (tmp_path / "person.csv").write_text("", encoding="utf-8")
        adapter = CsvSourceAdapter(tmp_path)
        with pytest.raises(SourceFormatError, match="no header"):
            adapter.relations()
        declared = CsvSourceAdapter(tmp_path, relations=(_flat_spec(),))
        with pytest.raises(SourceFormatError, match="no header"):
            declared.scan("person")

    def test_empty_csv_directory_is_a_config_error(self, tmp_path):
        with pytest.raises(SourceConfigError, match="holds no"):
            CsvSourceAdapter(tmp_path).relations()

    def test_unreadable_csv_file_is_unavailable(self, tmp_path):
        (tmp_path / "person.csv").mkdir()  # a directory, not a file
        adapter = CsvSourceAdapter(tmp_path)
        with pytest.raises(SourceUnavailableError):
            adapter.relations()
        declared = CsvSourceAdapter(tmp_path, relations=(_flat_spec(),))
        with pytest.raises(SourceUnavailableError):
            declared.scan("person")

    def test_missing_json_directory_is_unavailable(self, tmp_path):
        with pytest.raises(SourceUnavailableError):
            JsonSourceAdapter(tmp_path / "absent").relations()

    def test_empty_json_directory_is_a_config_error(self, tmp_path):
        with pytest.raises(SourceConfigError, match="holds no"):
            JsonSourceAdapter(tmp_path).relations()

    def test_empty_json_array_cannot_infer_columns(self, tmp_path):
        (tmp_path / "person.json").write_text("[]", encoding="utf-8")
        with pytest.raises(SourceFormatError, match="no records"):
            JsonSourceAdapter(tmp_path).relations()

    def test_unreadable_json_file_is_unavailable(self, tmp_path):
        (tmp_path / "person.json").mkdir()
        declared = JsonSourceAdapter(tmp_path, relations=(_flat_spec(),))
        with pytest.raises(SourceUnavailableError):
            declared.scan("person")

    def test_json_type_inference_covers_every_primitive(self, tmp_path):
        (tmp_path / "person.json").write_text(
            '[{"i": 1, "f": 1.5, "b": true, "s": "x", "n": null},'
            ' {"n": "late"}]',
            encoding="utf-8",
        )
        spec = {s.name: s for s in JsonSourceAdapter(tmp_path).relations()}["person"]
        types = {c.name: c.data_type for c in spec.columns}
        assert types == {
            "i": DataType.INTEGER,
            "f": DataType.REAL,
            "b": DataType.BOOLEAN,
            "s": DataType.STRING,
            "n": DataType.STRING,  # first non-null decides
        }

    def test_json_non_object_record_fails_declared_fetch(self, tmp_path):
        (tmp_path / "person.json").write_text(
            '[{"ssn": "1"}, 42]', encoding="utf-8"
        )
        adapter = JsonSourceAdapter(tmp_path, relations=(_flat_spec(),))
        with pytest.raises(SourceFormatError, match="not an object"):
            adapter.scan("person")


class TestManifestRejections:
    def test_relation_from_json_rejects_malformed_payloads(self):
        from repro.sources.manifest import relation_from_json

        with pytest.raises(SourceConfigError, match="bad relation spec"):
            relation_from_json({"columns": [["a", "string"]]})
        with pytest.raises(SourceConfigError, match="bad relation spec"):
            relation_from_json({"name": "r", "columns": [["a", "no-such-type"]]})

    def test_mapping_from_json_rejects_unknown_kind_and_missing_column(self):
        with pytest.raises(SourceConfigError, match="unknown mapping kind"):
            mapping_from_json({"column": "c", "kind": "quadratic"})
        with pytest.raises(SourceConfigError, match="names no column"):
            mapping_from_json({"kind": "default"})

    def test_mapping_to_json_rejects_opaque_callables(self):
        opaque = ColumnMapping("c", mapping=FunctionMapping(lambda v: v))
        with pytest.raises(SourceConfigError, match="no manifest form"):
            mapping_to_json(opaque)

    def test_build_adapter_requires_schema_and_path(self, tmp_path):
        with pytest.raises(SourceConfigError, match="names no schema"):
            build_adapter(tmp_path, {"kind": "csv"})
        with pytest.raises(SourceConfigError, match="names no path"):
            build_adapter(tmp_path, {"kind": "csv", "schema": "s"})

    def test_manifest_must_hold_a_sources_array(self, tmp_path):
        (tmp_path / "federation.json").write_text("[]", encoding="utf-8")
        with pytest.raises(SourceConfigError, match="sources"):
            load_source_federation(tmp_path)

    def test_source_entries_must_be_objects(self, tmp_path):
        (tmp_path / "federation.json").write_text(
            '{"sources": ["nope"]}', encoding="utf-8"
        )
        with pytest.raises(SourceConfigError, match="bad source entry"):
            load_source_federation(tmp_path)

    def test_empty_sources_are_rejected(self, tmp_path):
        (tmp_path / "federation.json").write_text(
            '{"sources": []}', encoding="utf-8"
        )
        with pytest.raises(SourceConfigError, match="declares no sources"):
            load_source_federation(tmp_path)

    def test_missing_assertion_file_is_unavailable(self, tmp_path):
        (tmp_path / "s").mkdir()
        (tmp_path / "s" / "person.json").write_text(
            '[{"ssn": "1"}]', encoding="utf-8"
        )
        (tmp_path / "federation.json").write_text(
            '{"assertions": "gone.dsl", "sources": '
            '[{"schema": "s", "kind": "json", "path": "s"}]}',
            encoding="utf-8",
        )
        with pytest.raises(SourceUnavailableError, match="gone.dsl"):
            load_source_federation(tmp_path)

    def test_write_manifest_without_assertions_omits_the_key(self, tmp_path):
        path = write_manifest(
            tmp_path, [{"schema": "s", "kind": "json", "path": "s"}]
        )
        assert "assertions" not in path.read_text(encoding="utf-8")
