"""Golden-file tests for the §3 data mappings ``F^A_{DB_i,B}``.

One hand-written source exercises every mapping form the paper names —
identity with a default fill, fuzzy triple matching (an unmatched value
"becomes Null" and is then filled), and a conversion function — plus the
NULL-row and type-coercion edges the weakly-typed storage formats force.
The committed ``golden/mappings.json`` pins the exact translated
instances; any drift in coercion, translation order or default filling
fails the comparison.
"""

import datetime
import json
from pathlib import Path

import pytest

from repro.errors import SourceFormatError
from repro.federation.mappings import TripleMapping
from repro.federation.relational import Column
from repro.model.datatypes import DataType
from repro.sources import (
    ColumnMapping,
    CsvSourceAdapter,
    JsonSourceAdapter,
    LinearMapping,
    RelationSpec,
    coerce_value,
)

GOLDEN = Path(__file__).parent / "golden" / "mappings.json"

RELATIONS = (
    RelationSpec(
        "reading",
        (
            Column("id", DataType.INTEGER),
            Column("label", DataType.STRING),
            Column("grade", DataType.STRING),
            Column("inches", DataType.REAL),
            Column("flag", DataType.BOOLEAN),
            Column("taken", DataType.DATE),
        ),
        primary_key="id",
    ),
)

MAPPINGS = {
    "reading": (
        # identity mapping, NULL filled with a default value
        ColumnMapping("label", default="n/a"),
        # fuzzy match: STRING storage -> INTEGER attribute; an unmatched
        # value becomes Null (paper §3) and is then default-filled
        ColumnMapping(
            "grade",
            attribute="score",
            mapping=TripleMapping(
                ((1, "poor", 1.0), (2, "fair", 0.9), (3, "good", 1.0)),
                threshold=0.5,
            ),
            default=0,
            data_type=DataType.INTEGER,
        ),
        # conversion function: inches -> centimetres (y = 2.54 * x)
        ColumnMapping("inches", attribute="cm", mapping=LinearMapping(a=2.54)),
    ),
}

CSV_TEXT = """id,label,grade,inches,flag,taken
1,,good,2.0,true,2024-01-02
2,ok,mystery,,0,
3,x,fair,1.0,f,2023-12-31
4,  spaced  ,poor,  3.5  ,yes,2024-06-30
"""

JSON_RECORDS = [
    {"id": 1, "label": None, "grade": "good", "inches": 2.0, "flag": True,
     "taken": "2024-01-02"},
    {"id": 2, "label": "ok", "grade": "mystery", "inches": None, "flag": False,
     "taken": None},
    {"id": 3, "label": "x", "grade": "fair", "inches": 1.0, "flag": False,
     "taken": "2023-12-31"},
    {"id": 4, "label": "  spaced  ", "grade": "poor", "inches": 3.5,
     "flag": True, "taken": "2024-06-30"},
]


def _dump(instances):
    out = []
    for instance in instances:
        attributes = {
            name: value.isoformat() if isinstance(value, datetime.date) else value
            for name, value in sorted(instance.attributes.items())
        }
        out.append({"oid": str(instance.oid), "attributes": attributes})
    return out


def _csv_adapter(tmp_path, text=CSV_TEXT):
    (tmp_path / "reading.csv").write_text(text, encoding="utf-8")
    return CsvSourceAdapter(
        tmp_path, name="golden", agent="agent-golden", system="component",
        relations=RELATIONS, mappings=MAPPINGS,
    )


def _json_adapter(tmp_path, records=JSON_RECORDS):
    (tmp_path / "reading.json").write_text(json.dumps(records), encoding="utf-8")
    return JsonSourceAdapter(
        tmp_path, name="golden", agent="agent-golden", system="component",
        relations=RELATIONS, mappings=MAPPINGS,
    )


class TestGoldenMappings:
    def test_csv_scan_matches_golden(self, tmp_path):
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert _dump(_csv_adapter(tmp_path).scan("reading")) == golden["reading"]

    def test_json_scan_matches_golden(self, tmp_path):
        """Native-typed JSON storage lands on the same golden instances."""
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert _dump(_json_adapter(tmp_path).scan("reading")) == golden["reading"]

    def test_mapped_schema_reflects_attribute_renames_and_types(self, tmp_path):
        schema = _csv_adapter(tmp_path).schema()
        reading = schema.effective_class("reading")
        names = {attribute.name for attribute in reading.attributes}
        assert names == {"id", "label", "score", "cm", "flag", "taken"}
        by_name = {a.name: a.value_type for a in reading.attributes}
        assert by_name["score"] is DataType.INTEGER  # STRING storage, mapped
        assert by_name["cm"] is DataType.REAL


class TestMappingEdges:
    def test_unmatched_fuzzy_value_becomes_default(self, tmp_path):
        rows = _dump(_csv_adapter(tmp_path).scan("reading"))
        assert rows[1]["attributes"]["score"] == 0  # "mystery" matched nothing

    def test_null_row_survives_every_mapping(self, tmp_path):
        rows = _dump(_json_adapter(tmp_path).scan("reading"))
        assert rows[1]["attributes"]["cm"] is None
        assert rows[1]["attributes"]["taken"] is None

    def test_mapped_value_must_conform_to_target_type(self, tmp_path):
        """A translation violating the declared attribute type is typed."""
        bad = {
            "reading": (
                ColumnMapping(
                    "inches",
                    attribute="cm",
                    mapping=LinearMapping(a=2.54),  # REAL result...
                    data_type=DataType.DATE,  # ...cannot be a DATE
                ),
            )
        }
        (tmp_path / "reading.csv").write_text(CSV_TEXT, encoding="utf-8")
        adapter = CsvSourceAdapter(
            tmp_path, name="golden", relations=RELATIONS, mappings=bad
        )
        with pytest.raises(SourceFormatError, match="does not conform"):
            adapter.scan("reading")

    def test_missing_declared_column_is_a_format_error(self, tmp_path):
        (tmp_path / "reading.csv").write_text(
            "id,label\n1,ok\n", encoding="utf-8"
        )
        adapter = CsvSourceAdapter(
            tmp_path, name="golden", relations=RELATIONS, mappings=MAPPINGS
        )
        with pytest.raises(SourceFormatError, match="grade"):
            adapter.scan("reading")

    def test_mapping_for_unknown_column_is_a_config_error(self, tmp_path):
        from repro.errors import SourceConfigError

        adapter = _csv_adapter(tmp_path)
        adapter._mappings["reading"] = (ColumnMapping("nonexistent"),)
        with pytest.raises(SourceConfigError, match="nonexistent"):
            adapter.scan("reading")


class TestCoercionEdges:
    def test_integer_edges(self):
        kw = dict(source="s", relation="r", column="c")
        assert coerce_value("  7 ", DataType.INTEGER, **kw) == 7
        assert coerce_value(3.0, DataType.INTEGER, **kw) == 3
        with pytest.raises(SourceFormatError):
            coerce_value(3.5, DataType.INTEGER, **kw)
        with pytest.raises(SourceFormatError):
            coerce_value(True, DataType.INTEGER, **kw)  # bool is not an int

    def test_boolean_edges(self):
        kw = dict(source="s", relation="r", column="c")
        assert coerce_value("YES", DataType.BOOLEAN, **kw) is True
        assert coerce_value(0, DataType.BOOLEAN, **kw) is False
        with pytest.raises(SourceFormatError):
            coerce_value(2, DataType.BOOLEAN, **kw)
        with pytest.raises(SourceFormatError):
            coerce_value("maybe", DataType.BOOLEAN, **kw)

    def test_string_and_character_edges(self):
        kw = dict(source="s", relation="r", column="c")
        assert coerce_value(12, DataType.STRING, **kw) == "12"
        assert coerce_value(True, DataType.STRING, **kw) == "true"
        assert coerce_value("x", DataType.CHARACTER, **kw) == "x"
        with pytest.raises(SourceFormatError):
            coerce_value("xy", DataType.CHARACTER, **kw)

    def test_date_edges(self):
        kw = dict(source="s", relation="r", column="c")
        assert coerce_value(
            "2024-02-29", DataType.DATE, **kw
        ) == datetime.date(2024, 2, 29)
        with pytest.raises(SourceFormatError):
            coerce_value("not-a-date", DataType.DATE, **kw)

    def test_none_passes_through_every_type(self):
        kw = dict(source="s", relation="r", column="c")
        for data_type in DataType:
            assert coerce_value(None, data_type, **kw) is None
