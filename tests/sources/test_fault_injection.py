"""Adapter fault injection: broken storage must fail typed, not hang.

A federation of autonomous sources *will* meet a locked or corrupt
sqlite file, a truncated CSV row, a malformed JSON record.  Each must
surface as a typed :class:`~repro.errors.SourceError` — a
``TransportError`` subclass — so the runtime's existing retry, circuit
breaker, ``lost_granules`` accounting and PARTIAL/ERROR policies apply
unchanged; nothing may hang and nothing may be silently dropped.
"""

import sqlite3
import time

import pytest

from repro.errors import (
    PartialResultError,
    SourceConfigError,
    SourceError,
    SourceFormatError,
    SourceUnavailableError,
    TransportError,
)
from repro.runtime import RuntimePolicy
from repro.sources import CsvSourceAdapter, JsonSourceAdapter, SqliteSourceAdapter
from repro.workloads import generate_source_federation

from .conftest import disk_databases, integrated_fsm

QUERY = "person() -> ssn"


def _sqlite_path(tmp_path, dataset):
    from repro.workloads import write_sqlite

    return write_sqlite(dataset, tmp_path)["university"]


@pytest.fixture
def dataset():
    return generate_source_federation(
        people_per_schema=8, records_per_person=1, seed=5
    )


class TestErrorTaxonomy:
    """Source failures are transport failures — the executor's contract."""

    def test_source_errors_are_transport_errors(self):
        assert issubclass(SourceError, TransportError)
        assert issubclass(SourceUnavailableError, SourceError)
        assert issubclass(SourceFormatError, SourceError)
        assert not issubclass(SourceConfigError, TransportError)

    def test_format_error_carries_row_context(self):
        error = SourceFormatError("db1", "person", "row 3 is bad")
        assert error.source == "db1"
        assert error.relation == "person"
        assert "person" in str(error) and "row 3 is bad" in str(error)


class TestSqliteFaults:
    def test_missing_file_is_unavailable(self, tmp_path):
        adapter = SqliteSourceAdapter(tmp_path / "nope.db")
        with pytest.raises(SourceUnavailableError, match="nope.db"):
            adapter.relations()

    def test_corrupt_file_is_unavailable(self, tmp_path, dataset):
        path = _sqlite_path(tmp_path, dataset)
        path.write_bytes(b"this is not a sqlite database at all" * 40)
        adapter = SqliteSourceAdapter(path)
        with pytest.raises(SourceUnavailableError):
            adapter.scan("person") if adapter._declared else adapter.relations()

    def test_locked_database_fails_fast_not_forever(self, tmp_path, dataset):
        path = _sqlite_path(tmp_path, dataset)
        adapter = SqliteSourceAdapter(path)
        specs = adapter.relations()  # discovery before the lock lands
        writer = sqlite3.connect(path)
        try:
            writer.execute("BEGIN EXCLUSIVE")
            started = time.monotonic()
            with pytest.raises(SourceUnavailableError):
                adapter.scan("person")
            # the read-only connection's 0.2s busy timeout bounds the
            # wait — a locked component must degrade, not hang the fan-out
            assert time.monotonic() - started < 5.0
        finally:
            writer.rollback()
            writer.close()
        assert adapter.scan("person")  # lock released -> scans again
        assert {spec.name for spec in specs} >= {"person"}


class TestCsvFaults:
    def test_missing_directory_is_unavailable(self, tmp_path):
        adapter = CsvSourceAdapter(tmp_path / "absent")
        with pytest.raises(SourceUnavailableError):
            adapter.relations()

    def test_truncated_row_is_a_format_error(self, tmp_path):
        (tmp_path / "person.csv").write_text(
            "ssn,name,level\n1,alice,3\n2,bob\n", encoding="utf-8"
        )
        adapter = CsvSourceAdapter(tmp_path)
        with pytest.raises(SourceFormatError, match="truncated or overlong"):
            adapter.scan("person")

    def test_overlong_row_is_a_format_error(self, tmp_path):
        (tmp_path / "person.csv").write_text(
            "ssn,name\n1,alice,extra-cell\n", encoding="utf-8"
        )
        adapter = CsvSourceAdapter(tmp_path)
        with pytest.raises(SourceFormatError, match="truncated or overlong"):
            adapter.scan("person")


class TestJsonFaults:
    def test_malformed_document_is_unavailable(self, tmp_path):
        (tmp_path / "person.json").write_text(
            '[{"ssn": "1", "name": ', encoding="utf-8"
        )
        adapter = JsonSourceAdapter(tmp_path)
        with pytest.raises(SourceUnavailableError):
            adapter.relations()

    def test_non_array_document_is_a_format_error(self, tmp_path):
        (tmp_path / "person.json").write_text(
            '{"ssn": "1"}', encoding="utf-8"
        )
        adapter = JsonSourceAdapter(tmp_path)
        with pytest.raises(SourceFormatError):
            adapter.relations()

    def test_non_object_record_is_a_format_error(self, tmp_path):
        (tmp_path / "person.json").write_text(
            '[{"ssn": "1"}, ["not", "an", "object"]]', encoding="utf-8"
        )
        adapter = JsonSourceAdapter(tmp_path)
        with pytest.raises(SourceFormatError):
            adapter.scan("person")

    def test_nested_value_is_a_format_error(self, tmp_path):
        (tmp_path / "person.json").write_text(
            '[{"ssn": "1", "name": {"first": "a"}}]', encoding="utf-8"
        )
        adapter = JsonSourceAdapter(tmp_path)
        with pytest.raises(SourceFormatError):
            adapter.scan("person")


class TestRuntimeDegradation:
    """Through the full stack: one broken source, the rest still answer."""

    def _fsm(self, tmp_path, dataset):
        databases = disk_databases(dataset, tmp_path, kinds="sqlite")
        return integrated_fsm(databases, dataset.assertions)

    def _break_university(self, tmp_path):
        (tmp_path / "university.db").write_bytes(b"corrupt" * 64)

    def test_partial_policy_degrades_and_accounts_the_loss(
        self, tmp_path, dataset
    ):
        fsm = self._fsm(tmp_path, dataset)
        runtime = fsm.use_runtime(
            RuntimePolicy(
                max_retries=0, backoff_base=0.0, failure_policy="partial"
            )
        )
        try:
            self._break_university(tmp_path)
            answers = sorted(row["ssn"] for row in fsm.query(QUERY))
            # survivors answer; nothing from the corrupt source
            assert answers
            assert not any(ssn.startswith("university") for ssn in answers)
            assert all(
                ssn.startswith(("hospital", "market")) for ssn in answers
            )
            stats = fsm.last_query_stats
            assert stats.counter("lost_granules") >= 1
            assert any(
                "agent-university" in name for name in stats.lost_granules
            )
            warnings = runtime.drain_warnings()
            assert any("agent-university" in warning for warning in warnings)
        finally:
            runtime.close()

    def test_error_policy_refuses_the_query(self, tmp_path, dataset):
        fsm = self._fsm(tmp_path, dataset)
        runtime = fsm.use_runtime(
            RuntimePolicy(
                max_retries=0, backoff_base=0.0, failure_policy="error"
            )
        )
        try:
            self._break_university(tmp_path)
            with pytest.raises(PartialResultError):
                fsm.query(QUERY)
        finally:
            runtime.close()

    def test_breaker_trips_on_a_persistently_broken_source(
        self, tmp_path, dataset
    ):
        fsm = self._fsm(tmp_path, dataset)
        runtime = fsm.use_runtime(
            RuntimePolicy(
                max_retries=0,
                backoff_base=0.0,
                breaker_threshold=1,
                failure_policy="partial",
            )
        )
        try:
            self._break_university(tmp_path)
            fsm.query(QUERY)
            assert runtime.stats().counter("breaker_trips") >= 1
            runtime.bump_generation()
            fsm.query(QUERY)  # open circuit short-circuits, still degrades
            assert runtime.stats().counter("breaker_trips") >= 1
        finally:
            runtime.close()

    def test_repaired_source_recovers_after_invalidation(
        self, tmp_path, dataset
    ):
        from repro.workloads import write_sqlite

        fsm = self._fsm(tmp_path, dataset)
        runtime = fsm.use_runtime(
            RuntimePolicy(
                max_retries=0, backoff_base=0.0, failure_policy="partial"
            )
        )
        try:
            before = sorted(row["ssn"] for row in fsm.query(QUERY))
            assert any(ssn.startswith("university") for ssn in before)
            self._break_university(tmp_path)
            runtime.bump_generation()
            degraded = sorted(row["ssn"] for row in fsm.query(QUERY))
            assert not any(ssn.startswith("university") for ssn in degraded)
            write_sqlite(  # repair the file in place
                generate_source_federation(
                    people_per_schema=8, records_per_person=1, seed=5,
                    schemas=("university",),
                ),
                tmp_path,
            )
            runtime.bump_generation()
            repaired = sorted(row["ssn"] for row in fsm.query(QUERY))
            assert repaired == before
        finally:
            runtime.close()
