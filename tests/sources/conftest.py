"""Shared helpers for the source-adapter suites.

Every suite needs the same move: generate a deterministic federation,
materialize it through one (or several) disk backends, load it back via
the manifest, and stand up an integrated FSM over the resulting stores.
"""

from pathlib import Path
from typing import Dict, Mapping, Union

import pytest

from repro.sources import SourceDatabase, load_source_federation
from repro.workloads import (
    build_memory_databases,
    generate_source_federation,
    source_fsm,
    write_source_directory,
)

DISK_KINDS = ("sqlite", "csv", "json")


def disk_databases(
    dataset, directory: Union[str, Path], kinds: Union[str, Mapping[str, str]]
) -> Dict[str, SourceDatabase]:
    """Materialize *dataset* under *directory* and load it back."""
    write_source_directory(dataset, directory, kinds=kinds)
    _, databases = load_source_federation(directory)
    return databases


def integrated_fsm(databases: Mapping[str, SourceDatabase], assertions: str):
    fsm = source_fsm(databases, assertions)
    fsm.integrate_all()
    return fsm


@pytest.fixture
def small_dataset():
    return generate_source_federation(
        people_per_schema=20, records_per_person=1, seed=17
    )


@pytest.fixture
def memory_fsm(small_dataset):
    return integrated_fsm(
        build_memory_databases(small_dataset), small_dataset.assertions
    )
