"""Adapter mechanics: discovery, OIDs, aggregations, versioning.

The §3 transformation each adapter applies — relation → class, non-FK
column → attribute, FK → aggregation function with the ``fk = pk``
cardinality refinement — plus the OID numbering and the file-fingerprint
version the extent cache keys freshness on.
"""

import os
import sqlite3

import pytest

from repro.errors import UnknownClassError
from repro.model.aggregations import Cardinality
from repro.model.datatypes import DataType
from repro.runtime import RuntimePolicy
from repro.sources import (
    CsvSourceAdapter,
    JsonSourceAdapter,
    MemorySourceAdapter,
    RelationSpec,
    SqliteSourceAdapter,
)
from repro.federation.relational import Column, ForeignKey
from repro.workloads import (
    build_memory_databases,
    generate_source_federation,
    write_csv,
    write_json,
    write_sqlite,
)

from .conftest import integrated_fsm


def _university(tmp_path, writer=write_sqlite):
    dataset = generate_source_federation(
        people_per_schema=10, records_per_person=2, seed=3,
        schemas=("university",),
    )
    paths = writer(dataset, tmp_path)
    return dataset, paths["university"]


class TestSqliteDiscovery:
    def test_tables_columns_keys_are_reflected(self, tmp_path):
        _, path = _university(tmp_path)
        adapter = SqliteSourceAdapter(path)
        specs = {spec.name: spec for spec in adapter.relations()}
        assert set(specs) == {"department", "person", "enrollment"}
        person = specs["person"]
        assert person.primary_key == "ssn"
        assert person.column("ssn").data_type is DataType.STRING
        assert [
            (fk.column, fk.target_relation, fk.target_column)
            for fk in person.foreign_keys
        ] == [("dept", "department", "code")]
        assert specs["enrollment"].column("id").data_type is DataType.INTEGER

    def test_unknown_relation_is_an_unknown_class(self, tmp_path):
        _, path = _university(tmp_path)
        with pytest.raises(UnknownClassError):
            SqliteSourceAdapter(path).scan("no_such_table")


class TestWeaklyTypedDiscovery:
    def test_csv_headers_discover_string_columns(self, tmp_path):
        _, _ = _university(tmp_path / "u", writer=write_csv)
        adapter = CsvSourceAdapter(tmp_path / "u" / "university")
        person = {spec.name: spec for spec in adapter.relations()}["person"]
        assert all(
            column.data_type is DataType.STRING for column in person.columns
        )

    def test_json_infers_types_from_first_non_null(self, tmp_path):
        _, _ = _university(tmp_path / "u", writer=write_json)
        adapter = JsonSourceAdapter(tmp_path / "u" / "university")
        specs = {spec.name: spec for spec in adapter.relations()}
        assert specs["person"].column("ssn").data_type is DataType.STRING
        assert specs["person"].column("level").data_type is DataType.INTEGER
        assert specs["enrollment"].column("id").data_type is DataType.INTEGER


class TestTransformation:
    def test_fk_becomes_aggregation_not_attribute(self, tmp_path):
        _, path = _university(tmp_path)
        schema = SqliteSourceAdapter(path).schema()
        person = schema.effective_class("person")
        assert {a.name for a in person.attributes} == {"ssn", "name", "level"}
        (aggregation,) = person.aggregations
        assert aggregation.name == "dept"
        assert aggregation.range_class == "department"
        assert aggregation.cardinality is Cardinality.M_TO_ONE

    def test_fk_on_primary_key_refines_to_one_to_one(self, tmp_path):
        path = tmp_path / "badge.db"
        connection = sqlite3.connect(path)
        connection.executescript(
            """
            CREATE TABLE person (ssn TEXT PRIMARY KEY, name TEXT);
            CREATE TABLE badge (
                person_ssn TEXT PRIMARY KEY REFERENCES person (ssn),
                colour TEXT
            );
            INSERT INTO person VALUES ('s1', 'a');
            INSERT INTO badge VALUES ('s1', 'red');
            """
        )
        connection.commit()
        connection.close()
        schema = SqliteSourceAdapter(path).schema()
        (aggregation,) = schema.effective_class("badge").aggregations
        assert aggregation.cardinality is Cardinality.ONE_TO_ONE

    def test_oids_number_rows_from_one_in_storage_order(self, tmp_path):
        dataset, path = _university(tmp_path)
        adapter = SqliteSourceAdapter(
            path, agent="agent-university", system="component"
        )
        instances = adapter.scan("person")
        assert [instance.oid.number for instance in instances] == list(
            range(1, len(dataset.rows["university"]["person"]) + 1)
        )
        oid = instances[0].oid
        assert (oid.agent, oid.system, oid.database, oid.relation) == (
            "agent-university", "component", "university", "person"
        )

    def test_fk_values_resolve_to_target_oids(self, tmp_path):
        _, path = _university(tmp_path)
        adapter = SqliteSourceAdapter(path)
        departments = {i.oid: i for i in adapter.scan("department")}
        for person in adapter.scan("person"):
            target = person.aggregations["dept"]
            assert target in departments
            assert target.relation == "department"

    def test_dangling_fk_stays_unresolved_without_error(self):
        adapter = MemorySourceAdapter(
            "m",
            {
                "department": [{"code": "d0", "title": "x"}],
                "person": [
                    {"ssn": "1", "dept": "d0"},
                    {"ssn": "2", "dept": "d-missing"},
                ],
            },
            (
                RelationSpec(
                    "department",
                    (Column("code", DataType.STRING), Column("title", DataType.STRING)),
                ),
                RelationSpec(
                    "person",
                    (Column("ssn", DataType.STRING), Column("dept", DataType.STRING)),
                    foreign_keys=(ForeignKey("dept", "department", "code"),),
                ),
            ),
        )
        first, second = adapter.scan("person")
        assert "dept" in first.aggregations
        assert "dept" not in second.aggregations  # autonomy: kept, not rejected


class TestVersioning:
    def test_version_is_stable_while_files_are(self, tmp_path):
        _, path = _university(tmp_path)
        adapter = SqliteSourceAdapter(path)
        assert adapter.source_version() == adapter.source_version()
        assert (
            SqliteSourceAdapter(path).source_version()
            == adapter.source_version()
        )  # deterministic across adapter instances (warm restarts)

    def test_file_change_bumps_the_version(self, tmp_path):
        _, path = _university(tmp_path)
        adapter = SqliteSourceAdapter(path)
        before = adapter.source_version()
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        # versions are content-derived: an mtime-only touch leaves the
        # bytes (and therefore the extents) unchanged
        assert adapter.source_version() == before
        connection = sqlite3.connect(path)
        connection.execute("INSERT INTO person VALUES ('v-ssn', 'v', 1, 'd0')")
        connection.commit()
        connection.close()
        assert adapter.source_version() != before

    def test_same_mtime_same_size_rewrite_changes_the_version(self, tmp_path):
        """The (name, mtime, size) stat fingerprint aliased when a rapid
        rewrite landed in the same mtime granule with the same byte
        count; the content hash must see through exactly that."""
        directory = tmp_path / "csv"
        directory.mkdir()
        record = directory / "person.csv"
        record.write_text("ssn,name\n100,aa\n")
        adapter = CsvSourceAdapter(directory)
        before = adapter.source_version()
        stat = record.stat()
        # same size, and the mtime pinned back to the old granule — the
        # worst case the stat triple cannot distinguish
        record.write_text("ssn,name\n100,ab\n")
        os.utime(record, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert record.stat().st_mtime_ns == stat.st_mtime_ns
        assert record.stat().st_size == stat.st_size
        assert adapter.source_version() != before

    def test_component_write_invalidates_the_warm_cache(self, tmp_path):
        from .conftest import disk_databases

        dataset = generate_source_federation(
            people_per_schema=8, records_per_person=1, seed=6,
            schemas=("university", "hospital"),
        )
        databases = disk_databases(dataset, tmp_path, kinds="sqlite")
        path = tmp_path / "university.db"
        fsm = integrated_fsm(databases, dataset.assertions)
        runtime = fsm.use_runtime(RuntimePolicy())
        try:
            query = "person() -> ssn"
            before = {row["ssn"] for row in fsm.query(query)}
            assert fsm.query(query) and (
                fsm.last_query_stats.counter("agent_scans") == 0
            )
            connection = sqlite3.connect(path)
            connection.execute(
                "INSERT INTO person VALUES ('new-ssn', 'new', 3, 'd0')"
            )
            connection.commit()
            connection.close()
            stat = path.stat()
            os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
            after = {row["ssn"] for row in fsm.query(query)}
            assert after == before | {"new-ssn"}
            assert fsm.last_query_stats.counter("agent_scans") > 0
        finally:
            runtime.close()

    def test_memory_bump_invalidates_the_warm_cache(self):
        dataset = generate_source_federation(
            people_per_schema=6, records_per_person=1, seed=2
        )
        databases = build_memory_databases(dataset)
        fsm = integrated_fsm(databases, dataset.assertions)
        runtime = fsm.use_runtime(RuntimePolicy())
        try:
            query = "person() -> ssn"
            fsm.query(query)
            fsm.query(query)
            assert fsm.last_query_stats.counter("agent_scans") == 0
            databases["market"].adapter.insert(
                "person",
                {"ssn": "market-new", "name": "n", "level_bp": 300,
                 "sector": "s0"},
            )
            answers = {row["ssn"] for row in fsm.query(query)}
            assert "market-new" in answers
            # the observed insert rode the delta feed: the warm cache was
            # patched in place, no extent was rescanned
            assert fsm.last_query_stats.counter("agent_scans") == 0
            assert fsm.last_query_stats.counter("granules_patched") > 0
            # an *unobserved* write (bump logs no delta) still invalidates,
            # via the targeted gap fallback — answers stay fresh, scans return
            databases["market"].adapter.bump()
            rescanned = {row["ssn"] for row in fsm.query(query)}
            assert rescanned == answers
            assert fsm.last_query_stats.counter("agent_scans") > 0
            assert fsm.last_query_stats.counter("fallback_invalidations") > 0
        finally:
            runtime.close()


class TestSourceDatabaseStore:
    """The ComponentStore facade: what FSM agents actually call."""

    def test_extents_counts_and_lookup(self, tmp_path):
        dataset, path = _university(tmp_path)
        store = SqliteSourceAdapter(path).database()
        person_rows = dataset.rows["university"]["person"]
        assert len(store.extent("person")) == len(person_rows)
        assert store.counts()["enrollment"] == len(
            dataset.rows["university"]["enrollment"]
        )
        instance = store.extent("person")[0]
        assert store.by_oid(instance.oid).attributes == instance.attributes
        assert store.get(instance.oid) is not None

    def test_value_set_applies_the_data_mappings(self):
        dataset = generate_source_federation(
            people_per_schema=12, records_per_person=1, seed=4
        )
        databases = build_memory_databases(dataset)
        # hospital stores "L3"-style strings; the value set is mapped ints
        levels = databases["hospital"].value_set("person", "level")
        assert levels and levels <= {1, 2, 3, 4, 5}
