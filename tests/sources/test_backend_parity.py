"""Property-based cross-backend parity: storage must never change answers.

The §3 transformation plus data mappings run *inside* each adapter, so a
federation materialized as sqlite files, CSV directories or JSON record
arrays must produce byte-identical answers — same OIDs, same mapped
attribute values — to the in-memory baseline, under every execution mode
the runtime offers: threaded and async executors, planned and unplanned
dispatch, cold scans, warm cache hits, and post-``bump_generation``
rescans.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import RuntimePolicy
from repro.workloads import build_memory_databases, generate_source_federation

from .conftest import DISK_KINDS, disk_databases, integrated_fsm

QUERY = "person() -> ssn, name, level"
FILTERED = "person(level=3) -> ssn"

_SETTINGS = dict(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _canon(rows):
    """A byte-comparable serialization: every value via its repr."""
    return sorted(
        tuple(sorted((key, repr(value)) for key, value in row.items()))
        for row in rows
    )


def _expected(dataset):
    baseline = integrated_fsm(build_memory_databases(dataset), dataset.assertions)
    expected = _canon(baseline.query(QUERY))
    assert expected  # a vacuous parity proves nothing
    return expected


def _assert_backend_parity(dataset, kind, directory, mode, plan):
    databases = disk_databases(dataset, directory, kinds=kind)
    fsm = integrated_fsm(databases, dataset.assertions)
    runtime = fsm.use_runtime(RuntimePolicy(), mode=mode, plan=plan)
    try:
        expected = _expected(dataset)
        assert _canon(fsm.query(QUERY)) == expected  # cold
        assert _canon(fsm.query(QUERY)) == expected  # warm
        assert fsm.last_query_stats.counter("agent_scans") == 0
        runtime.bump_generation()  # every granule must miss again
        assert _canon(fsm.query(QUERY)) == expected
        assert fsm.last_query_stats.counter("agent_scans") > 0
    finally:
        runtime.close()


class TestDiskBackendsMatchMemory:
    @pytest.mark.parametrize("mode", ["threaded", "async"])
    @pytest.mark.parametrize("plan", [True, False])
    @settings(**_SETTINGS)
    @given(
        people=st.integers(6, 20),
        seed=st.integers(0, 999),
        kind=st.sampled_from(DISK_KINDS),
    )
    def test_backend_parity(self, people, seed, kind, mode, plan):
        dataset = generate_source_federation(
            people_per_schema=people, records_per_person=1, seed=seed
        )
        with tempfile.TemporaryDirectory() as directory:
            _assert_backend_parity(dataset, kind, Path(directory), mode, plan)


class TestMixedKindFederation:
    """One schema per backend — the genuinely heterogeneous case."""

    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_mixed_federation_matches_memory(self, tmp_path, small_dataset, mode):
        kinds = {"university": "sqlite", "hospital": "csv", "market": "json"}
        databases = disk_databases(small_dataset, tmp_path, kinds=kinds)
        assert {db.adapter.kind for db in databases.values()} == {
            "sqlite",
            "csv",
            "json",
        }
        fsm = integrated_fsm(databases, small_dataset.assertions)
        runtime = fsm.use_runtime(RuntimePolicy(), mode=mode)
        try:
            expected = _expected(small_dataset)
            assert _canon(fsm.query(QUERY)) == expected
            assert _canon(fsm.query(QUERY)) == expected
            assert fsm.last_query_stats.counter("agent_scans") == 0
        finally:
            runtime.close()

    def test_filtered_query_parity(self, tmp_path, small_dataset, memory_fsm):
        expected = _canon(memory_fsm.query(FILTERED))
        databases = disk_databases(small_dataset, tmp_path, kinds="sqlite")
        fsm = integrated_fsm(databases, small_dataset.assertions)
        runtime = fsm.use_runtime(RuntimePolicy())
        try:
            assert _canon(fsm.query(FILTERED)) == expected
        finally:
            runtime.close()


class TestValueSetParity:
    def test_mapped_value_sets_agree_across_backends(self, tmp_path, small_dataset):
        memory = build_memory_databases(small_dataset)
        expected = {
            schema: store.value_set("person", "level")
            for schema, store in memory.items()
        }
        for kind in DISK_KINDS:
            databases = disk_databases(small_dataset, tmp_path / kind, kinds=kind)
            for schema, store in databases.items():
                assert store.value_set("person", "level") == expected[schema], kind
