"""Manifest round-trips and the user-facing entry points.

A source directory written by the scenario generator must be read back
verbatim by :func:`repro.sources.load_source_federation`, and both front
doors over it — ``repro query --source-dir`` and a service tenant's
``source_dir=`` spec — must answer exactly what the in-memory federation
answers.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ServiceError, SourceConfigError
from repro.federation.mappings import TripleMapping
from repro.federation.relational import Column, ForeignKey
from repro.model.datatypes import DataType
from repro.sources import (
    ColumnMapping,
    LinearMapping,
    RelationSpec,
    load_source_federation,
    write_manifest,
)
from repro.sources.manifest import (
    mapping_from_json,
    mapping_to_json,
    relation_from_json,
    relation_to_json,
)
from repro.workloads import write_source_directory


class TestJsonRoundTrips:
    def test_relation_spec_round_trips(self):
        spec = RelationSpec(
            "person",
            (Column("ssn", DataType.STRING), Column("level", DataType.INTEGER),
             Column("dept", DataType.STRING)),
            primary_key="ssn",
            foreign_keys=(ForeignKey("dept", "department", "code"),),
        )
        assert relation_from_json(relation_to_json(spec)) == spec

    @pytest.mark.parametrize(
        "mapping",
        [
            ColumnMapping("name", default="unknown"),
            ColumnMapping(
                "lvl",
                attribute="level",
                mapping=TripleMapping(((1, "L1", 1.0), (2, "L2", 0.9)), threshold=0.5),
                default=0,
                data_type=DataType.INTEGER,
            ),
            ColumnMapping(
                "level_bp",
                attribute="level",
                mapping=LinearMapping(a=0.01, as_int=True),
                data_type=DataType.INTEGER,
            ),
        ],
    )
    def test_column_mapping_round_trips(self, mapping):
        payload = mapping_to_json(mapping)
        reloaded = mapping_from_json(payload)
        assert mapping_to_json(reloaded) == payload
        assert reloaded.target == mapping.target
        assert reloaded.default == mapping.default
        assert reloaded.data_type == mapping.data_type
        assert type(reloaded.mapping) is type(mapping.mapping)


class TestLoadErrors:
    def test_missing_manifest_is_unavailable(self, tmp_path):
        from repro.errors import SourceUnavailableError

        with pytest.raises(SourceUnavailableError, match="federation.json"):
            load_source_federation(tmp_path)

    def test_unparseable_manifest_is_a_config_error(self, tmp_path):
        (tmp_path / "federation.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(SourceConfigError):
            load_source_federation(tmp_path)

    def test_duplicate_schema_is_a_config_error(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "a" / "person.json").write_text(
            '[{"ssn": "1"}]', encoding="utf-8"
        )
        entry = {"schema": "s", "kind": "json", "path": "a"}
        write_manifest(tmp_path, [entry, dict(entry)], assertions="")
        with pytest.raises(SourceConfigError, match="duplicate"):
            load_source_federation(tmp_path)

    def test_unknown_kind_is_a_config_error(self, tmp_path):
        write_manifest(
            tmp_path,
            [{"schema": "s", "kind": "parquet", "path": "x"}],
            assertions="",
        )
        with pytest.raises(SourceConfigError, match="parquet"):
            load_source_federation(tmp_path)


class TestDirectoryRoundTrip:
    def test_written_directory_loads_back_whole(self, tmp_path, small_dataset):
        root = write_source_directory(small_dataset, tmp_path, kinds="json")
        text, databases = load_source_federation(root)
        assert set(databases) == set(small_dataset.schemas)
        assert text.strip() == small_dataset.assertions.strip()
        for schema, store in databases.items():
            assert store.schema.name == schema
            expected = {
                relation: len(rows)
                for relation, rows in small_dataset.rows[schema].items()
            }
            assert store.counts() == expected


class TestCliSourceDir:
    def _directory(self, tmp_path, dataset):
        return write_source_directory(dataset, tmp_path, kinds="sqlite")

    def test_query_answers_match_memory(
        self, tmp_path, capsys, small_dataset, memory_fsm
    ):
        directory = self._directory(tmp_path, small_dataset)
        query = "person(level=3) -> ssn"
        expected = sorted(row["ssn"] for row in memory_fsm.query(query))
        rc = main(["query", "--source-dir", str(directory), "--json", query])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(row["ssn"] for row in payload["rows"]) == expected

    def test_source_dir_is_exclusive_with_demo(self, tmp_path, capsys):
        rc = main(
            ["query", "--source-dir", str(tmp_path), "--demo", "genealogy",
             "person() -> ssn"]
        )
        assert rc == 1
        assert "exclusive" in capsys.readouterr().err

    def test_missing_directory_reports_cleanly(self, tmp_path, capsys):
        rc = main(
            ["query", "--source-dir", str(tmp_path / "absent"),
             "person() -> ssn"]
        )
        assert rc == 1
        assert capsys.readouterr().err


class TestTenantSourceDir:
    def test_tenant_spec_accepts_source_dir(self, tmp_path, small_dataset):
        from repro.cli import _parse_tenant_spec

        directory = self._write(tmp_path, small_dataset)
        config = _parse_tenant_spec(
            f"name=t1,source_dir={directory},mode=threaded"
        )
        assert config.source_dir == str(directory)
        assert config.demo is None

    def test_tenant_answers_match_memory(self, tmp_path, small_dataset, memory_fsm):
        from repro.federation.query import FederatedQuery
        from repro.service import Tenant, TenantConfig

        directory = self._write(tmp_path, small_dataset)
        query = "person(level=3) -> ssn"
        expected = sorted(row["ssn"] for row in memory_fsm.query(query))
        tenant = Tenant.build(
            TenantConfig(name="t1", source_dir=str(directory), mode="threaded")
        )
        try:
            rows, _, warnings = tenant.query(FederatedQuery.parse(query))
            assert sorted(row["ssn"] for row in rows) == expected
            assert warnings == []
            _, delta, _ = tenant.query(FederatedQuery.parse(query))
            assert delta.counter("agent_scans") == 0  # warm
        finally:
            tenant.close()

    def test_source_dir_and_schemas_are_exclusive(self, tmp_path):
        from repro.service import TenantConfig

        with pytest.raises(ServiceError, match="exclusive"):
            TenantConfig(
                name="bad", schemas=("s.schema",), assertions="a.dsl",
                source_dir=str(tmp_path),
            )

    @staticmethod
    def _write(tmp_path, dataset):
        return write_source_directory(dataset, tmp_path, kinds="csv")
