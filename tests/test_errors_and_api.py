"""The error hierarchy and the top-level public API surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_domain_groups(self):
        assert issubclass(errors.UnknownClassError, errors.ModelError)
        assert issubclass(errors.SafetyError, errors.LogicError)
        assert issubclass(errors.AssertionParseError, errors.AssertionSpecError)
        assert issubclass(errors.DecompositionError, errors.IntegrationError)
        assert issubclass(errors.MappingError, errors.FederationError)

    def test_one_catch_all(self):
        from repro.model import Schema

        with pytest.raises(errors.ReproError):
            Schema("")

    def test_structured_errors_carry_context(self):
        error = errors.UnknownClassError("ghost", "S1")
        assert error.class_name == "ghost"
        assert error.schema_name == "S1"
        error2 = errors.UnknownAttributeError("x", "C")
        assert error2.attribute == "x"


class TestTopLevelAPI:
    def test_exports(self):
        assert set(repro.__all__) == {
            "FederationSession",
            "ReproError",
            "SchemaIntegrator",
            "__version__",
        }

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        import repro.assertions
        import repro.core
        import repro.federation
        import repro.integration
        import repro.logic
        import repro.model
        import repro.workloads

    def test_all_lists_resolve(self):
        import repro.assertions as a
        import repro.federation as f
        import repro.integration as i
        import repro.logic as l
        import repro.model as m

        for module in (a, f, i, l, m):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
