"""Every example script must run end to end (smoke tests)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "genealogy",
        "bibliography",
        "stock_market",
        "university_federation",
    } <= names
