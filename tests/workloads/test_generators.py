"""Workload generators: determinism and structural guarantees."""

from repro.workloads import (
    inclusion_chain,
    match_at_depth,
    mirrored_pair,
    populate,
    random_tree_schema,
)


class TestRandomTree:
    def test_requested_size(self):
        schema = random_tree_schema("S", 40)
        assert len(schema) == 40

    def test_is_a_tree(self):
        schema = random_tree_schema("S", 40)
        # every class but the root has exactly one parent
        assert len(schema.is_a_links()) == 39
        assert len(schema.roots()) == 1

    def test_deterministic_per_seed(self):
        a = random_tree_schema("S", 30, seed=5)
        b = random_tree_schema("S", 30, seed=5)
        assert a.is_a_links() == b.is_a_links()

    def test_seeds_differ(self):
        a = random_tree_schema("S", 30, seed=5)
        b = random_tree_schema("S", 30, seed=6)
        assert a.is_a_links() != b.is_a_links()

    def test_validates(self):
        random_tree_schema("S", 25).validate()


class TestMirroredPair:
    def test_structural_mirror(self):
        left, right, _ = mirrored_pair(30)
        left_edges = {(c[1:], p[1:]) for c, p in left.is_a_links()}
        right_edges = {(c[1:], p[1:]) for c, p in right.is_a_links()}
        assert left_edges == right_edges

    def test_full_equivalence_declares_all_pairs(self):
        _, _, assertions = mirrored_pair(20, equivalence_fraction=1.0)
        assert len(assertions) == 20

    def test_fractions_control_mix(self):
        _, _, assertions = mirrored_pair(
            200, seed=1,
            equivalence_fraction=0.5,
            inclusion_fraction=0.3,
            intersection_fraction=0.1,
            exclusion_fraction=0.1,
        )
        from repro.assertions import ClassKind

        kinds = [a.kind for a in assertions]
        assert kinds.count(ClassKind.EQUIVALENCE) > kinds.count(ClassKind.SUBSET)
        assert kinds.count(ClassKind.SUBSET) > kinds.count(ClassKind.INTERSECTION)

    def test_assertions_validate(self):
        left, right, assertions = mirrored_pair(
            25, equivalence_fraction=0.5, inclusion_fraction=0.5
        )
        assertions.validate(left, right)


class TestInclusionChain:
    def test_chain_structure(self):
        left, right, assertions = inclusion_chain(4)
        assert len(right) == 4
        assert right.is_subclass("B4", "B1")
        assert len(assertions) == 4

    def test_single_declaration_variant(self):
        _, _, assertions = inclusion_chain(4, declare_all=False)
        assert len(assertions) == 1


class TestMatchAtDepth:
    def test_mirror_hangs_at_requested_depth(self):
        left, right, assertions = match_at_depth(31, depth=3)
        # every S1 class has an equivalence into the mirror subtree
        assert len(assertions) == 31
        # D0 (the mirror's root) sits below the 3-node filler chain
        depth = 0
        node = "D0"
        while right.parents(node):
            node = right.parents(node)[0]
            depth += 1
        assert depth == 3

    def test_depth_zero_is_plain_mirror(self):
        left, right, assertions = match_at_depth(15, depth=0)
        assert len(right) == 15
        assert not [c for c in right.class_names if c.startswith("F")]


class TestPopulate:
    def test_population_counts(self):
        schema = random_tree_schema("S", 10)
        database = populate(schema, per_class=3)
        assert len(database) == 30

    def test_instances_validate(self):
        schema = random_tree_schema("S", 6)
        populate(schema, per_class=2)  # validation on insert
