"""Scenario-generator determinism: same seed, same federation, same bytes.

Committed benchmark numbers are only comparable across machines if the
large-extent generator is exactly reproducible, so these tests pin it
three ways: equal datasets in memory, byte-identical materialized
directories (manifest included), and the explicit-RNG plumbing of the
older §6.3 generators that previously seeded module-global state.
"""

import hashlib
import random
from pathlib import Path

import pytest

from repro.errors import SourceConfigError
from repro.workloads import (
    build_memory_databases,
    federated_cluster,
    generate_source_federation,
    mirrored_pair,
    populate,
    random_tree_schema,
    write_source_directory,
)


def _digests(directory):
    return {
        str(path.relative_to(directory)): hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
        for path in sorted(Path(directory).rglob("*"))
        if path.is_file()
    }


class TestGeneratorDeterminism:
    def test_same_seed_same_dataset(self):
        first = generate_source_federation(
            people_per_schema=40, records_per_person=3, seed=23
        )
        second = generate_source_federation(
            people_per_schema=40, records_per_person=3, seed=23
        )
        assert first.rows == second.rows
        assert first.relations == second.relations
        assert first.assertions == second.assertions

    def test_different_seed_different_rows(self):
        first = generate_source_federation(people_per_schema=40, seed=23)
        second = generate_source_federation(people_per_schema=40, seed=24)
        assert first.rows != second.rows

    def test_explicit_rng_equals_seed(self):
        seeded = generate_source_federation(people_per_schema=15, seed=8)
        explicit = generate_source_federation(
            people_per_schema=15, rng=random.Random(8), seed=999
        )
        assert seeded.rows == explicit.rows

    def test_written_directories_are_byte_identical(self, tmp_path):
        kinds = {"university": "sqlite", "hospital": "csv", "market": "json"}
        for run in ("first", "second"):
            dataset = generate_source_federation(
                people_per_schema=25, records_per_person=2, seed=31
            )
            write_source_directory(dataset, tmp_path / run, kinds=kinds)
        first = _digests(tmp_path / "first")
        second = _digests(tmp_path / "second")
        assert first and first == second

    def test_instance_accounting(self):
        dataset = generate_source_federation(
            people_per_schema=100, records_per_person=4, seed=1
        )
        # 3 schemas x (100 people + 400 records + 3 lookups)
        assert dataset.total_instances == 3 * (100 + 400 + 3)
        databases = build_memory_databases(dataset)
        assert sum(len(store) for store in databases.values()) == (
            dataset.total_instances
        )

    def test_empty_schema_list_is_rejected(self):
        with pytest.raises(SourceConfigError):
            generate_source_federation(schemas=())


class TestHeterogeneousLevelStorage:
    """The three storage conventions agree after their data mappings."""

    def test_levels_agree_across_schemas(self):
        dataset = generate_source_federation(people_per_schema=60, seed=12)
        databases = build_memory_databases(dataset)
        for store in databases.values():
            assert store.value_set("person", "level") <= {1, 2, 3, 4, 5}

    def test_raw_storage_really_differs(self):
        dataset = generate_source_federation(people_per_schema=5, seed=12)
        university = dataset.rows["university"]["person"][0]
        hospital = dataset.rows["hospital"]["person"][0]
        market = dataset.rows["market"]["person"][0]
        assert isinstance(university["level"], int)
        assert isinstance(hospital["lvl"], str) and hospital["lvl"].startswith("L")
        assert isinstance(market["level_bp"], int) and market["level_bp"] >= 100


class TestExplicitRngRegression:
    """The §6.3 generators take an explicit rng; equal seeds stay equal.

    Regression for implicit seeding: every draw must come from the one
    generator the caller controls, so interleaving other random calls
    (or the process's hash seed) cannot change a generated workload.
    """

    def test_random_tree_schema_rng_equals_seed(self):
        seeded = random_tree_schema("S1", 30, seed=19)
        explicit = random_tree_schema("S1", 30, seed=999, rng=random.Random(19))
        assert [c.name for c in seeded] == [c.name for c in explicit]
        assert [
            sorted(c.parents) for c in seeded
        ] == [sorted(c.parents) for c in explicit]

    def test_mirrored_pair_same_seed_same_assertions(self):
        def shape(assertions):
            return [
                (a.kind, str(a.sources), str(a.target)) for a in assertions
            ]

        first = mirrored_pair(20, seed=7, equivalence_fraction=0.5)
        second = mirrored_pair(20, seed=7, equivalence_fraction=0.5)
        assert shape(first[2]) == shape(second[2])

    def test_federated_cluster_rng_equals_seed(self):
        _, _, seeded = federated_cluster(schemas=2, per_class=6, seed=13)
        _, _, explicit = federated_cluster(
            schemas=2, per_class=6, seed=999, rng=random.Random(13)
        )
        for name in seeded:
            assert [i.attributes for i in seeded[name].extent("person0")] == [
                i.attributes for i in explicit[name].extent("person0")
            ]

    def test_populate_rng_equals_seed(self):
        schema = random_tree_schema("S1", 8, seed=3)
        seeded = populate(schema, 5, seed=21)
        explicit = populate(schema, 5, seed=0, rng=random.Random(21))
        for class_def in schema:
            assert [
                i.attributes for i in seeded.extent(class_def.name)
            ] == [i.attributes for i in explicit.extent(class_def.name)]
