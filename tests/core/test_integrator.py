"""The SchemaIntegrator façade."""

import pytest

from repro import SchemaIntegrator
from repro.assertions import AssertionSet, parse
from repro.errors import IntegrationError, PathError
from repro.workloads import appendix_a, mirrored_pair


class TestInputs:
    def test_accepts_dsl_text(self):
        s1, s2, text = appendix_a()
        result = SchemaIntegrator(s1, s2, text).run()
        assert "person" in result.classes

    def test_accepts_assertion_objects(self):
        from repro.assertions import equivalence

        s1, s2, _ = appendix_a()
        result = SchemaIntegrator(
            s1, s2, [equivalence("S1.person", "S2.human")]
        ).run()
        assert result.is_name("S2", "human") == "person"

    def test_accepts_assertion_set(self):
        s1, s2, text = appendix_a()
        assertion_set = AssertionSet("S1", "S2")
        assertion_set.extend(parse(text))
        result = SchemaIntegrator(s1, s2, assertion_set).run()
        assert "person" in result.classes

    def test_misoriented_assertion_set_rejected(self):
        s1, s2, _ = appendix_a()
        wrong = AssertionSet("S2", "S1")
        with pytest.raises(IntegrationError, match="oriented"):
            SchemaIntegrator(s1, s2, wrong)

    def test_validation_catches_dangling_paths(self):
        s1, s2, _ = appendix_a()
        with pytest.raises(PathError):
            SchemaIntegrator(s1, s2, "assertion S1.ghost == S2.human")

    def test_validation_can_be_disabled(self):
        s1, s2, _ = appendix_a()
        SchemaIntegrator(
            s1, s2, "assertion S1.ghost == S2.human", validate=False
        )

    def test_unknown_algorithm_rejected(self):
        s1, s2, text = appendix_a()
        with pytest.raises(IntegrationError, match="algorithm"):
            SchemaIntegrator(s1, s2, text, algorithm="quantum")


class TestCaching:
    def test_run_is_cached(self):
        s1, s2, text = appendix_a()
        integrator = SchemaIntegrator(s1, s2, text)
        assert integrator.run() is integrator.run()

    def test_reset_reruns(self):
        s1, s2, text = appendix_a()
        integrator = SchemaIntegrator(s1, s2, text)
        first = integrator.run()
        integrator.reset()
        assert integrator.run() is not first

    def test_stats_available_after_run(self):
        left, right, assertions = mirrored_pair(10, equivalence_fraction=1.0)
        integrator = SchemaIntegrator(left, right, assertions)
        assert integrator.stats.pairs_checked == 10

    def test_describe_contains_schema_and_stats(self):
        s1, s2, text = appendix_a()
        text_out = SchemaIntegrator(s1, s2, text).describe()
        assert "integrated schema" in text_out
        assert "pairs_checked" in text_out


class TestNamePolicy:
    def test_override_controls_merged_name(self):
        from repro.integration import NamePolicy

        s1, s2, text = appendix_a()
        policy = NamePolicy({("person", "human"): "individual"})
        result = SchemaIntegrator(s1, s2, text, policy=policy).run()
        assert result.is_name("S1", "person") == "individual"
