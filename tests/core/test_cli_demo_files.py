"""The shipped CLI demo files must stay consistent with the library."""

import io
import pathlib

import pytest

from repro.cli import main

FILES = pathlib.Path(__file__).resolve().parent.parent.parent / "examples" / "files"


@pytest.fixture
def demo_paths():
    left = FILES / "university_s1.schema"
    right = FILES / "university_s2.schema"
    dsl = FILES / "university.dsl"
    for path in (left, right, dsl):
        assert path.exists(), f"missing demo file {path}"
    return str(left), str(right), str(dsl)


def test_demo_files_validate(demo_paths):
    out = io.StringIO()
    assert main(["check", *demo_paths], out=out) == 0
    assert "6 assertions validate" in out.getvalue()


def test_demo_files_integrate_to_fig18c(demo_paths):
    out = io.StringIO()
    assert main(["integrate", *demo_paths], out=out) == 0
    output = out.getvalue()
    assert "is_a(lecturer, faculty)" in output
    assert "student_faculty" in output


def test_demo_files_match_builtin_scenario(demo_paths):
    """The files and repro.workloads.appendix_a describe the same world."""
    from repro.assertions import AssertionSet, parse_file
    from repro.core import SchemaIntegrator
    from repro.model import parse_schema_file
    from repro.workloads import appendix_a

    left = parse_schema_file(demo_paths[0])
    right = parse_schema_file(demo_paths[1])
    assertions = AssertionSet("S1", "S2")
    assertions.extend(parse_file(demo_paths[2]))
    from_files = SchemaIntegrator(left, right, assertions).run()

    s1, s2, text = appendix_a()
    builtin = SchemaIntegrator(s1, s2, text).run()
    assert set(from_files.classes) == set(builtin.classes)
    assert from_files.is_a_links() == builtin.is_a_links()
