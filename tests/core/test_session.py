"""The FederationSession workflow."""

import pytest

from repro import FederationSession
from repro.federation import Column, ForeignKey, RelationalDatabase
from repro.workloads import genealogy


@pytest.fixture
def session() -> FederationSession:
    _, _, text, databases = genealogy()
    session = FederationSession()
    session.add_database(databases["S1"])
    session.add_database(databases["S2"])
    session.declare(text)
    session.integrate()
    return session


class TestWorkflow:
    def test_two_schema_quickstart(self, session):
        rows = session.query("uncle(niece_nephew='John') -> Ussn#")
        assert rows[0]["Ussn#"] == "B1"

    def test_integrated_property(self, session):
        assert session.integrated is not None
        assert "uncle" in session.integrated.classes

    def test_agent_names_are_generated(self, session):
        assert set(session.fsm.schema_names()) == {"S1", "S2"}

    def test_identify_declares_same_object_spec(self):
        _, _, text, databases = genealogy()
        session = FederationSession()
        session.add_database(databases["S1"])
        session.add_database(databases["S2"])
        spec = session.identify("S1.brother.Bssn#", "S2.uncle.Ussn#")
        assert spec.left_class == "brother"
        assert spec.right_key == "Ussn#"
        assert session.fsm.same_specs == [spec]


class TestRelationalEntry:
    def test_relational_database_joins_federation(self):
        rdb = RelationalDatabase("LibDB", system="informix")
        rdb.create_relation("books", [Column("isbn"), Column("title")])
        rdb.insert("books", {"isbn": "1", "title": "Logic"})

        session = FederationSession()
        session.add_relational(rdb, schema_name="S1")

        from repro.model import ClassDef, ObjectDatabase, Schema

        s2 = Schema("S2")
        s2.add_class(ClassDef("publication").attr("isbn").attr("title"))
        db2 = ObjectDatabase(s2, agent="a2")
        db2.insert("publication", {"isbn": "2", "title": "Sets"})
        session.add_database(db2)

        session.declare(
            """
            assertion S1.books == S2.publication
              attr S1.books.isbn == S2.publication.isbn
              attr S1.books.title == S2.publication.title
            end
            """
        )
        session.integrate()
        rows = session.query("books() -> title")
        assert {row["title"] for row in rows} == {"Logic", "Sets"}
