"""The ``python -m repro`` command-line interface."""

import io

import pytest

from repro.cli import main

S1_TEXT = """
schema S1
class person
  attr ssn#: string
class lecturer extends person
  attr salary: integer
"""

S2_TEXT = """
schema S2
class human
  attr ssn#: string
class employee extends human
  attr income: integer
"""

ASSERTIONS_TEXT = """
assertion S1.person == S2.human
  attr S1.person.ssn# == S2.human.ssn#
end
assertion S1.lecturer <= S2.employee
"""


@pytest.fixture
def files(tmp_path):
    left = tmp_path / "s1.schema"
    right = tmp_path / "s2.schema"
    assertions = tmp_path / "a.dsl"
    left.write_text(S1_TEXT)
    right.write_text(S2_TEXT)
    assertions.write_text(ASSERTIONS_TEXT)
    return str(left), str(right), str(assertions)


def run(argv):
    out = io.StringIO()
    status = main(argv, out=out)
    return status, out.getvalue()


class TestIntegrate:
    def test_prints_integrated_schema(self, files):
        status, output = run(["integrate", *files])
        assert status == 0
        assert "integrated schema" in output
        assert "is_a(lecturer, employee)" in output

    def test_stats_flag(self, files):
        status, output = run(["integrate", *files, "--stats"])
        assert status == 0
        assert "pairs_checked" in output

    def test_log_flag(self, files):
        status, output = run(["integrate", *files, "--log"])
        assert status == 0
        assert "build log:" in output

    def test_algorithm_choice(self, files):
        status, output = run(["integrate", *files, "--algorithm", "naive"])
        assert status == 0
        assert "is_a(lecturer, employee)" in output


class TestCheck:
    def test_valid_inputs_ok(self, files):
        status, output = run(["check", *files])
        assert status == 0
        assert output.startswith("OK:")

    def test_dangling_path_reported(self, files, tmp_path):
        bad = tmp_path / "bad.dsl"
        bad.write_text("assertion S1.ghost == S2.human")
        status, _ = run(["check", files[0], files[1], str(bad)])
        assert status == 1

    def test_missing_file_reported(self, files):
        status, _ = run(["check", files[0], files[1], "/nonexistent.dsl"])
        assert status == 1


class TestTables:
    def test_all_three_tables_printed(self):
        status, output = run(["tables"])
        assert status == 0
        assert "Table 1." in output
        assert "Table 2." in output
        assert "Table 3." in output
        assert "derivation" in output and "reverse" in output
