"""The ``python -m repro`` command-line interface."""

import io

import pytest

from repro.cli import main

S1_TEXT = """
schema S1
class person
  attr ssn#: string
class lecturer extends person
  attr salary: integer
"""

S2_TEXT = """
schema S2
class human
  attr ssn#: string
class employee extends human
  attr income: integer
"""

ASSERTIONS_TEXT = """
assertion S1.person == S2.human
  attr S1.person.ssn# == S2.human.ssn#
end
assertion S1.lecturer <= S2.employee
"""


@pytest.fixture
def files(tmp_path):
    left = tmp_path / "s1.schema"
    right = tmp_path / "s2.schema"
    assertions = tmp_path / "a.dsl"
    left.write_text(S1_TEXT)
    right.write_text(S2_TEXT)
    assertions.write_text(ASSERTIONS_TEXT)
    return str(left), str(right), str(assertions)


def run(argv):
    out = io.StringIO()
    status = main(argv, out=out)
    return status, out.getvalue()


class TestIntegrate:
    def test_prints_integrated_schema(self, files):
        status, output = run(["integrate", *files])
        assert status == 0
        assert "integrated schema" in output
        assert "is_a(lecturer, employee)" in output

    def test_stats_flag(self, files):
        status, output = run(["integrate", *files, "--stats"])
        assert status == 0
        assert "pairs_checked" in output

    def test_log_flag(self, files):
        status, output = run(["integrate", *files, "--log"])
        assert status == 0
        assert "build log:" in output

    def test_algorithm_choice(self, files):
        status, output = run(["integrate", *files, "--algorithm", "naive"])
        assert status == 0
        assert "is_a(lecturer, employee)" in output


class TestCheck:
    def test_valid_inputs_ok(self, files):
        status, output = run(["check", *files])
        assert status == 0
        assert output.startswith("OK:")

    def test_dangling_path_reported(self, files, tmp_path):
        bad = tmp_path / "bad.dsl"
        bad.write_text("assertion S1.ghost == S2.human")
        status, _ = run(["check", files[0], files[1], str(bad)])
        assert status == 1

    def test_missing_file_reported(self, files):
        status, _ = run(["check", files[0], files[1], "/nonexistent.dsl"])
        assert status == 1


class TestTables:
    def test_all_three_tables_printed(self):
        status, output = run(["tables"])
        assert status == 0
        assert "Table 1." in output
        assert "Table 2." in output
        assert "Table 3." in output
        assert "derivation" in output and "reverse" in output

class TestQuery:
    def test_demo_cluster_answers(self):
        status, output = run(["query", "person0() -> ssn#", "--demo", "cluster"])
        assert status == 0
        assert output.count("ssn#=") == 4 * 8  # 4 schemas x 8 per class

    def test_stats_flag_reports_scans_and_cache(self):
        status, output = run(
            ["query", "person0() -> ssn#", "--demo", "cluster",
             "--repeat", "2", "--stats"]
        )
        assert status == 0
        assert "run 1:" in output and "run 2:" in output
        assert "agent_scans=0" in output  # the warm repeat
        assert "last query:" in output and "cumulative:" in output

    def test_appendix_b_path(self):
        status, output = run(
            ["query", "person0() -> ssn#", "--demo", "cluster",
             "--appendix-b", "--stats"]
        )
        assert status == 0
        assert "ssn#=" in output and "agent_scans" in output

    def test_schema_files_with_data(self, files, tmp_path):
        import json

        data = tmp_path / "data.json"
        data.write_text(json.dumps({
            "S1": {"person": [{"ssn#": "1"}, {"ssn#": "2"}]},
            "S2": {"human": [{"ssn#": "3"}]},
        }))
        status, output = run(
            ["query", "person() -> ssn#", "--schema", files[0],
             "--schema", files[1], "--assertions", files[2],
             "--data", str(data)]
        )
        assert status == 0
        assert output.count("ssn#=") == 3

    def test_demo_and_schema_are_exclusive(self, files):
        status, _ = run(
            ["query", "p() -> x", "--demo", "cluster", "--schema", files[0]]
        )
        assert status == 1
