"""OIDs: the §3 federation-wide identifier scheme."""

import pytest

from repro.errors import OIDError
from repro.model import OID, OIDGenerator


class TestOID:
    def test_string_form_matches_paper_example(self):
        oid = OID("FSMagent1", "informix", "PatientDB", "patient-records", 5)
        assert str(oid) == "FSMagent1.informix.PatientDB.patient-records.5"

    def test_roundtrip_parse(self):
        oid = OID("a", "sys", "db", "rel", 42)
        assert OID.parse(str(oid)) == oid

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(OIDError, match="5 dotted components"):
            OID.parse("a.b.c.4")

    def test_parse_rejects_non_integer_number(self):
        with pytest.raises(OIDError, match="integer"):
            OID.parse("a.b.c.d.x")

    def test_components_may_not_contain_separator(self):
        with pytest.raises(OIDError, match="may not contain"):
            OID("a.b", "sys", "db", "rel", 1)

    def test_negative_number_rejected(self):
        with pytest.raises(OIDError):
            OID("a", "s", "d", "r", -1)

    def test_attribute_ref_replaces_number_with_attribute(self):
        oid = OID("agent1", "informix", "PatientDB", "patient-records", 5)
        assert (
            oid.attribute_ref("name")
            == "agent1.informix.PatientDB.patient-records.name"
        )

    def test_same_source(self):
        a = OID("x", "s", "d", "r", 1)
        b = OID("x", "s", "d", "r", 2)
        c = OID("x", "s", "d", "other", 1)
        assert a.same_source(b)
        assert not a.same_source(c)

    def test_ordering_is_stable(self):
        a = OID("x", "s", "d", "r", 1)
        b = OID("x", "s", "d", "r", 2)
        assert a < b


class TestGenerator:
    def test_numbers_start_at_one_per_relation(self):
        generator = OIDGenerator("a", "s", "d")
        assert generator.next_oid("r").number == 1
        assert generator.next_oid("r").number == 2
        assert generator.next_oid("other").number == 1

    def test_issued_lists_touched_relations(self):
        generator = OIDGenerator("a", "s", "d")
        generator.next_oid("r1")
        generator.next_oid("r2")
        assert set(generator.issued()) == {"r1", "r2"}

    def test_generator_validates_components(self):
        with pytest.raises(OIDError):
            OIDGenerator("a.b", "s", "d")
