"""Property-based tests on the object-model invariants (hypothesis)."""

import string

from hypothesis import given, settings, strategies as st

from repro.model import OID, ClassDef, Schema, build_hierarchy

component = st.text(
    alphabet=string.ascii_lowercase + string.digits + "_-",
    min_size=1,
    max_size=12,
).filter(lambda s: "." not in s)


@given(component, component, component, component, st.integers(0, 10**9))
def test_oid_string_roundtrip(agent, system, database, relation, number):
    oid = OID(agent, system, database, relation, number)
    assert OID.parse(str(oid)) == oid


@st.composite
def tree_edges(draw):
    """A random is-a forest as (child, parent) edges over c0..cN."""
    size = draw(st.integers(min_value=2, max_value=25))
    edges = []
    for index in range(1, size):
        parent = draw(st.integers(min_value=0, max_value=index - 1))
        edges.append((f"c{index}", f"c{parent}"))
    return edges


@given(tree_edges())
@settings(max_examples=50)
def test_ancestor_descendant_duality(edges):
    schema = build_hierarchy("S", edges)
    for class_name in schema.class_names:
        for ancestor in schema.ancestors(class_name):
            assert class_name in schema.descendants(ancestor)


@given(tree_edges())
@settings(max_examples=50)
def test_bfs_order_visits_every_class_once_parents_first(edges):
    schema = build_hierarchy("S", edges)
    order = schema.bfs_order()
    assert sorted(order) == sorted(schema.class_names)
    position = {name: index for index, name in enumerate(order)}
    for child, parent in schema.is_a_links():
        assert position[parent] < position[child]


@given(tree_edges())
@settings(max_examples=50)
def test_is_a_path_endpoints_and_links(edges):
    schema = build_hierarchy("S", edges)
    for class_name in schema.class_names:
        for ancestor in schema.ancestors(class_name):
            path = schema.is_a_path(class_name, ancestor)
            assert path is not None
            assert path[0] == class_name and path[-1] == ancestor
            for child, parent in zip(path, path[1:]):
                assert (child, parent) in schema.is_a_links()


@given(st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=8, unique=True))
def test_effective_class_includes_all_inherited_members(names):
    schema = Schema("S")
    previous = None
    for name in names:
        class_def = ClassDef(name).attr(f"attr_{name}")
        if previous is not None:
            class_def.add_parent(previous)
        schema.add_class(class_def)
        previous = name
    deepest = schema.effective_class(names[-1])
    for name in names:
        assert deepest.has_member(f"attr_{name}")
