"""Object instances: ground complex O-terms with validation (§2)."""

import pytest

from repro.errors import InstanceError, UnknownAttributeError
from repro.model import OID, ClassDef, ObjectInstance


def oid(n: int = 1, relation: str = "Empl") -> OID:
    return OID("a", "s", "d", relation, n)


@pytest.fixture
def empl_class() -> ClassDef:
    return (
        ClassDef("Empl")
        .attr("e_name")
        .attr("skills", multivalued=True)
        .agg("work_in", "Dept", "[m:1]")
    )


class TestValues:
    def test_attributes_and_aggregations_accessible(self, empl_class):
        instance = ObjectInstance(
            oid(), "Empl", {"e_name": "Kim"}, {"work_in": oid(9, "Dept")}
        )
        assert instance["e_name"] == "Kim"
        assert instance["work_in"] == oid(9, "Dept")

    def test_multivalued_values_normalize_to_frozenset(self):
        instance = ObjectInstance(oid(), "Empl", {"skills": ["a", "b", "a"]})
        assert instance["skills"] == frozenset({"a", "b"})

    def test_strings_are_not_treated_as_collections(self):
        instance = ObjectInstance(oid(), "Empl", {"e_name": "Kim"})
        assert instance["e_name"] == "Kim"

    def test_missing_member_raises(self, empl_class):
        instance = ObjectInstance(oid(), "Empl")
        with pytest.raises(UnknownAttributeError):
            instance["ghost"]

    def test_get_with_default(self):
        instance = ObjectInstance(oid(), "Empl")
        assert instance.get("ghost", "dflt") == "dflt"

    def test_aggregation_accepts_oid_sets(self):
        targets = [oid(1, "Dept"), oid(2, "Dept")]
        instance = ObjectInstance(oid(), "Empl", aggregations={"work_in": targets})
        assert instance["work_in"] == frozenset(targets)

    def test_aggregation_rejects_non_oid_targets(self):
        with pytest.raises(InstanceError):
            ObjectInstance(oid(), "Empl", aggregations={"work_in": ["str"]})


class TestValidation:
    def test_valid_instance_passes(self, empl_class):
        instance = ObjectInstance(
            oid(), "Empl", {"e_name": "Kim", "skills": ["sql"]},
            {"work_in": oid(1, "Dept")},
        )
        instance.validate_against(empl_class)

    def test_wrong_class_rejected(self, empl_class):
        instance = ObjectInstance(oid(), "Dept")
        with pytest.raises(InstanceError, match="class"):
            instance.validate_against(empl_class)

    def test_unknown_attribute_rejected(self, empl_class):
        instance = ObjectInstance(oid(), "Empl", {"ghost": 1})
        with pytest.raises(InstanceError, match="ghost"):
            instance.validate_against(empl_class)

    def test_type_mismatch_rejected(self, empl_class):
        instance = ObjectInstance(oid(), "Empl", {"e_name": 42})
        with pytest.raises(InstanceError, match="conform"):
            instance.validate_against(empl_class)

    def test_scalar_in_multivalued_slot_rejected(self, empl_class):
        instance = ObjectInstance(oid(), "Empl")
        instance._attributes["skills"] = "sql"  # bypass normalization
        with pytest.raises(InstanceError, match="multivalued"):
            instance.validate_against(empl_class)

    def test_set_in_single_valued_slot_rejected(self, empl_class):
        instance = ObjectInstance(oid(), "Empl", {"e_name": ["a", "b"]})
        with pytest.raises(InstanceError, match="single-valued"):
            instance.validate_against(empl_class)

    def test_missing_attributes_are_allowed(self, empl_class):
        ObjectInstance(oid(), "Empl").validate_against(empl_class)

    def test_unknown_aggregation_rejected(self, empl_class):
        instance = ObjectInstance(oid(), "Empl", aggregations={"ghost": oid(2)})
        with pytest.raises(InstanceError, match="ghost"):
            instance.validate_against(empl_class)


class TestMisc:
    def test_repr_shows_paper_like_form(self):
        instance = ObjectInstance(oid(), "Empl", {"e_name": "Kim"})
        assert repr(instance).startswith("<a.s.d.Empl.1: Empl |")

    def test_equality_and_hash(self):
        a = ObjectInstance(oid(), "Empl", {"e_name": "Kim"})
        b = ObjectInstance(oid(), "Empl", {"e_name": "Kim"})
        assert a == b
        assert hash(a) == hash(b)

    def test_as_tuple_projection(self):
        instance = ObjectInstance(oid(), "Empl", {"e_name": "Kim"})
        assert instance.as_tuple(("e_name", "ghost")) == ("Kim", None)
