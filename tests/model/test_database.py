"""ObjectDatabase: extents, value sets, aggregation traversal (§2-§3)."""

import pytest

from repro.errors import InstanceError, UnknownClassError
from repro.model import ClassDef, ObjectDatabase, Schema


@pytest.fixture
def schema() -> Schema:
    s = Schema("S")
    s.add_class(ClassDef("Dept").attr("d_name"))
    s.add_class(
        ClassDef("Empl").attr("e_name").attr("skills", multivalued=True)
        .agg("work_in", "Dept", "[m:1]")
    )
    s.add_class(ClassDef("Manager", parents=["Empl"]).attr("bonus", "integer"))
    return s


@pytest.fixture
def database(schema) -> ObjectDatabase:
    db = ObjectDatabase(schema, agent="a1")
    dept = db.insert("Dept", {"d_name": "R&D"})
    db.insert("Empl", {"e_name": "Kim", "skills": ["sql"]}, {"work_in": dept.oid})
    db.insert("Manager", {"e_name": "Lee", "bonus": 10}, {"work_in": dept.oid})
    return db


class TestExtents:
    def test_direct_extent_excludes_subclasses(self, database):
        assert len(database.direct_extent("Empl")) == 1

    def test_extent_includes_subclass_instances(self, database):
        # {<o: Manager>} ⊆ {<o: Empl>} — the typing O-term semantics.
        names = {obj["e_name"] for obj in database.extent("Empl")}
        assert names == {"Kim", "Lee"}

    def test_unknown_class_rejected(self, database):
        with pytest.raises(UnknownClassError):
            database.extent("Ghost")

    def test_select_scans_with_predicate(self, database):
        hits = database.select("Empl", lambda o: o["e_name"] == "Lee")
        assert len(hits) == 1 and hits[0].class_name == "Manager"


class TestValueSets:
    def test_value_set_is_non_null_subset(self, database, schema):
        database.insert("Empl", {"e_name": None})
        assert database.value_set("Empl", "e_name") == {"Kim", "Lee"}

    def test_value_set_flattens_multivalued(self, database):
        database.insert("Empl", {"skills": ["ml", "sql"]})
        assert database.value_set("Empl", "skills") == {"sql", "ml"}


class TestAggregation:
    def test_follow_dereferences_target(self, database):
        [kim] = database.select("Empl", lambda o: o["e_name"] == "Kim")
        [dept] = database.follow(kim, "work_in")
        assert dept["d_name"] == "R&D"

    def test_follow_missing_value_yields_empty(self, database):
        empl = database.insert("Empl", {"e_name": "NoDept"})
        assert database.follow(empl, "work_in") == []

    def test_by_oid_unknown_raises(self, database, schema):
        from repro.model import OID

        with pytest.raises(InstanceError):
            database.by_oid(OID("x", "y", "z", "r", 99))


class TestInsertion:
    def test_oids_follow_section3_scheme(self, database):
        [kim] = database.select("Empl", lambda o: o["e_name"] == "Kim")
        assert str(kim.oid) == "a1.pyoodb.S.Empl.1"

    def test_validation_uses_inherited_members(self, database):
        # Manager inherits e_name from Empl — insert above already proves
        # it; a bad value must still be caught through inheritance.
        with pytest.raises(InstanceError):
            database.insert("Manager", {"e_name": 42})

    def test_adopt_rejects_duplicate_oid(self, database):
        [kim] = database.select("Empl", lambda o: o["e_name"] == "Kim")
        with pytest.raises(InstanceError, match="already present"):
            database.adopt(kim)

    def test_counts(self, database):
        assert database.counts() == {"Dept": 1, "Empl": 1, "Manager": 1}
        assert len(database) == 3
