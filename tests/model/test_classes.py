"""ClassDef: member namespaces, fluent builders, type signatures (§2)."""

import pytest

from repro.errors import DuplicateDefinitionError, ModelError, UnknownAttributeError
from repro.model import (
    AggregationFunction,
    Attribute,
    Cardinality,
    ClassDef,
    ClassType,
    DataType,
)


def article_class() -> ClassDef:
    """The paper's §2 example: Article with Published_in [m:1]."""
    return (
        ClassDef("Article")
        .attr("title")
        .attr("author_name")
        .agg("Published_in", "Proceedings", "[m:1]")
    )


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            ClassDef("")

    def test_attr_shorthand_parses_primitive_names(self):
        class_def = ClassDef("C").attr("age", "integer")
        assert class_def.attribute("age").value_type is DataType.INTEGER

    def test_attr_shorthand_wraps_class_names(self):
        class_def = ClassDef("Book").attr("author", "Person")
        assert class_def.attribute("author").value_type == ClassType("Person")

    def test_agg_shorthand_parses_cardinality(self):
        class_def = article_class()
        agg = class_def.aggregation("Published_in")
        assert agg.range_class == "Proceedings"
        assert agg.cardinality is Cardinality.M_TO_ONE

    def test_attribute_and_aggregation_share_one_namespace(self):
        class_def = ClassDef("C").attr("x")
        with pytest.raises(DuplicateDefinitionError):
            class_def.agg("x", "D")

    def test_duplicate_attribute_rejected(self):
        class_def = ClassDef("C").attr("x")
        with pytest.raises(DuplicateDefinitionError):
            class_def.attr("x")

    def test_self_parent_rejected(self):
        with pytest.raises(ModelError):
            ClassDef("C", parents=["C"])

    def test_add_parent_is_idempotent(self):
        class_def = ClassDef("C").add_parent("P").add_parent("P")
        assert class_def.parents == ["P"]


class TestLookup:
    def test_member_finds_both_kinds(self):
        class_def = article_class()
        assert isinstance(class_def.member("title"), Attribute)
        assert isinstance(class_def.member("Published_in"), AggregationFunction)

    def test_unknown_member_raises_with_class_name(self):
        with pytest.raises(UnknownAttributeError, match="Article"):
            article_class().member("nope")

    def test_iteration_order_attributes_then_aggregations(self):
        names = [member.name for member in article_class()]
        assert names == ["title", "author_name", "Published_in"]

    def test_has_member(self):
        class_def = article_class()
        assert class_def.has_member("title")
        assert class_def.has_member("Published_in")
        assert not class_def.has_member("zzz")


class TestPresentation:
    def test_type_signature_matches_paper_layout(self):
        text = article_class().type_signature()
        assert text.startswith("type(Article) = <")
        assert "Published_in: Proceedings with [m:1]" in text

    def test_copy_preserves_members_under_new_name(self):
        original = article_class()
        clone = original.copy("Paper")
        assert clone.name == "Paper"
        assert clone.attribute_names == original.attribute_names
        assert clone.aggregation_names == original.aggregation_names

    def test_equality_ignores_parent_order(self):
        a = ClassDef("C", parents=["P", "Q"]).attr("x")
        b = ClassDef("C", parents=["Q", "P"]).attr("x")
        assert a == b
