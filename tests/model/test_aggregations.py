"""Cardinality constraints and aggregation declarations (§2, Fig 13)."""

import pytest

from repro.errors import ModelError
from repro.model import AggregationFunction, Cardinality
from repro.model.aggregations import relaxed


class TestCardinalityParse:
    def test_bracketed_forms(self):
        assert Cardinality.parse("[1:1]") is Cardinality.ONE_TO_ONE
        assert Cardinality.parse("[m:n]") is Cardinality.M_TO_N

    def test_brackets_optional(self):
        assert Cardinality.parse("m:1") is Cardinality.M_TO_ONE

    def test_paper_spelling_aliases(self):
        # The paper writes both [1:m]/[n:1] and [1:n]/[m:1].
        assert Cardinality.parse("[1:m]") is Cardinality.ONE_TO_N
        assert Cardinality.parse("[n:1]") is Cardinality.M_TO_ONE
        assert Cardinality.parse("[n:m]") is Cardinality.M_TO_N

    def test_mandatory_forms(self):
        assert Cardinality.parse("[md_n:1]") is Cardinality.MD_N_TO_ONE
        assert Cardinality.parse("md_1:n") is Cardinality.MD_ONE_TO_N

    def test_garbage_rejected(self):
        with pytest.raises(ModelError):
            Cardinality.parse("[x:y:z]")
        with pytest.raises(ModelError):
            Cardinality.parse("banana")


class TestMandatory:
    def test_is_mandatory_flag(self):
        assert Cardinality.MD_N_TO_ONE.is_mandatory
        assert not Cardinality.M_TO_ONE.is_mandatory

    def test_relaxed_drops_mandatory_marker(self):
        assert relaxed(Cardinality.MD_N_TO_ONE) is Cardinality.M_TO_ONE
        assert relaxed(Cardinality.MD_ONE_TO_ONE) is Cardinality.ONE_TO_ONE

    def test_relaxed_is_identity_on_plain_constraints(self):
        assert relaxed(Cardinality.ONE_TO_N) is Cardinality.ONE_TO_N


class TestAggregationFunction:
    def test_defaults_to_loosest_constraint(self):
        agg = AggregationFunction("f", "C")
        assert agg.cardinality is Cardinality.M_TO_N

    def test_str_matches_paper_layout(self):
        agg = AggregationFunction("Published_in", "Proceedings", Cardinality.M_TO_ONE)
        assert str(agg) == "Published_in: Proceedings with [m:1]"

    def test_requires_range_class(self):
        with pytest.raises(ModelError):
            AggregationFunction("f", "")
