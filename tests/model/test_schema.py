"""Schema: hierarchy queries, graph view, validation (§2, §6.1)."""

import pytest

from repro.errors import CycleError, DuplicateDefinitionError, UnknownClassError
from repro.model import ClassDef, Schema, VIRTUAL_ROOT, build_hierarchy


@pytest.fixture
def university() -> Schema:
    """S2 of Appendix A: human <- employee <- faculty <- professor."""
    return build_hierarchy(
        "S2",
        [
            ("employee", "human"),
            ("faculty", "employee"),
            ("professor", "faculty"),
        ],
        extra=["visitor"],
    )


class TestHierarchy:
    def test_roots_are_parentless_classes(self, university):
        assert set(university.roots()) == {"human", "visitor"}

    def test_children_of_virtual_root_are_roots(self, university):
        assert set(university.children(VIRTUAL_ROOT)) == {"human", "visitor"}

    def test_ancestors_are_transitive(self, university):
        assert university.ancestors("professor") == {"faculty", "employee", "human"}

    def test_descendants_are_transitive(self, university):
        assert university.descendants("human") == {"employee", "faculty", "professor"}

    def test_is_subclass_reflexive(self, university):
        assert university.is_subclass("faculty", "faculty")

    def test_is_subclass_transitive(self, university):
        assert university.is_subclass("professor", "human")
        assert not university.is_subclass("human", "professor")

    def test_is_a_path_returns_chain(self, university):
        path = university.is_a_path("professor", "human")
        assert path == ["professor", "faculty", "employee", "human"]

    def test_is_a_path_none_when_unreachable(self, university):
        assert university.is_a_path("visitor", "human") is None

    def test_bfs_order_parents_before_children(self, university):
        order = university.bfs_order()
        assert order.index("human") < order.index("employee") < order.index("faculty")


class TestEffectiveClass:
    def test_inherited_attributes_are_visible(self):
        schema = Schema("S")
        schema.add_class(ClassDef("person").attr("name"))
        schema.add_class(ClassDef("student", parents=["person"]).attr("gpa"))
        effective = schema.effective_class("student")
        assert effective.has_member("name")
        assert effective.has_member("gpa")

    def test_subclass_declaration_wins_on_clash(self):
        schema = Schema("S")
        schema.add_class(ClassDef("person").attr("id", "string"))
        schema.add_class(ClassDef("student", parents=["person"]).attr("id", "integer"))
        from repro.model import DataType

        assert (
            schema.effective_class("student").attribute("id").value_type
            is DataType.INTEGER
        )

    def test_diamond_inheritance_merges_once(self):
        schema = build_hierarchy(
            "S", [("b", "a"), ("c", "a"), ("d", "b"), ("d", "c")]
        )
        schema.cls("a").attr("x")
        effective = schema.effective_class("d")
        assert effective.has_member("x")


class TestValidation:
    def test_unknown_parent_rejected(self):
        schema = Schema("S")
        schema.add_class(ClassDef("a", parents=["ghost"]))
        with pytest.raises(UnknownClassError, match="ghost"):
            schema.validate()

    def test_unknown_aggregation_range_rejected(self):
        schema = Schema("S")
        schema.add_class(ClassDef("a").agg("f", "ghost"))
        with pytest.raises(UnknownClassError, match="ghost"):
            schema.validate()

    def test_unknown_complex_attribute_type_rejected(self):
        schema = Schema("S")
        schema.add_class(ClassDef("a").attr("x", "ghost"))
        with pytest.raises(UnknownClassError, match="ghost"):
            schema.validate()

    def test_cycle_detected_and_reported(self):
        schema = Schema("S")
        schema.add_class(ClassDef("a", parents=["b"]))
        schema.add_class(ClassDef("b", parents=["a"]))
        with pytest.raises(CycleError, match="a|b"):
            schema.validate()

    def test_duplicate_class_rejected(self):
        schema = Schema("S")
        schema.add_class(ClassDef("a"))
        with pytest.raises(DuplicateDefinitionError):
            schema.add_class(ClassDef("a"))


class TestLinks:
    def test_is_a_links_enumerated(self, university):
        assert ("professor", "faculty") in university.is_a_links()
        assert len(university.is_a_links()) == 3

    def test_aggregation_links_enumerated(self):
        schema = Schema("S")
        schema.add_class(ClassDef("Proceedings"))
        schema.add_class(ClassDef("Article").agg("Published_in", "Proceedings"))
        assert schema.aggregation_links() == [
            ("Article", "Published_in", "Proceedings")
        ]

    def test_describe_mentions_every_class(self, university):
        text = university.describe()
        for name in university.class_names:
            assert name in text
