"""Schema text format and JSON (de)serialization."""

import pytest

from repro.errors import ModelError
from repro.model import (
    Cardinality,
    ClassType,
    DataType,
    parse_schema,
    schema_from_dict,
    schema_to_dict,
    schema_to_text,
)
from repro.workloads import appendix_a, fig4_suite

SAMPLE = """
# a sample schema file
schema S1
class person
  attr ssn#: string
  attr age: integer
  attr interests: {string}
class student extends person
  attr gpa: real
class proceedings
  attr year: integer
class article
  attr title: string
  attr meta: proceedings
  agg Published_in -> proceedings [m:1]
"""


class TestParse:
    def test_classes_and_inheritance(self):
        schema = parse_schema(SAMPLE)
        assert set(schema.class_names) == {
            "person", "student", "proceedings", "article",
        }
        assert schema.parents("student") == ("person",)

    def test_attribute_types(self):
        schema = parse_schema(SAMPLE)
        person = schema.cls("person")
        assert person.attribute("age").value_type is DataType.INTEGER
        assert person.attribute("interests").multivalued

    def test_complex_attribute(self):
        schema = parse_schema(SAMPLE)
        assert schema.cls("article").attribute("meta").value_type == ClassType(
            "proceedings"
        )

    def test_aggregation_with_cardinality(self):
        schema = parse_schema(SAMPLE)
        agg = schema.cls("article").aggregation("Published_in")
        assert agg.range_class == "proceedings"
        assert agg.cardinality is Cardinality.M_TO_ONE

    def test_member_before_class_rejected(self):
        with pytest.raises(ModelError, match="outside a class"):
            parse_schema("schema S\nattr x: string")

    def test_missing_schema_header_rejected(self):
        with pytest.raises(ModelError, match="expected 'schema"):
            parse_schema("class a")

    def test_empty_text_rejected(self):
        with pytest.raises(ModelError, match="empty"):
            parse_schema("# only comments\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(ModelError, match="cannot parse"):
            parse_schema("schema S\nclass a\n  wibble wobble")

    def test_validation_runs(self):
        with pytest.raises(Exception):
            parse_schema("schema S\nclass a extends ghost")


class TestRoundTrip:
    def test_text_roundtrip(self):
        schema = parse_schema(SAMPLE)
        again = parse_schema(schema_to_text(schema))
        assert schema_to_text(again) == schema_to_text(schema)

    @pytest.mark.parametrize("scenario", [appendix_a, fig4_suite])
    def test_scenarios_roundtrip_via_text(self, scenario):
        s1, s2, _ = scenario()
        for schema in (s1, s2):
            again = parse_schema(schema_to_text(schema))
            assert set(again.class_names) == set(schema.class_names)
            assert set(again.is_a_links()) == set(schema.is_a_links())

    def test_json_roundtrip(self):
        import json

        schema = parse_schema(SAMPLE)
        payload = json.dumps(schema_to_dict(schema))
        again = schema_from_dict(json.loads(payload))
        assert schema_to_text(again) == schema_to_text(schema)

    def test_parse_schema_file(self, tmp_path):
        from repro.model import parse_schema_file

        path = tmp_path / "s.schema"
        path.write_text(SAMPLE)
        assert len(parse_schema_file(str(path))) == 4
