"""Primitive data types (§2): parsing and conformance."""

import datetime

import pytest

from repro.model.datatypes import DataType, conforms, default_value


class TestParse:
    def test_all_six_types_parse(self):
        for name in ("boolean", "integer", "real", "character", "string", "date"):
            assert DataType.parse(name).value == name

    def test_parse_is_case_insensitive(self):
        assert DataType.parse("STRING") is DataType.STRING

    def test_parse_strips_whitespace(self):
        assert DataType.parse("  integer ") is DataType.INTEGER

    def test_unknown_type_lists_valid_ones(self):
        with pytest.raises(ValueError, match="boolean.*string"):
            DataType.parse("float")


class TestConforms:
    def test_none_conforms_to_every_type(self):
        for data_type in DataType:
            assert conforms(None, data_type)

    def test_boolean(self):
        assert conforms(True, DataType.BOOLEAN)
        assert not conforms(1, DataType.BOOLEAN)

    def test_integer_rejects_bool(self):
        # bool is an int subclass in Python; the model keeps them apart.
        assert conforms(3, DataType.INTEGER)
        assert not conforms(True, DataType.INTEGER)

    def test_real_accepts_int_and_float_but_not_bool(self):
        assert conforms(2.5, DataType.REAL)
        assert conforms(2, DataType.REAL)
        assert not conforms(True, DataType.REAL)

    def test_character_is_single_char(self):
        assert conforms("x", DataType.CHARACTER)
        assert not conforms("xy", DataType.CHARACTER)

    def test_string(self):
        assert conforms("hello", DataType.STRING)
        assert not conforms(42, DataType.STRING)

    def test_date(self):
        assert conforms(datetime.date(1999, 3, 23), DataType.DATE)
        assert not conforms("1999-03-23", DataType.DATE)


class TestDefaults:
    def test_every_default_conforms_to_its_type(self):
        for data_type in DataType:
            assert conforms(default_value(data_type), data_type)
