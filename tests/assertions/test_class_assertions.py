"""Class assertions (Fig 3 structure), orientation, validation."""

import pytest

from repro.errors import AssertionSpecError, PathError
from repro.assertions import (
    AttributeCorrespondence,
    AttributeKind,
    ClassKind,
    Path,
    ValueCorrespondence,
    ValueOp,
    derivation,
    equivalence,
    exclusion,
    inclusion,
    intersection,
)
from repro.model import ClassDef, Schema


@pytest.fixture
def schemas():
    s1 = Schema("S1")
    s1.add_class(ClassDef("person").attr("ssn#").attr("full_name"))
    s2 = Schema("S2")
    s2.add_class(ClassDef("human").attr("ssn#").attr("name"))
    return s1, s2


def person_human(schemas):
    corr = AttributeCorrespondence(
        Path.parse("S1.person.full_name"),
        Path.parse("S2.human.name"),
        AttributeKind.EQUIVALENCE,
    )
    return equivalence("S1.person", "S2.human", attribute_corrs=[corr])


class TestConstruction:
    def test_head_renders_like_fig4(self, schemas):
        assertion = person_human(schemas)
        assert assertion.head() == "S1.person ≡ S2.human"

    def test_multi_source_head_renders_like_example3(self):
        assertion = derivation(["S1.parent", "S1.brother"], "S2.uncle")
        assert assertion.head() == "S1(parent, brother) → S2.uncle"

    def test_set_kinds_need_single_source(self):
        with pytest.raises(AssertionSpecError):
            from repro.assertions.class_assertions import ClassAssertion

            ClassAssertion(
                ClassKind.EQUIVALENCE,
                (Path.parse("S1.a"), Path.parse("S1.b")),
                Path.parse("S2.c"),
            )

    def test_sources_must_share_one_schema(self):
        with pytest.raises(AssertionSpecError, match="one schema"):
            derivation(["S1.parent", "S3.brother"], "S2.uncle")

    def test_both_sides_must_differ(self):
        with pytest.raises(AssertionSpecError, match="two different schemas"):
            equivalence("S1.a", "S1.b")

    def test_sides_must_be_class_paths(self):
        with pytest.raises(AssertionSpecError, match="class paths"):
            equivalence("S1.a.x", "S2.b")

    def test_misoriented_attribute_corr_rejected(self):
        corr = AttributeCorrespondence(
            Path.parse("S2.human.name"),
            Path.parse("S1.person.full_name"),
            AttributeKind.EQUIVALENCE,
        )
        with pytest.raises(AssertionSpecError, match="not oriented"):
            equivalence("S1.person", "S2.human", attribute_corrs=[corr])

    def test_value_corr_schema_must_match_side(self):
        corr = ValueCorrespondence(
            Path.parse("S3.parent.Pssn#"), Path.parse("S3.brother.brothers"), ValueOp.IN
        )
        with pytest.raises(AssertionSpecError):
            derivation(["S1.parent", "S1.brother"], "S2.uncle", value_corrs_left=[corr])


class TestFlip:
    def test_flipping_exchanges_sides_and_kind(self, schemas):
        assertion = inclusion("S1.person", "S2.human")
        flipped = assertion.flipped()
        assert flipped.kind is ClassKind.SUPERSET
        assert flipped.source.class_name == "human"
        assert flipped.target.class_name == "person"

    def test_flipping_flips_member_correspondences(self, schemas):
        assertion = person_human(schemas)
        flipped = assertion.flipped()
        corr = flipped.attribute_corrs[0]
        assert corr.left.schema == "S2" and corr.right.schema == "S1"

    def test_derivation_cannot_flip(self):
        with pytest.raises(AssertionSpecError):
            derivation(["S1.parent"], "S2.uncle").flipped()


class TestValidate:
    def test_valid_assertion_passes(self, schemas):
        person_human(schemas).validate(*schemas)

    def test_dangling_attribute_detected(self, schemas):
        corr = AttributeCorrespondence(
            Path.parse("S1.person.ghost"),
            Path.parse("S2.human.name"),
            AttributeKind.EQUIVALENCE,
        )
        assertion = equivalence("S1.person", "S2.human", attribute_corrs=[corr])
        with pytest.raises(PathError):
            assertion.validate(*schemas)

    def test_schema_order_enforced(self, schemas):
        s1, s2 = schemas
        with pytest.raises(AssertionSpecError, match="validates against"):
            person_human(schemas).validate(s2, s1)

    def test_aggregation_corr_must_name_functions(self):
        from repro.assertions import AggregationCorrespondence, AggregationKind

        s1 = Schema("S1")
        s1.add_class(ClassDef("a").attr("x"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("b").attr("y"))
        corr = AggregationCorrespondence(
            Path.parse("S1.a.x"), Path.parse("S2.b.y"), AggregationKind.EQUIVALENCE
        )
        assertion = equivalence("S1.a", "S2.b", aggregation_corrs=[corr])
        with pytest.raises(PathError, match="not an aggregation"):
            assertion.validate(s1, s2)


class TestDescribe:
    def test_describe_uses_fig3_sections(self):
        assertion = derivation(
            ["S1.parent", "S1.brother"],
            "S2.uncle",
            value_corrs_left=[
                ValueCorrespondence(
                    Path.parse("S1.parent.Pssn#"),
                    Path.parse("S1.brother.brothers"),
                    ValueOp.IN,
                )
            ],
            attribute_corrs=[
                AttributeCorrespondence(
                    Path.parse("S1.brother.Bssn#"),
                    Path.parse("S2.uncle.Ussn#"),
                    AttributeKind.EQUIVALENCE,
                )
            ],
        )
        text = assertion.describe()
        assert "value correspondence of attributes in S1:" in text
        assert "attribute correspondence:" in text
        assert "S1.parent.Pssn# ∈ S1.brother.brothers" in text


class TestShorthands:
    def test_all_shorthands_produce_expected_kinds(self):
        assert equivalence("S1.a", "S2.b").kind is ClassKind.EQUIVALENCE
        assert inclusion("S1.a", "S2.b").kind is ClassKind.SUBSET
        assert intersection("S1.a", "S2.b").kind is ClassKind.INTERSECTION
        assert exclusion("S1.a", "S2.b").kind is ClassKind.EXCLUSION
        assert derivation(["S1.a"], "S2.b").kind is ClassKind.DERIVATION
