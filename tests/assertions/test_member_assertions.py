"""Attribute / aggregation / value correspondence guards and behaviour."""

import pytest

from repro.errors import AssertionSpecError
from repro.assertions import (
    AggregationCorrespondence,
    AggregationKind,
    AttributeCorrespondence,
    AttributeKind,
    Path,
    ValueCorrespondence,
    ValueOp,
    WithCondition,
)


def p(text: str) -> Path:
    return Path.parse(text)


class TestAttributeCorrespondence:
    def test_composed_into_requires_new_name(self):
        with pytest.raises(AssertionSpecError, match="α"):
            AttributeCorrespondence(
                p("S1.a.city"), p("S2.b.street"), AttributeKind.COMPOSED_INTO
            )

    def test_composed_name_only_for_alpha(self):
        with pytest.raises(AssertionSpecError, match="COMPOSED_INTO"):
            AttributeCorrespondence(
                p("S1.a.x"), p("S2.b.y"), AttributeKind.EQUIVALENCE,
                composed_name="z",
            )

    def test_two_class_paths_rejected(self):
        with pytest.raises(AssertionSpecError, match="class assertion"):
            AttributeCorrespondence(p("S1.a"), p("S2.b"), AttributeKind.EQUIVALENCE)

    def test_one_class_path_allowed_for_nesting(self):
        # S1.Book ≡ S2.Author.book (§4.1's last example)
        corr = AttributeCorrespondence(
            p("S1.Book"), p("S2.Author.book"), AttributeKind.EQUIVALENCE
        )
        assert corr.left.is_class_path

    def test_flip_preserves_condition(self):
        condition = WithCondition.of("S2.stock.time", "=", "March")
        corr = AttributeCorrespondence(
            p("S1.m.p"), p("S2.stock.price"), AttributeKind.SUBSET,
            condition=condition,
        )
        flipped = corr.flipped()
        assert flipped.kind is AttributeKind.SUPERSET
        assert flipped.condition is condition

    def test_more_specific_cannot_flip(self):
        corr = AttributeCorrespondence(
            p("S1.r.cuisine"), p("S2.r2.category"), AttributeKind.MORE_SPECIFIC
        )
        with pytest.raises(AssertionSpecError):
            corr.flipped()

    def test_str_alpha_form(self):
        corr = AttributeCorrespondence(
            p("S1.a.city"), p("S2.b.street"), AttributeKind.COMPOSED_INTO,
            composed_name="address",
        )
        assert "α(address)" in str(corr)


class TestWithCondition:
    def test_all_tau_operators(self):
        for op in ("=", "<", "<=", ">", ">=", "!="):
            WithCondition.of("S1.c.x", op, 1)

    def test_unknown_operator_rejected(self):
        with pytest.raises(AssertionSpecError):
            WithCondition.of("S1.c.x", "~", 1)

    def test_str(self):
        condition = WithCondition.of("S2.stock.time", "=", "March")
        assert str(condition) == "with S2.stock.time = 'March'"


class TestAggregationCorrespondence:
    def test_needs_function_paths(self):
        with pytest.raises(AssertionSpecError):
            AggregationCorrespondence(p("S1.a"), p("S2.b.g"), AggregationKind.REVERSE)

    def test_function_names(self):
        corr = AggregationCorrespondence(
            p("S1.man.spouse"), p("S2.woman.spouse"), AggregationKind.REVERSE
        )
        assert corr.left_function == "spouse"
        assert corr.right_function == "spouse"

    def test_reverse_flips_to_itself(self):
        corr = AggregationCorrespondence(
            p("S1.man.spouse"), p("S2.woman.spouse"), AggregationKind.REVERSE
        )
        assert corr.flipped().kind is AggregationKind.REVERSE


class TestValueCorrespondence:
    def test_same_schema_required(self):
        with pytest.raises(AssertionSpecError, match="same"):
            ValueCorrespondence(p("S1.a.x"), p("S2.b.y"), ValueOp.IN)

    def test_attribute_paths_required(self):
        with pytest.raises(AssertionSpecError):
            ValueCorrespondence(p("S1.a"), p("S1.b.y"), ValueOp.EQ)

    @pytest.mark.parametrize(
        "op,joins",
        [
            (ValueOp.EQ, True),
            (ValueOp.IN, True),
            (ValueOp.NE, False),
            (ValueOp.SUPSET, False),
            (ValueOp.INTERSECT, False),
            (ValueOp.DISJOINT, False),
        ],
    )
    def test_join_classification(self, op, joins):
        corr = ValueCorrespondence(p("S1.a.x"), p("S1.b.y"), op)
        assert corr.joins is joins

    def test_non_join_ops_add_isolated_nodes_to_graph(self):
        from repro.assertions import AssertionGraph, derivation

        corr = ValueCorrespondence(p("S1.a.x"), p("S1.b.y"), ValueOp.DISJOINT)
        assertion = derivation(
            ["S1.a", "S1.b"], "S2.c", value_corrs_left=[corr]
        )
        graph = AssertionGraph(assertion)
        assert len(graph.components()) == 2
        assert graph.edges() == ()
