"""Assertion-set analysis lints."""

import pytest

from repro.assertions import AssertionSet, parse
from repro.assertions.analysis import analyze, report
from repro.model import ClassDef, Schema


def schemas():
    s1 = Schema("S1")
    for name in ("a", "b"):
        s1.add_class(ClassDef(name).attr("k"))
    s1.add_class(ClassDef("a_sub", parents=["a"]))
    s2 = Schema("S2")
    for name in ("x", "y"):
        s2.add_class(ClassDef(name).attr("k"))
    s2.add_class(ClassDef("x_sub", parents=["x"]))
    return s1, s2


def build(text):
    s1, s2 = schemas()
    assertions = AssertionSet("S1", "S2")
    assertions.extend(parse(text))
    return assertions, s1, s2


def kinds_of(findings):
    return [finding.kind for finding in findings]


class TestLints:
    def test_clean_set_reports_only_unmentioned(self):
        assertions, s1, s2 = build(
            """
            assertion S1.a == S2.x
            assertion S1.b == S2.y
            assertion S1.a_sub == S2.x_sub
            """
        )
        assert analyze(assertions, s1, s2) == []

    def test_mutual_inclusion_rejected_eagerly(self):
        # ⊆ both ways is a conflict AssertionSet refuses at add time —
        # no lint needed for it.
        from repro.errors import AssertionConflictError

        with pytest.raises(AssertionConflictError):
            build(
                """
                assertion S1.a <= S2.x
                assertion S2.x <= S1.a
                """
            )

    def test_equivalence_fan_detected(self):
        assertions, s1, s2 = build(
            """
            assertion S1.a == S2.x
            assertion S1.a == S2.y
            """
        )
        findings = analyze(assertions, s1, s2)
        fans = [f for f in findings if f.kind == "equivalence-fan"]
        assert fans and "a" in fans[0].concepts

    def test_assertion_under_exclusion_detected(self):
        assertions, s1, s2 = build(
            """
            assertion S1.a ! S2.x
            assertion S1.a_sub ^ S2.x_sub
            """
        )
        findings = analyze(assertions, s1, s2)
        assert "assertion-under-exclusion" in kinds_of(findings)

    def test_redundant_inclusion_detected(self):
        assertions, s1, s2 = build(
            """
            assertion S1.b <= S2.x
            assertion S1.b <= S2.x_sub
            """
        )
        findings = analyze(assertions, s1, s2)
        redundant = [f for f in findings if f.kind == "redundant-inclusion"]
        assert redundant
        assert redundant[0].concepts == ("b", "x")

    def test_unmentioned_classes_listed(self):
        assertions, s1, s2 = build("assertion S1.a == S2.x")
        findings = analyze(assertions, s1, s2)
        unmentioned = {
            f.concepts[0] for f in findings if f.kind == "unmentioned-class"
        }
        assert unmentioned == {"b", "a_sub", "y", "x_sub"}

    def test_report_renders(self):
        assertions, s1, s2 = build("assertion S1.a == S2.x")
        text = report(assertions, s1, s2)
        assert "finding" in text
        assert "[unmentioned-class]" in text

    def test_report_clean(self):
        assertions, s1, s2 = build(
            """
            assertion S1.a == S2.x
            assertion S1.b == S2.y
            assertion S1.a_sub == S2.x_sub
            """
        )
        assert "no findings" in report(assertions, s1, s2)
