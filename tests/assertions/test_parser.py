"""The assertion DSL parser."""

import pytest

from repro.errors import AssertionParseError
from repro.assertions import (
    AggregationKind,
    AttributeKind,
    ClassKind,
    ValueOp,
    parse,
)


class TestHeads:
    def test_all_class_operators(self):
        text = """
        assertion S1.a == S2.b
        assertion S1.c <= S2.d
        assertion S1.e >= S2.f
        assertion S1.g ^ S2.h
        assertion S1.i ! S2.j
        assertion S1.k -> S2.l
        """
        kinds = [a.kind for a in parse(text)]
        assert kinds == [
            ClassKind.EQUIVALENCE,
            ClassKind.SUBSET,
            ClassKind.SUPERSET,
            ClassKind.INTERSECTION,
            ClassKind.EXCLUSION,
            ClassKind.DERIVATION,
        ]

    def test_unicode_operators_accepted(self):
        [a] = parse("assertion S1.a ≡ S2.b")
        assert a.kind is ClassKind.EQUIVALENCE

    def test_multi_source_derivation_with_spaces(self):
        [a] = parse("assertion S1(parent, brother) -> S2.uncle")
        assert a.source_classes == ("parent", "brother")

    def test_multi_source_only_for_derivation(self):
        with pytest.raises(AssertionParseError, match="single source"):
            parse("assertion S1(a, b) == S2.c")

    def test_unknown_operator_reported_with_line(self):
        with pytest.raises(AssertionParseError, match="line 1"):
            parse("assertion S1.a ~~ S2.b")


class TestBodies:
    def test_attribute_kinds(self):
        text = """
        assertion S1.a == S2.b
          attr S1.a.w == S2.b.w
          attr S1.a.x ^ S2.b.x
          attr S1.a.y alpha(addr) S2.b.y
          attr S1.a.z beta S2.b.z
        end
        """
        [a] = parse(text)
        kinds = [c.kind for c in a.attribute_corrs]
        assert kinds == [
            AttributeKind.EQUIVALENCE,
            AttributeKind.INTERSECTION,
            AttributeKind.COMPOSED_INTO,
            AttributeKind.MORE_SPECIFIC,
        ]
        assert a.attribute_corrs[2].composed_name == "addr"

    def test_with_condition_parsed(self):
        text = """
        assertion S1.m -> S2.stock
          attr S1.m.p <= S2.stock.price with S2.stock.time = 'March'
        end
        """
        [a] = parse(text)
        condition = a.attribute_corrs[0].condition
        assert condition is not None
        assert condition.constant == "March"
        assert str(condition.attribute) == "S2.stock.time"

    def test_agg_reverse(self):
        text = """
        assertion S1.man ! S2.woman
          agg S1.man.spouse rev S2.woman.spouse
        end
        """
        [a] = parse(text)
        assert a.aggregation_corrs[0].kind is AggregationKind.REVERSE

    def test_value_correspondence_sides_assigned(self):
        text = """
        assertion S1(parent, brother) -> S2.uncle
          value S1.parent.Pssn# in S1.brother.brothers
        end
        """
        [a] = parse(text)
        assert len(a.value_corrs_left) == 1
        assert a.value_corrs_left[0].op is ValueOp.IN

    def test_reversed_correspondence_reorients(self):
        text = """
        assertion S1.a <= S2.b
          attr S2.b.x >= S1.a.x
        end
        """
        [a] = parse(text)
        corr = a.attribute_corrs[0]
        assert corr.left.schema == "S1"
        assert corr.kind is AttributeKind.SUBSET


class TestLexical:
    def test_hash_in_attribute_names_survives(self):
        text = """
        assertion S1.person == S2.human
          attr S1.person.ssn# == S2.human.ssn#   # trailing comment
        end
        """
        [a] = parse(text)
        assert a.attribute_corrs[0].left.terminal == "ssn#"

    def test_comment_lines_ignored(self):
        text = "# header\nassertion S1.a == S2.b\n# inner\nend"
        assert len(parse(text)) == 1

    def test_block_without_end_closed_at_next_assertion(self):
        text = "assertion S1.a == S2.b\nassertion S1.c == S2.d"
        assert len(parse(text)) == 2

    def test_end_without_block_rejected(self):
        with pytest.raises(AssertionParseError, match="outside"):
            parse("end")

    def test_directive_outside_block_rejected(self):
        with pytest.raises(AssertionParseError, match="expected"):
            parse("attr S1.a.x == S2.b.x")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssertionParseError, match="unknown directive"):
            parse("assertion S1.a == S2.b\nfoo bar baz\nend")

    def test_parse_file(self, tmp_path):
        from repro.assertions import parse_file

        path = tmp_path / "a.dsl"
        path.write_text("assertion S1.a == S2.b\n")
        assert len(parse_file(str(path))) == 1


class TestScenarioTexts:
    def test_all_builtin_scenarios_parse_and_validate(
        self,
        appendix_a_scenario,
        bibliography_scenario,
        stock_scenario,
        car_scenario,
        fig4_scenario,
    ):
        from repro.assertions import AssertionSet

        for scenario in (
            appendix_a_scenario,
            bibliography_scenario,
            stock_scenario,
            car_scenario,
            fig4_scenario,
        ):
            s1, s2, text = scenario[:3]
            assertions = AssertionSet(s1.name, s2.name)
            assertions.extend(parse(text))
            assertions.validate(s1, s2)
