"""AssertionSet: oriented lookup, conflicts, derivation indexing."""

import pytest

from repro.errors import AssertionConflictError, AssertionSpecError
from repro.assertions import (
    AssertionSet,
    ClassKind,
    derivation,
    equivalence,
    exclusion,
    inclusion,
    intersection,
)


@pytest.fixture
def assertion_set() -> AssertionSet:
    s = AssertionSet("S1", "S2")
    s.add(equivalence("S1.person", "S2.human"))
    s.add(inclusion("S1.lecturer", "S2.employee"))
    s.add(derivation(["S1.parent", "S1.brother"], "S2.uncle"))
    return s


class TestLookup:
    def test_equivalence_found(self, assertion_set):
        assert assertion_set.kind_of("person", "human") is ClassKind.EQUIVALENCE

    def test_lookup_is_oriented(self, assertion_set):
        assertion_set.add(inclusion("S2.visitor", "S1.person"))
        # Declared S2 ⊆ S1 → looked up (S1 class, S2 class) it reads ⊇.
        assert assertion_set.kind_of("person", "visitor") is ClassKind.SUPERSET

    def test_missing_pair_is_none(self, assertion_set):
        assert assertion_set.lookup("person", "employee") is None

    def test_oriented_assertion_reverses_declaration(self, assertion_set):
        assertion_set.add(inclusion("S2.visitor", "S1.person"))
        lookup = assertion_set.lookup("person", "visitor")
        oriented = lookup.oriented_assertion()
        assert oriented.left_schema == "S1"
        assert oriented.kind is ClassKind.SUPERSET

    def test_derivation_indexed_per_source_pair(self, assertion_set):
        assert assertion_set.kind_of("parent", "uncle") is ClassKind.DERIVATION
        assert assertion_set.kind_of("brother", "uncle") is ClassKind.DERIVATION
        assert len(assertion_set.derivations_for("parent", "uncle")) == 1

    def test_set_relationship_wins_over_derivation(self):
        s = AssertionSet("S1", "S2")
        s.add(derivation(["S1.a"], "S2.b"))
        s.add(intersection("S1.a", "S2.b"))
        assert s.kind_of("a", "b") is ClassKind.INTERSECTION


class TestConflicts:
    def test_conflicting_kinds_rejected(self, assertion_set):
        with pytest.raises(AssertionConflictError, match="already related"):
            assertion_set.add(exclusion("S1.person", "S2.human"))

    def test_duplicate_assertion_rejected(self, assertion_set):
        with pytest.raises(AssertionConflictError, match="duplicate"):
            assertion_set.add(equivalence("S1.person", "S2.human"))

    def test_multiple_derivations_per_pair_allowed(self):
        s = AssertionSet("S1", "S2")
        s.add(derivation(["S1.a"], "S2.b"))
        s.add(derivation(["S1.a"], "S2.b"))  # decomposed parts share heads
        assert len(s.derivations_for("a", "b")) == 2

    def test_foreign_schema_rejected(self, assertion_set):
        with pytest.raises(AssertionSpecError, match="this\nset holds|this set holds"):
            assertion_set.add(equivalence("S3.x", "S4.y"))


class TestEnumeration:
    def test_by_kind(self, assertion_set):
        assert len(assertion_set.by_kind(ClassKind.EQUIVALENCE)) == 1
        assert len(assertion_set.all_derivations()) == 1

    def test_mentioned_classes(self, assertion_set):
        assert set(assertion_set.mentioned_classes("S1")) == {
            "person", "lecturer", "parent", "brother",
        }
        assert set(assertion_set.mentioned_classes("S2")) == {
            "human", "employee", "uncle",
        }

    def test_len_and_iter(self, assertion_set):
        assert len(assertion_set) == 3
        assert len(list(assertion_set)) == 3
