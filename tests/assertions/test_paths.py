"""Paths (Definition 4.1): parsing, name references, resolution."""

import pytest

from repro.errors import PathError
from repro.assertions import Path
from repro.model import ClassDef, Schema


@pytest.fixture
def book_schema() -> Schema:
    """The §4 Book class with the nested author record."""
    schema = Schema("S1")
    schema.add_class(ClassDef("person_rec").attr("name").attr("birthday", "date"))
    schema.add_class(
        ClassDef("Book").attr("ISBN").attr("title").attr("author", "person_rec")
    )
    schema.add_class(ClassDef("Proceedings").attr("year"))
    schema.add_class(
        ClassDef("Article").attr("title").agg("Published_in", "Proceedings", "[m:1]")
    )
    return schema


class TestParse:
    def test_plain_path(self):
        path = Path.parse("S1.Book.author.birthday")
        assert path.schema == "S1"
        assert path.class_name == "Book"
        assert path.elements == ("author", "birthday")
        assert not path.name_reference

    def test_bullet_separator_accepted(self):
        assert Path.parse("S1•Book•title") == Path.parse("S1.Book.title")

    def test_name_reference_quoted_terminal(self):
        # Example 1: Author•book•"title" refers to the string "title".
        path = Path.parse('S2.Author.book."title"')
        assert path.name_reference
        assert path.terminal == "title"

    def test_class_path(self):
        path = Path.parse("S1.Book")
        assert path.is_class_path
        assert path.terminal is None

    def test_too_short_rejected(self):
        with pytest.raises(PathError):
            Path.parse("Book")

    def test_name_reference_requires_elements(self):
        with pytest.raises(PathError):
            Path("S1", "Book", (), name_reference=True)


class TestAccessors:
    def test_descriptor_is_dotted_elements(self):
        assert Path.parse("S1.Book.author.name").descriptor == "author.name"

    def test_child_extends(self):
        assert Path.parse("S1.Book").child("title") == Path.parse("S1.Book.title")

    def test_to_class_truncates(self):
        assert Path.parse("S1.Book.title").to_class() == Path.parse("S1.Book")

    def test_canonical_distinguishes_name_references(self):
        value = Path.parse("S1.Book.title")
        name = Path.parse('S1.Book."title"')
        assert value.canonical() != name.canonical()

    def test_str_roundtrip(self):
        for text in ("S1.Book.author.name", 'S2.Author.book."title"'):
            assert str(Path.parse(text)) == text


class TestResolve:
    def test_attribute_path_resolves(self, book_schema):
        Path.parse("S1.Book.title").resolve(book_schema)

    def test_nested_path_walks_complex_attribute(self, book_schema):
        Path.parse("S1.Book.author.birthday").resolve(book_schema)

    def test_aggregation_path_walks_range_class(self, book_schema):
        Path.parse("S1.Article.Published_in.year").resolve(book_schema)

    def test_unknown_class_rejected(self, book_schema):
        with pytest.raises(PathError, match="no class"):
            Path.parse("S1.Ghost.title").resolve(book_schema)

    def test_unknown_member_rejected(self, book_schema):
        with pytest.raises(PathError, match="no member"):
            Path.parse("S1.Book.ghost").resolve(book_schema)

    def test_primitive_attribute_cannot_continue(self, book_schema):
        with pytest.raises(PathError, match="not class-typed"):
            Path.parse("S1.Book.title.length").resolve(book_schema)

    def test_wrong_schema_rejected(self, book_schema):
        with pytest.raises(PathError, match="qualified"):
            Path.parse("S9.Book.title").resolve(book_schema)

    def test_resolves_in_boolean_form(self, book_schema):
        assert Path.parse("S1.Book.ISBN").resolves_in(book_schema)
        assert not Path.parse("S1.Book.zzz").resolves_in(book_schema)
