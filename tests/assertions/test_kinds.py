"""Tables 1-3: taxonomy completeness and orientation flipping."""

import pytest

from repro.assertions import (
    AggregationKind,
    AttributeKind,
    ClassKind,
    TABLE_1,
    TABLE_2,
    TABLE_3,
    ValueOp,
    flipped,
    render_table,
)


class TestTable1:
    def test_class_kinds_cover_table_1(self):
        symbols = {kind.value for kind in ClassKind}
        assert symbols == {"≡", "⊆", "⊇", "∩", "∅", "→"}

    def test_table_1_rows(self):
        meanings = {meaning for _, meaning in TABLE_1}
        assert meanings == {
            "equivalence", "inclusion", "intersection", "exclusion", "derivation",
        }


class TestTable2:
    def test_attribute_kinds_cover_table_2(self):
        symbols = {kind.value for kind in AttributeKind}
        assert symbols == {"≡", "⊆", "⊇", "∩", "∅", "α", "β"}

    def test_table_2_has_composed_into_and_more_specific(self):
        meanings = {meaning for _, meaning in TABLE_2}
        assert "composed-into" in meanings
        assert "more-specific-than" in meanings


class TestTable3:
    def test_aggregation_kinds_cover_table_3(self):
        symbols = {kind.value for kind in AggregationKind}
        assert symbols == {"≡", "⊆", "⊇", "∩", "∅", "ℵ"}

    def test_table_3_has_reverse(self):
        assert ("ℵ", "reverse") in TABLE_3


class TestValueOps:
    def test_single_and_multi_valued_ops(self):
        symbols = {op.value for op in ValueOp}
        assert symbols == {"=", "≠", "∈", "⊇", "∩", "∅"}


class TestFlipped:
    def test_inclusions_swap(self):
        assert flipped(ClassKind.SUBSET) is ClassKind.SUPERSET
        assert flipped(AttributeKind.SUPERSET) is AttributeKind.SUBSET
        assert flipped(AggregationKind.SUBSET) is AggregationKind.SUPERSET

    def test_symmetric_kinds_fixed(self):
        for kind in (
            ClassKind.EQUIVALENCE,
            ClassKind.INTERSECTION,
            ClassKind.EXCLUSION,
            AggregationKind.REVERSE,
            AttributeKind.COMPOSED_INTO,
        ):
            assert flipped(kind) is kind

    def test_directional_kinds_refuse(self):
        with pytest.raises(ValueError):
            flipped(ClassKind.DERIVATION)
        with pytest.raises(ValueError):
            flipped(AttributeKind.MORE_SPECIFIC)


class TestRender:
    def test_render_table_aligns(self):
        text = render_table(TABLE_1, "Table 1. Assertions for classes.")
        assert text.splitlines()[0] == "Table 1. Assertions for classes."
        assert any("derivation" in line for line in text.splitlines())
