"""Assertion graphs (Fig 11) and derivation decomposition (Figs 9-10)."""

import pytest

from repro.errors import DecompositionError
from repro.assertions import (
    AssertionGraph,
    AttributeCorrespondence,
    AttributeKind,
    Path,
    decompose,
    is_decomposed,
    parse,
)


def uncle_assertion():
    [a] = parse(
        """
        assertion S1(parent, brother) -> S2.uncle
          value S1.parent.Pssn# in S1.brother.brothers
          attr S1.brother.Bssn# == S2.uncle.Ussn#
          attr S1.parent.children >= S2.uncle.niece_nephew
        end
        """
    )
    return a


def car_assertion(n=3):
    lines = ["assertion S2.car2 -> S1.car1", "  attr S2.car2.time == S1.car1.time"]
    for i in range(1, n + 1):
        lines.append(
            f"  attr S2.car2.car-name{i} <= S1.car1.price "
            f"with S1.car1.car-name = 'car-name{i}'"
        )
    lines.append("end")
    [a] = parse("\n".join(lines))
    return a


class TestGraphFig11a:
    def test_three_components_as_in_fig_11a(self):
        graph = AssertionGraph(uncle_assertion())
        components = graph.components()
        assert len(components) == 3
        as_sets = [set(map(str, component)) for component in components]
        assert {"S1.parent.Pssn#", "S1.brother.brothers"} in as_sets
        assert {"S1.brother.Bssn#", "S2.uncle.Ussn#"} in as_sets
        assert {"S1.parent.children", "S2.uncle.niece_nephew"} in as_sets

    def test_no_hyperedges_without_conditions(self):
        assert AssertionGraph(uncle_assertion()).hyperedges == ()

    def test_edges_enumerated_once(self):
        graph = AssertionGraph(uncle_assertion())
        assert len(graph.edges()) == 3


class TestGraphFig11b:
    def test_car_graph_matches_fig_11b(self):
        parts = decompose(car_assertion(1))
        graph = AssertionGraph(parts[0])
        components = [set(map(str, c)) for c in graph.components()]
        # time≡time edge, price/car-name1 edge, isolated car-name node.
        assert {"S1.car1.time", "S2.car2.time"} in components
        assert {"S1.car1.price", "S2.car2.car-name1"} in components
        assert {"S1.car1.car-name"} in components

    def test_hyperedge_for_with_condition(self):
        parts = decompose(car_assertion(1))
        graph = AssertionGraph(parts[0])
        assert len(graph.hyperedges) == 1
        hyperedge = graph.hyperedges[0]
        assert str(hyperedge.nodes[0]) == "S1.car1.car-name"
        assert hyperedge.constant == "car-name1"

    def test_describe_mentions_components_and_hyperedges(self):
        graph = AssertionGraph(decompose(car_assertion(1))[0])
        text = graph.describe()
        assert "component" in text and "he(" in text


class TestDecompose:
    def test_already_decomposed_passthrough(self):
        assertion = uncle_assertion()
        assert is_decomposed(assertion)
        assert decompose(assertion) == [assertion]

    def test_car_assertion_splits_per_colliding_name(self):
        parts = decompose(car_assertion(3))
        assert len(parts) == 3
        for part in parts:
            assert is_decomposed(part)
            # shared time≡time correspondence replicated
            assert any("time" in str(c) for c in part.attribute_corrs)
            # exactly one price correspondence per part
            price_corrs = [c for c in part.attribute_corrs if "price" in str(c)]
            assert len(price_corrs) == 1

    def test_with_conditions_travel_with_their_correspondence(self):
        parts = decompose(car_assertion(2))
        constants = sorted(
            c.condition.constant
            for part in parts
            for c in part.attribute_corrs
            if c.condition is not None
        )
        assert constants == ["car-name1", "car-name2"]

    def test_overlapping_collisions_rejected(self):
        # x collides AND y collides with intertwined correspondences.
        from repro.assertions import derivation

        corrs = (
            AttributeCorrespondence(
                Path.parse("S1.a.x"), Path.parse("S2.b.p"), AttributeKind.SUBSET
            ),
            AttributeCorrespondence(
                Path.parse("S1.a.x"), Path.parse("S2.b.q"), AttributeKind.SUBSET
            ),
            AttributeCorrespondence(
                Path.parse("S1.a.y"), Path.parse("S2.b.p"), AttributeKind.SUBSET
            ),
        )
        assertion = derivation(["S1.a"], "S2.b", attribute_corrs=corrs)
        with pytest.raises(DecompositionError):
            decompose(assertion)

    def test_non_derivation_untouched(self):
        from repro.assertions import equivalence

        assertion = equivalence("S1.a", "S2.b")
        assert decompose(assertion) == [assertion]

    def test_decompose_all_preserves_order(self):
        from repro.assertions import decompose_all

        parts = decompose_all([uncle_assertion(), car_assertion(2)])
        assert len(parts) == 3
