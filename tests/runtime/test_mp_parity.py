"""Multiprocess-mode parity: worker processes must never change answers.

``mode="multiprocess"`` re-routes shard extent scans through a
spawn-based :class:`ProcessPoolExecutor` whose workers rebuild every
hosted store from a picklable spec and answer in columnar arrays; these
tests pin that against the threaded and async twins the answers are
byte-identical — sharded and unsharded, cold and warm — that component
writes rebuild stale worker snapshots, and that disk-backed source
adapters rehydrate inside workers from their manifest description.

Pools here are deliberately small (two workers): the point is parity,
not throughput — E-R9 in ``benchmarks/`` owns the scaling claim.
"""

import pytest

from repro.errors import RuntimeFederationError, TransportError
from repro.runtime import (
    InProcessTransport,
    ProcessPoolTransport,
    RuntimePolicy,
    ScanRequest,
    ShardPlan,
    SimulatedNetworkTransport,
    wrap_multiprocess,
)

QUERY = "person0() -> ssn#"


def _policy():
    return RuntimePolicy(max_workers=2)


def _answers(rows):
    return sorted(row["ssn#"] for row in rows)


class TestMultiprocessAnswerParity:
    @pytest.mark.parametrize("plan", [None, ShardPlan(2), ShardPlan(3, "range")])
    def test_matches_threaded_and_async_cold_and_warm(self, cluster_builder, plan):
        expectations = {}
        for mode in ("threaded", "async", "multiprocess"):
            fsm = cluster_builder(schemas=3, per_class=4)
            runtime = fsm.use_runtime(_policy(), mode=mode, shard_plan=plan)
            try:
                cold = _answers(fsm.query(QUERY))
                assert cold  # a vacuous parity proves nothing
                assert fsm.last_query_stats.counter("agent_scans") > 0
                warm = _answers(fsm.query(QUERY))
                assert fsm.last_query_stats.counter("agent_scans") == 0
                expectations[mode] = (cold, warm)
            finally:
                runtime.close()
        assert expectations["multiprocess"] == expectations["threaded"]
        assert expectations["multiprocess"] == expectations["async"]

    def test_component_write_rebuilds_the_stale_worker_snapshot(
        self, cluster_builder
    ):
        fsm = cluster_builder(schemas=3, per_class=4)
        runtime = fsm.use_runtime(_policy(), mode="multiprocess")
        pool = runtime.executor._pool_transport
        try:
            before = _answers(fsm.query(QUERY))
            assert pool.rebuilds == 1
            fsm.database("S1").insert(
                "person0", {"ssn#": "S1-mp-new", "name": "new", "grade": 1}
            )
            after = _answers(fsm.query(QUERY))
            assert "S1-mp-new" in after
            assert len(after) == len(before) + 1
            # the write either rode the parent-side delta feed (no pool
            # dispatch needed) or forced exactly one snapshot rebuild —
            # never a stale answer
            assert pool.rebuilds in (1, 2)
        finally:
            runtime.close()

    def test_closed_runtime_refuses_dispatch(self, cluster_builder):
        fsm = cluster_builder(schemas=2, per_class=2)
        runtime = fsm.use_runtime(_policy(), mode="multiprocess")
        pool = runtime.executor._pool_transport
        assert _answers(fsm.query(QUERY))
        runtime.close()
        with pytest.raises(TransportError, match="closed"):
            pool.perform(ScanRequest("agent1", "S1", "person0"))


class TestWorkerRehydration:
    def test_sqlite_sources_rehydrate_inside_workers(self, tmp_path):
        from repro.sources import load_source_federation
        from repro.workloads import (
            generate_source_federation,
            source_fsm,
            write_source_directory,
        )

        dataset = generate_source_federation(
            people_per_schema=5, records_per_person=1, seed=7
        )
        write_source_directory(dataset, tmp_path, kinds="sqlite")

        text, databases = load_source_federation(tmp_path)
        baseline = source_fsm(databases, text)
        baseline.integrate_all()
        baseline.use_runtime(_policy())
        expected = sorted(
            row["ssn"] for row in baseline.query("person() -> ssn")
        )
        assert expected
        baseline.runtime.close()

        text, databases = load_source_federation(tmp_path)
        fsm = source_fsm(databases, text)
        fsm.integrate_all()
        runtime = fsm.use_runtime(_policy(), mode="multiprocess")
        try:
            answers = sorted(row["ssn"] for row in fsm.query("person() -> ssn"))
            assert answers == expected
            assert fsm.last_query_stats.counter("agent_scans") > 0
        finally:
            runtime.close()


class TestTransportSplicing:
    def test_wrapper_chains_keep_observing_dispatches(self, cluster_builder):
        # wrap_multiprocess must replace the *innermost* hop: a simulated
        # network wrapped around the registry still prices/counts every
        # pool dispatch
        fsm = cluster_builder(schemas=2, per_class=2)
        registry = InProcessTransport(fsm._agents, fsm._schema_host)
        simulated = SimulatedNetworkTransport(registry)
        spliced = wrap_multiprocess(simulated, workers=2)
        assert spliced is simulated
        assert isinstance(simulated._inner, ProcessPoolTransport)
        try:
            extent = simulated.perform(ScanRequest("agent1", "S1", "person0"))
            assert len(extent) > 0
            assert simulated.calls["agent1"] == 1
        finally:
            simulated._inner.close()

    def test_wrap_is_idempotent(self, cluster_builder):
        fsm = cluster_builder(schemas=2, per_class=2)
        registry = InProcessTransport(fsm._agents, fsm._schema_host)
        wrapped = wrap_multiprocess(registry, workers=2)
        assert wrap_multiprocess(wrapped, workers=2) is wrapped
        wrapped.close()

    def test_chain_without_registry_is_rejected(self):
        class Opaque:
            _inner = None

        with pytest.raises(RuntimeFederationError, match="in-process"):
            wrap_multiprocess(Opaque())
