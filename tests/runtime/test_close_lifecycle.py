"""Runtime close semantics: idempotent, error-safe, loop-ownership aware."""

import threading

import pytest

from repro.core.session import FederationSession
from repro.errors import PartialResultError
from repro.runtime import (
    AsyncFederationExecutor,
    AsyncInProcessTransport,
    EventLoopThread,
    FaultProfile,
    FederationRuntime,
    RuntimePolicy,
    SimulatedNetworkTransport,
)
from repro.workloads import genealogy

QUERY = "uncle(niece_nephew='John') -> Ussn#"


def _session() -> FederationSession:
    _, _, text, databases = genealogy()
    session = FederationSession()
    for schema_name, database in databases.items():
        session.add_database(database, agent_name=f"agent-{schema_name}")
    session.declare(text)
    session.integrate()
    return session


def _loop_threads():
    return [
        thread
        for thread in threading.enumerate()
        if thread.name == "fsm-async-loop" and thread.is_alive()
    ]


class TestIdempotentClose:
    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_double_close_is_a_no_op(self, mode):
        session = _session()
        runtime = session.enable_runtime(mode=mode)
        assert session.query(QUERY)
        assert not runtime.closed
        runtime.close()
        assert runtime.closed
        runtime.close()  # must not raise, must stay closed
        assert runtime.closed

    def test_async_close_stops_the_owned_loop_thread(self):
        before = len(_loop_threads())
        session = _session()
        session.enable_runtime(mode="async")
        session.query(QUERY)
        assert len(_loop_threads()) == before + 1
        session.close()
        assert len(_loop_threads()) == before

    def test_session_close_without_runtime_is_safe(self):
        _session().close()  # no runtime attached: nothing to do


class TestCloseAfterError:
    def test_close_after_failed_query(self):
        """A query that dies mid-fan-out must not wedge close()."""
        session = _session()
        fsm = session.fsm
        transport = SimulatedNetworkTransport(
            InnerTransportFactory.build(fsm),
            FaultProfile(drop_rate=1.0),  # every call is dropped
        )
        policy = RuntimePolicy(max_retries=0, failure_policy="error")
        runtime = fsm.use_runtime(
            runtime=FederationRuntime(transport=transport, policy=policy)
        )
        with pytest.raises(PartialResultError):
            session.query(QUERY)
        runtime.close()
        assert runtime.closed
        runtime.close()

    def test_async_close_after_failed_query_stops_the_loop(self):
        from repro.runtime import AsyncSimulatedNetworkTransport

        before = len(_loop_threads())
        session = _session()
        fsm = session.fsm
        transport = AsyncSimulatedNetworkTransport(
            AsyncInProcessTransport(fsm._agents, fsm._schema_host),
            FaultProfile(drop_rate=1.0),
        )
        policy = RuntimePolicy(max_retries=0, failure_policy="error")
        runtime = fsm.use_runtime(
            runtime=FederationRuntime(
                transport=transport, policy=policy, mode="async"
            )
        )
        with pytest.raises(PartialResultError):
            session.query(QUERY)
        runtime.close()
        assert len(_loop_threads()) == before


class InnerTransportFactory:
    """Tiny helper keeping the threaded fault test readable."""

    @staticmethod
    def build(fsm):
        from repro.runtime import InProcessTransport

        return InProcessTransport(fsm._agents, fsm._schema_host)


class TestLoopOwnership:
    def test_borrowed_runner_survives_executor_close(self):
        shared = EventLoopThread()
        session = _session()
        fsm = session.fsm
        executor = AsyncFederationExecutor(
            AsyncInProcessTransport(fsm._agents, fsm._schema_host),
            RuntimePolicy(),
            runner=shared,
        )
        assert not executor._owns_runner
        shared.submit(_noop())  # spin the loop up
        assert shared.alive
        executor.close()
        assert shared.alive  # borrowed: the owner closes it, not us
        shared.close()
        assert not shared.alive

    def test_owned_runner_is_closed_with_the_executor(self):
        session = _session()
        fsm = session.fsm
        executor = AsyncFederationExecutor(
            AsyncInProcessTransport(fsm._agents, fsm._schema_host),
            RuntimePolicy(),
        )
        assert executor._owns_runner
        executor._runner.submit(_noop())
        assert executor._runner.alive
        executor.close()
        assert not executor._runner.alive

    def test_many_runtimes_one_loop(self):
        """The service topology: N async runtimes sharing one loop."""
        shared = EventLoopThread()
        sessions = [_session() for _ in range(3)]
        runtimes = [
            session.enable_runtime(mode="async", loop=shared)
            for session in sessions
        ]
        for session in sessions:
            assert session.query(QUERY)
        assert all(
            runtime.executor._runner is shared for runtime in runtimes
        )
        assert len(_loop_threads()) >= 1
        for session in sessions:
            session.close()  # closes runtimes, must leave the loop alone
        assert shared.alive
        shared.close()
        assert not shared.alive


async def _noop() -> None:
    return None
