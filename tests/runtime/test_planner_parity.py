"""Property-based planner parity: planning must never change answers.

The planner prunes classes, batches granules per endpoint and pushes
hints down — three transformations that could each silently change an
answer set.  These properties pin the invariant the ISSUE demands: for
randomized cluster workloads, the planned answer set (threaded and
async modes, sharded and unsharded) is exactly the unplanned baseline,
cold, warm, and across ``bump_generation`` invalidation — while the
planned run never pays more round-trips than the unplanned one.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.federation import FSM, FSMAgent
from repro.runtime import RuntimePolicy, ShardPlan
from repro.workloads import federated_cluster

QUERY = "person0() -> ssn#"

_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

shard_plans = st.sampled_from([None, 1, 3])


def _build_fsm(schemas, per_class, seed):
    built, text, databases = federated_cluster(
        schemas=schemas, per_class=per_class, seed=seed
    )
    fsm = FSM()
    for index, schema in enumerate(built):
        agent = FSMAgent(f"agent{index + 1}")
        agent.host_object_database(databases[schema.name])
        fsm.register_agent(agent)
    fsm.declare(text)
    fsm.integrate_all()
    return fsm


def _answers(rows):
    return sorted(row["ssn#"] for row in rows)


def _assert_parity(schemas, per_class, seed, shards, mode):
    baseline = _build_fsm(schemas, per_class, seed)
    baseline.use_runtime(
        RuntimePolicy(), mode=mode, shard_plan=shards, plan=False
    )
    expected = _answers(baseline.query(QUERY))
    unplanned_trips = baseline.last_query_stats.counter("round_trips")
    assert expected  # a vacuous parity proves nothing

    planned = _build_fsm(schemas, per_class, seed)
    runtime = planned.use_runtime(
        RuntimePolicy(), mode=mode, shard_plan=shards, plan=True
    )
    try:
        assert _answers(planned.query(QUERY)) == expected  # cold
        planned_trips = planned.last_query_stats.counter("round_trips")
        # coalescing/pruning can only reduce dispatches, never add
        assert 0 < planned_trips <= unplanned_trips
        warm_rows = planned.query(QUERY)  # warm: per-granule cache hits
        assert _answers(warm_rows) == expected
        assert planned.last_query_stats.counter("agent_scans") == 0
        assert planned.last_query_stats.counter("round_trips") == 0
        runtime.bump_generation()  # batched-origin entries must miss too
        assert _answers(planned.query(QUERY)) == expected
        assert planned.last_query_stats.counter("agent_scans") > 0
    finally:
        runtime.close()
        baseline.runtime.close()


class TestPlannedAnswersEqualUnplanned:
    @settings(**_SETTINGS)
    @given(
        schemas=st.integers(2, 4),
        per_class=st.integers(1, 10),
        seed=st.integers(0, 999),
        shards=shard_plans,
    )
    def test_threaded_parity(self, schemas, per_class, seed, shards):
        _assert_parity(schemas, per_class, seed, shards, "threaded")

    @settings(**_SETTINGS)
    @given(
        schemas=st.integers(2, 4),
        per_class=st.integers(1, 10),
        seed=st.integers(0, 999),
        shards=shard_plans,
    )
    def test_async_parity(self, schemas, per_class, seed, shards):
        _assert_parity(schemas, per_class, seed, shards, "async")


class TestPlannedAppendixBParity:
    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_top_down_prefetch_agrees(self, cluster_builder, mode):
        from repro.federation.query import FederatedQuery

        baseline = cluster_builder()
        baseline.use_runtime(RuntimePolicy(), plan=False)
        query = FederatedQuery.parse(QUERY)
        expected = _answers(query.run(baseline.appendix_b()))

        planned = cluster_builder()
        runtime = planned.use_runtime(RuntimePolicy(), mode=mode, plan=True)
        try:
            rows = query.run(planned.appendix_b(prefetch=query))
            assert _answers(rows) == expected
            # the prefetch warmed the extents one coalesced fan-out wrote
            assert planned.runtime_stats().counter("cache_hits") > 0
        finally:
            runtime.close()
            baseline.runtime.close()
