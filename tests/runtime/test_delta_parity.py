"""Property: patch-based answers ≡ the generation-bump baseline.

Two runtimes share one set of component stores — one with
``deltas=True`` (stale granules patched in place from the feed), one
with ``deltas=False`` (the version-mismatch full-rescan baseline).
For *any* interleaving of component writes (insert / update / delete,
against schemas with plain, linearly-mapped and triple-mapped level
storage) and global queries, both must answer identically after every
prefix — across threaded/async × sharded/unsharded × memory/sqlite.
"""

import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.federation.query import FederatedQuery
from repro.runtime import RuntimePolicy
from repro.sources import load_source_federation
from repro.workloads import (
    build_memory_databases,
    generate_source_federation,
    source_fsm,
    write_source_directory,
)

SCHEMAS = ("university", "market")

#: fresh raw rows per schema (the level column differs: university
#: stores the global value, market stores basis points through a
#: LinearMapping — patched instances must come out identically mapped)
ROW_OF = {
    "university": lambda i: {
        "ssn": f"uni-new-{i}", "name": f"un{i}",
        "level": (i % 5) + 1, "dept": "d0",
    },
    "market": lambda i: {
        "ssn": f"mkt-new-{i}", "name": f"mn{i}",
        "level_bp": ((i % 5) + 1) * 100, "sector": "s0",
    },
}

QUERIES = (
    FederatedQuery.of("person", {}, ("ssn",)),
    FederatedQuery.of("person", {}, ("ssn", "level")),
)

OPERATIONS = st.lists(
    st.tuples(
        st.sampled_from(("insert", "update", "delete", "query")),
        st.integers(min_value=0, max_value=99),
        st.sampled_from(SCHEMAS),
    ),
    min_size=2,
    max_size=8,
)


class MemoryWrites:
    """Slot-aware writes against one schema's memory adapter."""

    def __init__(self, adapter, schema, initial_rows):
        self.adapter = adapter
        self.schema = schema
        self.slots = initial_rows  # tombstones keep their slot number
        self.live = set(range(1, initial_rows + 1))
        self.inserted = 0

    def insert(self, index):
        # the pk is per-writer unique; *index* only varies the level
        self.inserted += 1
        row = dict(ROW_OF[self.schema](index), ssn=f"{self.schema}-w{self.inserted}")
        self.adapter.insert("person", row)
        self.slots += 1
        self.live.add(self.slots)

    def update(self, index):
        if not self.live:
            return
        number = sorted(self.live)[index % len(self.live)]
        self.adapter.update_row("person", number, {"name": f"upd-{index}"})

    def delete(self, index):
        if not self.live:
            return
        number = sorted(self.live)[index % len(self.live)]
        self.adapter.delete_row("person", number)
        self.live.discard(number)


class SqliteWrites:
    """Position-aware writes against one schema's sqlite adapter."""

    def __init__(self, adapter, schema, initial_rows):
        self.adapter = adapter
        self.schema = schema
        self.count = initial_rows
        self.inserted = 0

    def insert(self, index):
        self.inserted += 1
        row = dict(ROW_OF[self.schema](index), ssn=f"{self.schema}-w{self.inserted}")
        self.adapter.insert_row("person", row)
        self.count += 1

    def update(self, index):
        if not self.count:
            return
        self.adapter.update_row(
            "person", index % self.count + 1, {"name": f"upd-{index}"}
        )

    def delete(self, index):
        if not self.count:
            return
        # physical deletes renumber positional OIDs: un-patchable by
        # design, exercising the rescan-marker fallback under parity
        self.adapter.delete_row("person", index % self.count + 1)
        self.count -= 1


def _rows_key(rows):
    return sorted((sorted(row.items()) for row in rows), key=repr)


def _run_interleaving(operations, backend, mode, shards, directory):
    dataset = generate_source_federation(
        people_per_schema=4, records_per_person=1, seed=11, schemas=SCHEMAS
    )
    if backend == "memory":
        databases = build_memory_databases(dataset)
        text = dataset.assertions
        writes_cls = MemoryWrites
    else:
        write_source_directory(dataset, directory, kinds="sqlite")
        text, databases = load_source_federation(directory)
        writes_cls = SqliteWrites
    writers = {
        schema: writes_cls(
            databases[schema].adapter, schema, dataset.people_per_schema
        )
        for schema in SCHEMAS
    }
    fsm_on = source_fsm(databases, text)
    fsm_on.integrate_all()
    fsm_off = source_fsm(databases, text)
    fsm_off.integrate_all()
    runtime_on = fsm_on.use_runtime(
        RuntimePolicy(), mode=mode, shard_plan=shards, deltas=True
    )
    runtime_off = fsm_off.use_runtime(
        RuntimePolicy(), mode=mode, shard_plan=shards, deltas=False
    )
    try:
        for step, (op, index, schema) in enumerate(operations):
            if op == "query":
                query = QUERIES[index % len(QUERIES)]
                assert _rows_key(fsm_on.query(query)) == _rows_key(
                    fsm_off.query(query)
                ), f"answers diverged at step {step} on {query}"
            else:
                getattr(writers[schema], op)(index)
        # both views converge on the final state, whatever the prefix did
        for query in QUERIES:
            assert _rows_key(fsm_on.query(query)) == _rows_key(
                fsm_off.query(query)
            )
        # the baseline never patches; the patched side never bumps
        assert runtime_off.stats().counter("granules_patched") == 0
    finally:
        runtime_on.close()
        runtime_off.close()


@pytest.mark.parametrize("backend", ("memory", "sqlite"))
@pytest.mark.parametrize("mode", ("threaded", "async"))
@pytest.mark.parametrize("shards", (None, 2), ids=("unsharded", "sharded"))
class TestDeltaParity:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(operations=OPERATIONS)
    def test_patched_answers_match_the_rescan_baseline(
        self, operations, backend, mode, shards
    ):
        with tempfile.TemporaryDirectory() as directory:
            _run_interleaving(operations, backend, mode, shards, directory)
