"""The concurrent executor: retries, timeouts, circuit breakers, fan-out."""

import pytest

from repro.errors import AgentTimeoutError, CircuitOpenError, TransportError
from repro.federation import FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.runtime import (
    CircuitBreaker,
    FaultProfile,
    FederationExecutor,
    InProcessTransport,
    OPEN,
    RuntimeMetrics,
    RuntimePolicy,
    ScanRequest,
    SimulatedNetworkTransport,
)


def _one_agent():
    schema = Schema("S1")
    schema.add_class(ClassDef("person").attr("ssn#"))
    database = ObjectDatabase(schema, agent="h1")
    database.insert("person", {"ssn#": "1"})
    agent = FSMAgent("a1")
    agent.host_object_database(database)
    return {"a1": agent}


def _executor(profile=None, policy=None, breaker=None, metrics=None):
    transport = InProcessTransport(_one_agent())
    if profile is not None:
        simulated = SimulatedNetworkTransport(transport)
        simulated.set_profile("a1", profile)
        transport = simulated
    metrics = metrics or RuntimeMetrics()
    return (
        FederationExecutor(
            transport,
            policy or RuntimePolicy(backoff_base=0.0, backoff_max=0.0),
            metrics,
            breaker,
            sleep=lambda _t: None,
        ),
        metrics,
    )


REQUEST = ScanRequest("a1", "S1", "person")


class TestRetries:
    def test_flaky_agent_succeeds_within_budget(self):
        executor, metrics = _executor(
            FaultProfile(fail_times=2),
            RuntimePolicy(max_retries=2, backoff_base=0.0),
        )
        extent = executor.run_one(REQUEST)
        assert len(extent) == 1
        stats = metrics.snapshot()
        assert stats.counter("retries") == 2
        assert stats.counter("transport_failures") == 2
        assert stats.counter("agent_scans") == 3

    def test_exhausted_retries_raise_last_error(self):
        executor, metrics = _executor(
            FaultProfile(fail_times=10),
            RuntimePolicy(max_retries=1, backoff_base=0.0),
        )
        with pytest.raises(TransportError, match="injected failure"):
            executor.run_one(REQUEST)
        assert metrics.snapshot().counter("retries") == 1

    def test_backoff_schedule_is_exponential(self):
        naps = []
        transport = SimulatedNetworkTransport(InProcessTransport(_one_agent()))
        transport.set_profile("a1", FaultProfile(fail_times=3))
        executor = FederationExecutor(
            transport,
            RuntimePolicy(
                max_retries=3,
                backoff_base=0.01,
                backoff_multiplier=2.0,
                backoff_max=1.0,
            ),
            RuntimeMetrics(),
            sleep=naps.append,
        )
        executor.run_one(REQUEST)
        assert naps == [0.01, 0.02, 0.04]

    def test_backoff_is_capped(self):
        policy = RuntimePolicy(
            backoff_base=0.01, backoff_multiplier=10.0, backoff_max=0.05
        )
        assert policy.backoff(1) == 0.01
        assert policy.backoff(2) == 0.05
        assert policy.backoff(9) == 0.05


class TestTimeouts:
    def test_slow_agent_times_out(self):
        executor, metrics = _executor(
            FaultProfile(latency=0.5),
            RuntimePolicy(timeout=0.02, max_retries=0),
        )
        with pytest.raises(AgentTimeoutError):
            executor.run_one(REQUEST)
        assert metrics.snapshot().counter("timeouts") == 1

    def test_fast_agent_beats_timeout(self):
        executor, _ = _executor(policy=RuntimePolicy(timeout=5.0, max_retries=0))
        assert len(executor.run_one(REQUEST)) == 1


class TestCircuitBreaker:
    def test_trips_after_threshold_and_fast_fails(self):
        breaker = CircuitBreaker(threshold=3, reset_timeout=60.0)
        executor, metrics = _executor(
            FaultProfile(fail_times=100),
            RuntimePolicy(max_retries=0, backoff_base=0.0, breaker_threshold=3),
            breaker=breaker,
        )
        for _ in range(3):
            with pytest.raises(TransportError):
                executor.run_one(REQUEST)
        assert breaker.state("a1") == OPEN
        with pytest.raises(CircuitOpenError):
            executor.run_one(REQUEST)
        stats = metrics.snapshot()
        assert stats.counter("breaker_trips") == 1
        assert stats.counter("circuit_rejections") == 1
        # the fast-fail never reached the agent
        assert stats.counter("agent_scans") == 3

    def test_half_open_probe_recovers(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=2, reset_timeout=10.0, clock=lambda: clock[0]
        )
        transport = SimulatedNetworkTransport(InProcessTransport(_one_agent()))
        transport.set_profile("a1", FaultProfile(fail_times=2))
        executor = FederationExecutor(
            transport,
            RuntimePolicy(max_retries=0, backoff_base=0.0),
            RuntimeMetrics(),
            breaker,
            sleep=lambda _t: None,
        )
        for _ in range(2):
            with pytest.raises(TransportError):
                executor.run_one(REQUEST)
        with pytest.raises(CircuitOpenError):
            executor.run_one(REQUEST)
        clock[0] = 11.0  # past the reset window: one probe is admitted
        assert len(executor.run_one(REQUEST)) == 1
        assert breaker.state("a1") == "closed"

    def test_failed_probe_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=1, reset_timeout=10.0, clock=lambda: clock[0]
        )
        transport = SimulatedNetworkTransport(InProcessTransport(_one_agent()))
        transport.set_profile("a1", FaultProfile(fail_times=100))
        executor = FederationExecutor(
            transport,
            RuntimePolicy(max_retries=0, backoff_base=0.0),
            RuntimeMetrics(),
            breaker,
            sleep=lambda _t: None,
        )
        with pytest.raises(TransportError):
            executor.run_one(REQUEST)
        clock[0] = 11.0
        with pytest.raises(TransportError):  # the probe itself fails...
            executor.run_one(REQUEST)
        with pytest.raises(CircuitOpenError):  # ...and the circuit re-opens
            executor.run_one(REQUEST)


class TestFanOut:
    def test_collects_successes_and_failures(self):
        executor, _ = _executor(
            FaultProfile(fail_times=100),
            RuntimePolicy(max_retries=0, backoff_base=0.0, max_workers=4),
        )
        good = ScanRequest("a1", "S1", "person", "value_set", "ssn#")
        # scripted failures are per request: poison only the extent scan
        executor.transport.reset_scripts()
        executor.transport.set_profile("a1", FaultProfile())
        outcome = executor.run([REQUEST, good])
        assert not outcome.partial
        assert set(outcome.results) == {REQUEST, good}

    def test_partial_outcome_reports_failures(self):
        executor, metrics = _executor(
            FaultProfile(drop_rate=1.0),
            RuntimePolicy(max_retries=0, backoff_base=0.0, max_workers=4),
        )
        outcome = executor.run([REQUEST])
        assert outcome.partial
        assert outcome.results == {}
        [failure] = outcome.failures
        assert failure.kind == "transport"
        assert "dropped" in failure.error
        assert metrics.snapshot().counter("scan_failures") == 1

    def test_empty_fan_out(self):
        executor, _ = _executor()
        outcome = executor.run([])
        assert outcome.results == {} and not outcome.partial
