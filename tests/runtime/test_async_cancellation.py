"""Deadline cancellation: overdue coroutines die and count as timeouts.

The threaded executor can only *abandon* an overdue scan (its worker
thread keeps running and the result is discarded).  The asyncio
executor must do better: hitting the per-call deadline **cancels** the
in-flight coroutine, the transport observes the cancellation, and the
attempt lands in the ``timeouts`` counter — never in the results.
"""

import asyncio

import pytest

from repro.errors import CircuitOpenError
from repro.federation import FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.runtime import (
    AsyncFederationExecutor,
    AsyncInProcessTransport,
    AsyncSimulatedNetworkTransport,
    CircuitBreaker,
    FaultProfile,
    RuntimeMetrics,
    RuntimePolicy,
    ScanRequest,
)


def _fleet(count):
    agents = {}
    requests = []
    for index in range(count):
        schema = Schema(f"S{index + 1}")
        schema.add_class(ClassDef("person").attr("ssn#"))
        database = ObjectDatabase(schema, agent=f"h{index + 1}")
        database.insert("person", {"ssn#": str(index)})
        agent = FSMAgent(f"a{index + 1}")
        agent.host_object_database(database)
        agents[agent.name] = agent
        requests.append(ScanRequest(agent.name, schema.name, "person"))
    return agents, requests


def test_deadline_cancels_inflight_scans_and_records_timeouts():
    agents, requests = _fleet(4)
    transport = AsyncSimulatedNetworkTransport(
        AsyncInProcessTransport(agents), FaultProfile(latency=5.0)
    )
    metrics = RuntimeMetrics()
    executor = AsyncFederationExecutor(
        transport,
        RuntimePolicy(timeout=0.03, max_retries=0, backoff_base=0.0),
        metrics,
    )
    try:
        outcome = executor.run(requests)
    finally:
        executor.close()

    # every scan failed as a timeout; none leaked through as a success
    assert outcome.results == {}
    assert len(outcome.failures) == 4
    assert {failure.kind for failure in outcome.failures} == {"timeout"}
    stats = metrics.snapshot()
    assert stats.counter("timeouts") == 4
    assert stats.counter("scan_failures") == 4

    # the transport saw the cancellations: nothing ran to completion
    assert sum(transport.cancelled.values()) == 4
    assert sum(transport.completed.values()) == 0


def test_timed_out_attempt_retries_then_reports_timeout():
    agents, requests = _fleet(1)
    transport = AsyncSimulatedNetworkTransport(
        AsyncInProcessTransport(agents), FaultProfile(latency=5.0)
    )
    metrics = RuntimeMetrics()
    executor = AsyncFederationExecutor(
        transport,
        RuntimePolicy(timeout=0.02, max_retries=2, backoff_base=0.0),
        metrics,
    )
    try:
        outcome = executor.run(requests)
    finally:
        executor.close()
    assert [failure.kind for failure in outcome.failures] == ["timeout"]
    stats = metrics.snapshot()
    assert stats.counter("timeouts") == 3  # initial attempt + 2 retries
    assert sum(transport.cancelled.values()) == 3


def test_external_cancellation_releases_the_half_open_probe():
    """A cancelled probe must not wedge the breaker (the asyncio bug)."""
    agents, requests = _fleet(1)
    (request,) = requests
    transport = AsyncSimulatedNetworkTransport(AsyncInProcessTransport(agents))
    transport.set_profile("a1", FaultProfile(fail_times=1, latency=0.0))
    breaker = CircuitBreaker(threshold=1, reset_timeout=0.01)
    metrics = RuntimeMetrics()
    executor = AsyncFederationExecutor(
        transport,
        RuntimePolicy(max_retries=0, backoff_base=0.0),
        metrics,
        breaker,
    )

    async def scenario():
        # trip the circuit, wait out the reset window
        with pytest.raises(Exception):
            await executor.run_one_async(request)
        await asyncio.sleep(0.02)
        # the probe is admitted, then cancelled mid-flight
        transport.set_profile("a1", FaultProfile(latency=5.0))
        probe = asyncio.ensure_future(executor.run_one_async(request))
        await asyncio.sleep(0.02)
        probe.cancel()
        with pytest.raises(asyncio.CancelledError):
            await probe
        # the slot was released: the next caller may probe immediately,
        # rather than deadlocking behind an abandoned "probing" flag
        assert breaker.allow("a1")

    asyncio.run(scenario())
    executor.close()


def test_circuit_rejections_stay_fast_while_fleet_times_out():
    """Breaker + deadlines compose: rejected scans never await the agent."""
    agents, requests = _fleet(1)
    (request,) = requests
    transport = AsyncSimulatedNetworkTransport(
        AsyncInProcessTransport(agents), FaultProfile(latency=5.0)
    )
    breaker = CircuitBreaker(threshold=1, reset_timeout=60.0)
    metrics = RuntimeMetrics()
    executor = AsyncFederationExecutor(
        transport,
        RuntimePolicy(timeout=0.02, max_retries=0, backoff_base=0.0),
        metrics,
        breaker,
    )

    async def scenario():
        with pytest.raises(Exception):
            await executor.run_one_async(request)  # timeout trips breaker
        with pytest.raises(CircuitOpenError):
            await executor.run_one_async(request)  # fast-fail, no await

    asyncio.run(scenario())
    executor.close()
    stats = metrics.snapshot()
    assert stats.counter("timeouts") == 1
    assert stats.counter("circuit_rejections") == 1
    assert transport.calls["a1"] == 1  # the rejected scan never reached it
