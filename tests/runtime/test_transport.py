"""Agent transports: in-process calls and the simulated network."""

import pytest

from repro.errors import RegistrationError, TransportError
from repro.federation import FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.runtime import (
    FaultProfile,
    InProcessTransport,
    ScanRequest,
    SimulatedNetworkTransport,
)


@pytest.fixture
def agents():
    schema = Schema("S1")
    schema.add_class(ClassDef("person").attr("ssn#").attr("name"))
    database = ObjectDatabase(schema, agent="h1")
    database.insert("person", {"ssn#": "1", "name": "ann"})
    database.insert("person", {"ssn#": "2", "name": "bob"})
    agent = FSMAgent("a1")
    agent.host_object_database(database)
    return {"a1": agent}


class TestScanRequest:
    def test_unknown_op_rejected(self):
        with pytest.raises(TransportError, match="unknown scan op"):
            ScanRequest("a1", "S1", "person", op="explode")

    def test_value_set_needs_attribute(self):
        with pytest.raises(TransportError, match="attribute"):
            ScanRequest("a1", "S1", "person", op="value_set")

    def test_cache_key_is_agent_schema_class(self):
        request = ScanRequest("a1", "S1", "person", "value_set", "name")
        assert request.cache_key == ("a1", "S1", "person")


class TestInProcessTransport:
    def test_performs_all_ops(self, agents):
        transport = InProcessTransport(agents)
        extent = transport.perform(ScanRequest("a1", "S1", "person"))
        assert len(extent) == 2
        full = transport.perform(ScanRequest("a1", "S1", "person", "extent"))
        assert len(full) == 2
        values = transport.perform(
            ScanRequest("a1", "S1", "person", "value_set", "name")
        )
        assert values == {"ann", "bob"}

    def test_counts_agent_accesses(self, agents):
        transport = InProcessTransport(agents)
        transport.perform(ScanRequest("a1", "S1", "person"))
        assert agents["a1"].access_count == 1

    def test_agent_for_schema(self, agents):
        transport = InProcessTransport(agents)
        assert transport.agent_for_schema("S1") == "a1"
        with pytest.raises(RegistrationError):
            transport.agent_for_schema("S9")

    def test_generation_follows_database_version(self, agents):
        transport = InProcessTransport(agents)
        request = ScanRequest("a1", "S1", "person")
        before = transport.generation(request)
        agents["a1"].database("S1").insert("person", {"ssn#": "3", "name": "cid"})
        assert transport.generation(request) == before + 1


class TestSimulatedNetworkTransport:
    def test_flaky_script_fails_then_succeeds(self, agents):
        simulated = SimulatedNetworkTransport(InProcessTransport(agents))
        simulated.set_profile("a1", FaultProfile(fail_times=2))
        request = ScanRequest("a1", "S1", "person")
        for _ in range(2):
            with pytest.raises(TransportError, match="injected failure"):
                simulated.perform(request)
        assert len(simulated.perform(request)) == 2

    def test_scripts_are_per_request(self, agents):
        simulated = SimulatedNetworkTransport(InProcessTransport(agents))
        simulated.set_profile("a1", FaultProfile(fail_times=1))
        first = ScanRequest("a1", "S1", "person")
        second = ScanRequest("a1", "S1", "person", "value_set", "name")
        with pytest.raises(TransportError):
            simulated.perform(first)
        with pytest.raises(TransportError):
            simulated.perform(second)  # its own fresh failure budget
        assert len(simulated.perform(first)) == 2
        assert simulated.perform(second) == {"ann", "bob"}

    def test_reset_scripts_restores_failures(self, agents):
        simulated = SimulatedNetworkTransport(InProcessTransport(agents))
        simulated.set_profile("a1", FaultProfile(fail_times=1))
        request = ScanRequest("a1", "S1", "person")
        with pytest.raises(TransportError):
            simulated.perform(request)
        simulated.perform(request)
        simulated.reset_scripts()
        with pytest.raises(TransportError):
            simulated.perform(request)

    def test_drops_are_transport_errors(self, agents):
        simulated = SimulatedNetworkTransport(
            InProcessTransport(agents), FaultProfile(drop_rate=1.0)
        )
        with pytest.raises(TransportError, match="dropped"):
            simulated.perform(ScanRequest("a1", "S1", "person"))

    def test_latency_uses_injected_clock(self, agents):
        naps = []
        simulated = SimulatedNetworkTransport(
            InProcessTransport(agents),
            FaultProfile(latency=0.25),
            clock=naps.append,
        )
        simulated.perform(ScanRequest("a1", "S1", "person"))
        assert naps == [0.25]

    def test_call_histogram(self, agents):
        simulated = SimulatedNetworkTransport(InProcessTransport(agents))
        request = ScanRequest("a1", "S1", "person")
        simulated.perform(request)
        simulated.perform(request)
        assert simulated.calls["a1"] == 2


class TestSideTableBounds:
    """Regression: long-running traffic must not grow the simulator's
    per-request attempt table (or sharding's relation-digest memo)
    without bound."""

    def test_healthy_traffic_records_no_attempt_history(self, agents):
        simulated = SimulatedNetworkTransport(InProcessTransport(agents))
        for index in range(50):
            simulated.perform(
                ScanRequest("a1", "S1", "person", "value_set", "ssn#")
                if index % 2
                else ScanRequest("a1", "S1", "person")
            )
        assert len(simulated._attempts) == 0

    def test_scripted_attempt_history_is_bounded(self, agents):
        from repro.runtime.transport import MAX_SCRIPT_ENTRIES, _prune_scripts

        attempts = {("req", index): 1 for index in range(MAX_SCRIPT_ENTRIES + 100)}
        _prune_scripts(attempts, MAX_SCRIPT_ENTRIES)
        assert len(attempts) == MAX_SCRIPT_ENTRIES
        # the oldest entries went first; the newest survive
        assert ("req", MAX_SCRIPT_ENTRIES + 99) in attempts
        assert ("req", 0) not in attempts

    def test_relation_digest_memo_is_bounded(self):
        from repro.runtime.sharding import _relation_digest

        assert _relation_digest.cache_info().maxsize is not None
