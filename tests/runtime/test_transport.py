"""Agent transports: in-process calls and the simulated network."""

import pytest

from repro.errors import RegistrationError, TransportError
from repro.federation import FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.runtime import (
    FaultProfile,
    InProcessTransport,
    ScanRequest,
    SimulatedNetworkTransport,
)


@pytest.fixture
def agents():
    schema = Schema("S1")
    schema.add_class(ClassDef("person").attr("ssn#").attr("name"))
    database = ObjectDatabase(schema, agent="h1")
    database.insert("person", {"ssn#": "1", "name": "ann"})
    database.insert("person", {"ssn#": "2", "name": "bob"})
    agent = FSMAgent("a1")
    agent.host_object_database(database)
    return {"a1": agent}


class TestScanRequest:
    def test_unknown_op_rejected(self):
        with pytest.raises(TransportError, match="unknown scan op"):
            ScanRequest("a1", "S1", "person", op="explode")

    def test_value_set_needs_attribute(self):
        with pytest.raises(TransportError, match="attribute"):
            ScanRequest("a1", "S1", "person", op="value_set")

    def test_cache_key_is_agent_schema_class(self):
        request = ScanRequest("a1", "S1", "person", "value_set", "name")
        assert request.cache_key == ("a1", "S1", "person")


class TestInProcessTransport:
    def test_performs_all_ops(self, agents):
        transport = InProcessTransport(agents)
        extent = transport.perform(ScanRequest("a1", "S1", "person"))
        assert len(extent) == 2
        full = transport.perform(ScanRequest("a1", "S1", "person", "extent"))
        assert len(full) == 2
        values = transport.perform(
            ScanRequest("a1", "S1", "person", "value_set", "name")
        )
        assert values == {"ann", "bob"}

    def test_counts_agent_accesses(self, agents):
        transport = InProcessTransport(agents)
        transport.perform(ScanRequest("a1", "S1", "person"))
        assert agents["a1"].access_count == 1

    def test_agent_for_schema(self, agents):
        transport = InProcessTransport(agents)
        assert transport.agent_for_schema("S1") == "a1"
        with pytest.raises(RegistrationError):
            transport.agent_for_schema("S9")

    def test_generation_follows_database_version(self, agents):
        transport = InProcessTransport(agents)
        request = ScanRequest("a1", "S1", "person")
        before = transport.generation(request)
        agents["a1"].database("S1").insert("person", {"ssn#": "3", "name": "cid"})
        assert transport.generation(request) == before + 1


class TestSimulatedNetworkTransport:
    def test_flaky_script_fails_then_succeeds(self, agents):
        simulated = SimulatedNetworkTransport(InProcessTransport(agents))
        simulated.set_profile("a1", FaultProfile(fail_times=2))
        request = ScanRequest("a1", "S1", "person")
        for _ in range(2):
            with pytest.raises(TransportError, match="injected failure"):
                simulated.perform(request)
        assert len(simulated.perform(request)) == 2

    def test_scripts_are_per_request(self, agents):
        simulated = SimulatedNetworkTransport(InProcessTransport(agents))
        simulated.set_profile("a1", FaultProfile(fail_times=1))
        first = ScanRequest("a1", "S1", "person")
        second = ScanRequest("a1", "S1", "person", "value_set", "name")
        with pytest.raises(TransportError):
            simulated.perform(first)
        with pytest.raises(TransportError):
            simulated.perform(second)  # its own fresh failure budget
        assert len(simulated.perform(first)) == 2
        assert simulated.perform(second) == {"ann", "bob"}

    def test_reset_scripts_restores_failures(self, agents):
        simulated = SimulatedNetworkTransport(InProcessTransport(agents))
        simulated.set_profile("a1", FaultProfile(fail_times=1))
        request = ScanRequest("a1", "S1", "person")
        with pytest.raises(TransportError):
            simulated.perform(request)
        simulated.perform(request)
        simulated.reset_scripts()
        with pytest.raises(TransportError):
            simulated.perform(request)

    def test_drops_are_transport_errors(self, agents):
        simulated = SimulatedNetworkTransport(
            InProcessTransport(agents), FaultProfile(drop_rate=1.0)
        )
        with pytest.raises(TransportError, match="dropped"):
            simulated.perform(ScanRequest("a1", "S1", "person"))

    def test_latency_uses_injected_clock(self, agents):
        naps = []
        simulated = SimulatedNetworkTransport(
            InProcessTransport(agents),
            FaultProfile(latency=0.25),
            clock=naps.append,
        )
        simulated.perform(ScanRequest("a1", "S1", "person"))
        assert naps == [0.25]

    def test_call_histogram(self, agents):
        simulated = SimulatedNetworkTransport(InProcessTransport(agents))
        request = ScanRequest("a1", "S1", "person")
        simulated.perform(request)
        simulated.perform(request)
        assert simulated.calls["a1"] == 2


class TestSideTableBounds:
    """Regression: long-running traffic must not grow the simulator's
    per-request attempt table (or sharding's relation-digest memo)
    without bound."""

    def test_healthy_traffic_records_no_attempt_history(self, agents):
        simulated = SimulatedNetworkTransport(InProcessTransport(agents))
        for index in range(50):
            simulated.perform(
                ScanRequest("a1", "S1", "person", "value_set", "ssn#")
                if index % 2
                else ScanRequest("a1", "S1", "person")
            )
        assert len(simulated._attempts) == 0

    def test_scripted_attempt_history_is_bounded(self, agents):
        from repro.runtime.transport import MAX_SCRIPT_ENTRIES, _prune_scripts

        attempts = {("req", index): 1 for index in range(MAX_SCRIPT_ENTRIES + 100)}
        _prune_scripts(attempts, MAX_SCRIPT_ENTRIES)
        assert len(attempts) == MAX_SCRIPT_ENTRIES
        # the oldest entries went first; the newest survive
        assert ("req", MAX_SCRIPT_ENTRIES + 99) in attempts
        assert ("req", 0) not in attempts

    def test_relation_digest_memo_is_bounded(self):
        from repro.runtime.sharding import _relation_digest

        assert _relation_digest.cache_info().maxsize is not None


class TestPerItemTransferPricing:
    """Regression: per-item transfer pricing used ``len(result)`` with a
    blanket ``per_item * 1`` fallback, so any non-sized payload — a
    columnar reply advertising only ``item_count``, or an absent
    (``None``) granule value inside a batch — was priced as exactly one
    item no matter how many rows it carried.  Pricing now goes through
    :func:`transfer_item_count`: batches charge the total items their
    granules carry, ``None`` carries nothing, and non-sized payloads
    charge their ``item_count``."""

    @staticmethod
    def _simulated(agents, naps):
        return SimulatedNetworkTransport(
            InProcessTransport(agents),
            FaultProfile(per_item=1.0),
            clock=naps.append,
        )

    def test_batch_round_trip_charges_total_items_carried(self, agents):
        from repro.runtime import BatchScanRequest

        naps = []
        simulated = self._simulated(agents, naps)
        batch = BatchScanRequest(
            (
                ScanRequest("a1", "S1", "person"),  # 2 instances
                ScanRequest("a1", "S1", "person", "value_set", "name"),  # 2 values
            )
        )
        result = simulated.perform(batch)
        assert len(result) == 4
        assert naps == [4.0]

    def test_batch_pricing_equals_singleton_sum(self, agents):
        from repro.runtime import BatchScanRequest

        naps = []
        simulated = self._simulated(agents, naps)
        granules = (
            ScanRequest("a1", "S1", "person"),
            ScanRequest("a1", "S1", "person", "value_set", "ssn#"),
        )
        simulated.perform(BatchScanRequest(granules))
        batched = sum(naps)
        naps.clear()
        for granule in granules:
            simulated.perform(granule)
        assert batched == sum(naps)

    def test_non_sized_payload_charges_its_item_count(self, agents):
        from repro.runtime.columnar import ColumnarExtent
        from repro.runtime.transport import transfer_item_count

        class ColumnarAgent:
            def __init__(self, inner):
                self._inner = inner

            def perform(self, request):
                return ColumnarExtent.from_instances(self._inner.perform(request))

            def __getattr__(self, name):
                return getattr(self._inner, name)

        naps = []
        simulated = SimulatedNetworkTransport(
            ColumnarAgent(InProcessTransport(agents)),
            FaultProfile(per_item=1.0),
            clock=naps.append,
        )
        result = simulated.perform(ScanRequest("a1", "S1", "person"))
        assert transfer_item_count(result) == 2
        assert naps == [2.0]

    def test_item_count_payload_without_len_is_not_priced_as_one(self, agents):
        # the pre-fix failing case: no __len__, so the fallback charged
        # per_item * 1 for an arbitrarily large reply
        class Wire:
            def __init__(self, items):
                self.item_count = items

        class Encoding:
            def __init__(self, inner):
                self._inner = inner

            def perform(self, request):
                return Wire(len(self._inner.perform(request)) * 500)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        naps = []
        simulated = SimulatedNetworkTransport(
            Encoding(InProcessTransport(agents)),
            FaultProfile(per_item=0.001),
            clock=naps.append,
        )
        simulated.perform(ScanRequest("a1", "S1", "person"))
        assert naps == [pytest.approx(1.0)]  # 1000 items, not 1

    def test_changes_stays_unpriced_control_plane(self, agents):
        naps = []
        simulated = self._simulated(agents, naps)
        request = ScanRequest("a1", "S1", "person")
        agents["a1"].database("S1").insert("person", {"ssn#": "3", "name": "cid"})
        simulated.changes(request, since=0)
        simulated.generation(request)
        assert naps == []

    def test_transfer_item_count_vocabulary(self):
        from repro.runtime import BatchScanResult
        from repro.runtime.transport import transfer_item_count

        class Counted:
            item_count = 7

        class Opaque:
            pass

        assert transfer_item_count(None) == 0
        assert transfer_item_count([1, 2, 3]) == 3
        assert transfer_item_count({"a", "b"}) == 2
        assert transfer_item_count(Counted()) == 7
        assert transfer_item_count(Opaque()) == 1
        nested = BatchScanResult(([1, 2], BatchScanResult(({"x"}, None))))
        assert transfer_item_count(nested) == 3
        assert len(nested) == 3
