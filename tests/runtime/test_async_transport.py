"""Asyncio transports: fault injection, cancellation accounting, adapters."""

import asyncio
import time

import pytest

from repro.errors import TransportError
from repro.federation import FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.runtime import (
    AsyncInProcessTransport,
    AsyncSimulatedNetworkTransport,
    AsyncTransportAdapter,
    FaultProfile,
    InProcessTransport,
    ScanRequest,
)


def _one_agent():
    schema = Schema("S1")
    schema.add_class(ClassDef("person").attr("ssn#"))
    database = ObjectDatabase(schema, agent="h1")
    database.insert("person", {"ssn#": "1"})
    agent = FSMAgent("a1")
    agent.host_object_database(database)
    return {"a1": agent}, database


REQUEST = ScanRequest("a1", "S1", "person")


class TestAsyncInProcessTransport:
    def test_perform_returns_extent(self):
        agents, _ = _one_agent()
        transport = AsyncInProcessTransport(agents)
        extent = asyncio.run(transport.perform(REQUEST))
        assert len(extent) == 1

    def test_metadata_lookups_stay_synchronous(self):
        agents, database = _one_agent()
        transport = AsyncInProcessTransport(agents)
        assert transport.agent_names() == ("a1",)
        assert transport.agent_for_schema("S1") == "a1"
        assert transport.generation(REQUEST) == database.version

    def test_adapter_wraps_any_sync_transport(self):
        agents, _ = _one_agent()
        adapter = AsyncTransportAdapter(InProcessTransport(agents))
        extent = asyncio.run(adapter.perform(REQUEST))
        assert len(extent) == 1


class TestSimulatedFaults:
    def test_scripted_failures_then_success(self):
        agents, _ = _one_agent()
        transport = AsyncSimulatedNetworkTransport(AsyncInProcessTransport(agents))
        transport.set_profile("a1", FaultProfile(fail_times=2))

        async def attempts():
            outcomes = []
            for _ in range(3):
                try:
                    outcomes.append(len(await transport.perform(REQUEST)))
                except TransportError:
                    outcomes.append("fail")
            return outcomes

        assert asyncio.run(attempts()) == ["fail", "fail", 1]
        assert transport.calls["a1"] == 3
        assert transport.completed["a1"] == 1

    def test_drops_raise_transport_error(self):
        agents, _ = _one_agent()
        transport = AsyncSimulatedNetworkTransport(
            AsyncInProcessTransport(agents), FaultProfile(drop_rate=1.0)
        )
        with pytest.raises(TransportError, match="dropped"):
            asyncio.run(transport.perform(REQUEST))

    def test_latency_suspends_instead_of_blocking(self):
        """Two 30ms scans sharing one loop finish in ~one latency window."""
        agents, _ = _one_agent()
        transport = AsyncSimulatedNetworkTransport(
            AsyncInProcessTransport(agents), FaultProfile(latency=0.030)
        )

        async def both():
            return await asyncio.gather(
                transport.perform(REQUEST), transport.perform(REQUEST)
            )

        started = time.perf_counter()
        extents = asyncio.run(both())
        elapsed = time.perf_counter() - started
        assert [len(e) for e in extents] == [1, 1]
        assert elapsed < 0.055  # serial blocking would need >= 60ms

    def test_reset_scripts_forgets_attempts(self):
        agents, _ = _one_agent()
        transport = AsyncSimulatedNetworkTransport(AsyncInProcessTransport(agents))
        transport.set_profile("a1", FaultProfile(fail_times=1))

        async def one():
            return await transport.perform(REQUEST)

        with pytest.raises(TransportError):
            asyncio.run(one())
        assert len(asyncio.run(one())) == 1  # scripted failure consumed
        transport.reset_scripts()
        with pytest.raises(TransportError):
            asyncio.run(one())  # script replays from scratch


class TestCancellationAccounting:
    def test_cancelled_scan_counts_as_cancelled_never_completed(self):
        agents, _ = _one_agent()
        transport = AsyncSimulatedNetworkTransport(
            AsyncInProcessTransport(agents), FaultProfile(latency=5.0)
        )

        async def cancel_mid_flight():
            task = asyncio.ensure_future(transport.perform(REQUEST))
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(cancel_mid_flight())
        assert transport.calls["a1"] == 1
        assert transport.cancelled["a1"] == 1
        assert transport.completed["a1"] == 0
