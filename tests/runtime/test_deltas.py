"""Delta primitives: the log, chain validation, variant patching.

The contracts every delta consumer leans on: a :class:`DeltaLog` only
serves contiguous suffixes that actually reach its head; chains that
dropped, duplicated or reordered links never validate;
:func:`patch_variant` either replays records exactly or raises
:class:`DeltaUnpatchable` (no partial best-effort); and
:meth:`ExtentCache.apply_deltas` patches in place, falls back to
targeted per-variant eviction — never a generation bump — and leaves
feedless stores untouched.
"""

import pytest

from repro.federation import FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.model.oids import OID
from repro.runtime import MISS, ExtentCache, ScanRequest
from repro.runtime.deltas import (
    DeltaLog,
    DeltaRecord,
    DeltaReply,
    DeltaUnpatchable,
    SourceDelta,
    chain_is_contiguous,
    describe_granule,
    patch_variant,
)
from repro.runtime.sharding import DEFAULT_BAND, shard_of_oid
from repro.runtime.transport import InProcessTransport


def _oid(number):
    return OID("a1", "sys", "S1", "person", number)


class FakeInstance:
    """The slice of the instance protocol patching touches: oid + get."""

    def __init__(self, number, **attributes):
        self.oid = _oid(number)
        self.attributes = attributes

    def get(self, name):
        return self.attributes.get(name)

    def __repr__(self):
        return f"FakeInstance({self.oid.number}, {self.attributes})"


def _step(base, new, *records):
    return SourceDelta(base, new, tuple(records))


class TestDeltaRecord:
    def test_unknown_op_is_rejected(self):
        with pytest.raises(ValueError):
            DeltaRecord("truncate", "person")

    def test_rescan_needs_no_oid_or_instance(self):
        record = DeltaRecord("rescan", "person")
        assert record.oid is None and record.instance is None


class TestDeltaLog:
    def test_empty_log_serves_nothing(self):
        log = DeltaLog()
        assert log.head_version is None
        assert log.changes_since(0) is None

    def test_reader_at_head_gets_the_empty_chain(self):
        log = DeltaLog()
        log.record(_step(1, 2))
        assert log.changes_since(2) == ()

    def test_contiguous_suffix_reaches_the_head(self):
        log = DeltaLog()
        first, second, third = _step(1, 2), _step(2, 3), _step(3, 4)
        for delta in (first, second, third):
            log.record(delta)
        assert log.changes_since(1) == (first, second, third)
        assert log.changes_since(3) == (third,)
        assert log.changes_since(0) is None  # before the ring's reach

    def test_capacity_evicts_the_oldest(self):
        log = DeltaLog(capacity=2)
        for delta in (_step(1, 2), _step(2, 3), _step(3, 4)):
            log.record(delta)
        assert len(log) == 2
        assert log.changes_since(1) is None  # fell off the ring
        assert log.changes_since(2) == (_step(2, 3), _step(3, 4))

    def test_broken_link_blocks_older_suffixes(self):
        log = DeltaLog()
        log.record(_step(1, 2))
        log.record(_step(5, 6))  # an unlogged span sits between
        assert log.changes_since(5) == (_step(5, 6),)
        assert log.changes_since(1) is None

    def test_recurring_version_serves_the_latest_occurrence(self):
        # content fingerprints may revisit a value (write, revert); only
        # the suffix that reaches the head is replayable
        log = DeltaLog()
        early = _step(1, 2, DeltaRecord("rescan", "person"))
        log.record(early)
        log.record(_step(2, 1))
        late = _step(1, 2)
        log.record(late)
        assert log.changes_since(1) == (late,)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DeltaLog(capacity=0)


class TestChainContiguity:
    def test_gapless_walk_validates(self):
        assert chain_is_contiguous((_step(1, 2), _step(2, 3)), 1, 3)

    def test_empty_chain_needs_matching_endpoints(self):
        assert chain_is_contiguous((), 3, 3)
        assert not chain_is_contiguous((), 2, 3)

    def test_dropped_link_fails(self):
        assert not chain_is_contiguous((_step(2, 3),), 1, 3)

    def test_duplicated_link_fails(self):
        assert not chain_is_contiguous(
            (_step(1, 2), _step(1, 2), _step(2, 3)), 1, 3
        )

    def test_reordered_links_fail(self):
        assert not chain_is_contiguous((_step(2, 3), _step(1, 2)), 1, 3)

    def test_short_head_fails(self):
        # the feed's head predates the observed version: unlogged write
        assert not chain_is_contiguous((_step(1, 2),), 1, 3)


class TestPatchExtent:
    VARIANT = ("extent", None)

    def test_insert_appends_at_the_tail(self):
        value = [FakeInstance(1)]
        new = FakeInstance(2)
        patch_variant(value, self.VARIANT, [DeltaRecord("insert", "person", new.oid, new)])
        assert [i.oid.number for i in value] == [1, 2]

    def test_update_replaces_in_position(self):
        old, other = FakeInstance(1, name="a"), FakeInstance(2)
        value = [old, other]
        new = FakeInstance(1, name="b")
        patch_variant(value, self.VARIANT, [DeltaRecord("update", "person", new.oid, new)])
        assert value[0] is new and value[1] is other

    def test_delete_splices_and_tolerates_absence(self):
        value = [FakeInstance(1), FakeInstance(2)]
        patch_variant(
            value,
            self.VARIANT,
            [
                DeltaRecord("delete", "person", _oid(1)),
                DeltaRecord("delete", "person", _oid(7)),  # already gone
            ],
        )
        assert [i.oid.number for i in value] == [2]

    def test_rescan_marker_is_unpatchable(self):
        with pytest.raises(DeltaUnpatchable):
            patch_variant([], self.VARIANT, [DeltaRecord("rescan", "person")])

    def test_insert_without_instance_is_unpatchable(self):
        with pytest.raises(DeltaUnpatchable):
            patch_variant(
                [], self.VARIANT, [DeltaRecord("insert", "person", _oid(1))]
            )

    def test_record_without_oid_is_unpatchable(self):
        with pytest.raises(DeltaUnpatchable):
            patch_variant(
                [], self.VARIANT, [DeltaRecord("insert", "person")]
            )

    def test_shard_coordinate_filters_ownership(self):
        new = FakeInstance(9)
        of = 4
        owner = shard_of_oid(new.oid, of, "hash", DEFAULT_BAND)
        stranger = (owner + 1) % of
        mine, not_mine = [], []
        record = DeltaRecord("insert", "person", new.oid, new)
        patch_variant(mine, self.VARIANT, [record], (owner, of, "hash", DEFAULT_BAND))
        patch_variant(
            not_mine, self.VARIANT, [record], (stranger, of, "hash", DEFAULT_BAND)
        )
        assert mine == [new] and not_mine == []

    def test_unknown_variant_is_unpatchable(self):
        with pytest.raises(DeltaUnpatchable):
            patch_variant([], ("counts", None), [])


class TestPatchValueSet:
    VARIANT = ("value_set", "name")

    def test_insert_adds_the_mapped_value(self):
        value = {"a"}
        new = FakeInstance(2, name="b")
        patch_variant(value, self.VARIANT, [DeltaRecord("insert", "person", new.oid, new)])
        assert value == {"a", "b"}

    def test_multivalued_insert_flattens_and_skips_nulls(self):
        value = set()
        new = FakeInstance(2, name=frozenset({"x", None, "y"}))
        null = FakeInstance(3)
        patch_variant(
            value,
            self.VARIANT,
            [
                DeltaRecord("insert", "person", new.oid, new),
                DeltaRecord("insert", "person", null.oid, null),
            ],
        )
        assert value == {"x", "y"}

    def test_delete_has_no_multiplicity_and_is_unpatchable(self):
        with pytest.raises(DeltaUnpatchable):
            patch_variant({"a"}, self.VARIANT, [DeltaRecord("delete", "person", _oid(1))])

    def test_update_is_unpatchable(self):
        new = FakeInstance(1, name="b")
        with pytest.raises(DeltaUnpatchable):
            patch_variant(
                {"a"}, self.VARIANT, [DeltaRecord("update", "person", new.oid, new)]
            )


class TestDescribeGranule:
    def test_unsharded_and_attribute_forms(self):
        assert (
            describe_granule(("a1", "S1", "person"), ("extent", None))
            == "extent(a1:S1.person)"
        )
        assert (
            describe_granule(("a1", "S1", "person"), ("value_set", "name"))
            == "value_set(a1:S1.person.name)"
        )

    def test_sharded_form_names_the_endpoint(self):
        key = ("a1", "S1", "person", (2, 4, "hash", DEFAULT_BAND))
        assert (
            describe_granule(key, ("direct_extent", None))
            == "direct_extent(a1#2/4:S1.person)"
        )


class TestApplyDeltas:
    REQUEST = ScanRequest("a1", "S1", "person", op="extent")

    def _cache_with(self, instances, version=1):
        cache = ExtentCache()
        cache.put(self.REQUEST, list(instances), source_generation=version)
        return cache

    def test_contiguous_chain_patches_in_place(self):
        cache = self._cache_with([FakeInstance(1)])
        new = FakeInstance(2)
        reply = DeltaReply(
            (_step(1, 2, DeltaRecord("insert", "person", new.oid, new)),)
        )
        outcome = cache.apply_deltas("a1", "S1", 2, lambda since: reply)
        assert outcome.granules_patched == 1
        assert outcome.deltas_applied == 1
        assert outcome.fallbacks == [] and not outcome.feed_missing
        patched = cache.get(self.REQUEST, source_generation=2)
        assert [i.oid.number for i in patched] == [1, 2]

    def test_other_relations_records_are_filtered_out(self):
        # a write elsewhere in the schema advances the version; this
        # granule absorbs the step with zero content change
        cache = self._cache_with([FakeInstance(1)])
        new = FakeInstance(2)
        reply = DeltaReply(
            (_step(1, 2, DeltaRecord("insert", "department", new.oid, new)),)
        )
        outcome = cache.apply_deltas("a1", "S1", 2, lambda since: reply)
        assert outcome.granules_patched == 1
        assert [i.oid.number for i in cache.get(self.REQUEST, 2)] == [1]

    def test_gap_takes_the_targeted_fallback(self):
        cache = self._cache_with([FakeInstance(1)])
        outcome = cache.apply_deltas(
            "a1", "S1", 2, lambda since: DeltaReply(None)
        )
        assert outcome.granules_patched == 0
        assert outcome.fallbacks == [("extent(a1:S1.person)", "sequence gap")]
        assert cache.get(self.REQUEST, 2) is MISS

    def test_non_contiguous_chain_is_a_gap(self):
        cache = self._cache_with([FakeInstance(1)])
        reply = DeltaReply((_step(5, 6),))  # does not link 1 → 2
        outcome = cache.apply_deltas("a1", "S1", 2, lambda since: reply)
        assert outcome.fallbacks == [("extent(a1:S1.person)", "sequence gap")]

    def test_missing_feed_leaves_the_cache_untouched(self):
        cache = self._cache_with([FakeInstance(1)])
        outcome = cache.apply_deltas("a1", "S1", 2, lambda since: None)
        assert outcome.feed_missing
        assert outcome.granules_patched == 0 and outcome.fallbacks == []
        # the entry is left to ordinary version-mismatch eviction
        assert cache.get(self.REQUEST, source_generation=1) is not MISS

    def test_unpatchable_variant_is_evicted_alone(self):
        cache = self._cache_with([FakeInstance(1)])
        sibling = ScanRequest("a1", "S1", "person", op="value_set", attribute="name")
        cache.put(sibling, {"a"}, source_generation=1)
        gone = FakeInstance(1)
        reply = DeltaReply(
            (_step(1, 2, DeltaRecord("delete", "person", gone.oid)),)
        )
        outcome = cache.apply_deltas("a1", "S1", 2, lambda since: reply)
        # the extent absorbed the delete; the value set cannot (a set
        # has no multiplicity) and was evicted — alone
        assert outcome.granules_patched == 1
        assert [desc for desc, _ in outcome.fallbacks] == [
            "value_set(a1:S1.person.name)"
        ]
        assert cache.get(self.REQUEST, 2) == []
        assert cache.get(sibling, 2) is MISS

    def test_fetch_is_memoized_per_since_version(self):
        cache = self._cache_with([FakeInstance(1)])
        sibling = ScanRequest("a1", "S1", "city", op="extent")
        cache.put(sibling, [FakeInstance(3)], source_generation=1)
        calls = []

        def fetch(since):
            calls.append(since)
            return DeltaReply((_step(1, 2),))

        outcome = cache.apply_deltas("a1", "S1", 2, fetch)
        assert outcome.granules_patched == 2
        assert outcome.deltas_applied == 1  # one distinct chain replayed
        assert calls == [1]

    def test_fresh_and_unobservable_entries_are_skipped(self):
        cache = ExtentCache()
        cache.put(self.REQUEST, [FakeInstance(1)], source_generation=2)
        unobservable = ScanRequest("a1", "S1", "city", op="extent")
        cache.put(unobservable, [FakeInstance(2)], source_generation=None)

        def fetch(since):  # pragma: no cover - must never be consulted
            raise AssertionError("nothing stale to sync")

        outcome = cache.apply_deltas("a1", "S1", 2, fetch)
        assert outcome.granules_patched == 0 and outcome.fallbacks == []


class TestTransportChanges:
    def test_feedless_object_database_returns_none(self):
        schema = Schema("S1")
        schema.add_class(ClassDef("person").attr("ssn#"))
        agent = FSMAgent("a1")
        agent.host_object_database(ObjectDatabase(schema, agent="h1"))
        transport = InProcessTransport({"a1": agent})
        assert transport.changes(ScanRequest("a1", "S1", "person"), 1) is None

    def test_unknown_agent_reads_as_feedless(self):
        transport = InProcessTransport({})
        assert transport.changes(ScanRequest("a1", "S1", "person"), 1) is None


class TestDeltaLogCapacityRace:
    """Regression: a capacity eviction landing *mid*-``changes_since``
    shifted every index the walk had already verified, so the returned
    "contiguous" suffix could contain an unverified broken link — a
    spuriously contiguous chain the cache would happily replay.  The
    walk now runs over a snapshot taken under the log's lock, so a
    concurrent ``record`` can only be observed entirely or not at all.
    """

    @staticmethod
    def _spliced(log, trigger):
        """Arm *log* so its list mutates itself (one eviction + one
        append, exactly what ``record`` past capacity does) at the
        *trigger*-th element access — the racing writer, made
        deterministic.  The splice bypasses the lock on purpose: if the
        walk still touched the live list, the mutation would land
        mid-walk exactly as a concurrent ``record`` used to."""

        class RacingList(list):
            accesses = 0

            def __getitem__(self, index):
                RacingList.accesses += 1
                if RacingList.accesses == trigger and len(self) >= 2:
                    list.__delitem__(self, slice(0, 1))
                    head = list.__getitem__(self, -1)
                    list.append(
                        self, SourceDelta(head.new_version + 5, head.new_version + 6)
                    )
                return list.__getitem__(self, index)

        log._deltas = RacingList(log._deltas)
        return log

    def test_mid_walk_eviction_never_yields_a_spurious_chain(self):
        for trigger in range(1, 12):
            log = DeltaLog(capacity=8)
            for delta in (_step(1, 2), _step(2, 3), _step(3, 4)):
                log.record(delta)
            self._spliced(log, trigger)
            chain = log.changes_since(2)
            if chain is None:
                continue
            assert chain_is_contiguous(chain, 2, chain[-1].new_version), (
                f"trigger={trigger} returned a broken chain {chain}"
            )

    def test_concurrent_writer_past_capacity_stress(self):
        import threading

        log = DeltaLog(capacity=6)
        version = 0
        for _ in range(6):
            log.record(_step(version, version + 1))
            version += 1
        stop = threading.Event()
        broken = []

        def writer():
            cursor = version
            while not stop.is_set():
                log.record(_step(cursor, cursor + 1))
                cursor += 1

        def reader():
            for _ in range(3_000):
                head = log.head_version
                chain = log.changes_since(head - 3)
                if chain is None or not chain:
                    continue
                if not chain_is_contiguous(chain, head - 3, chain[-1].new_version):
                    broken.append(chain)
                    break

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            reader()
        finally:
            stop.set()
            thread.join(timeout=5)
        assert broken == []

    def test_record_past_capacity_still_evicts_oldest(self):
        log = DeltaLog(capacity=2)
        for delta in (_step(1, 2), _step(2, 3), _step(3, 4)):
            log.record(delta)
        assert len(log) == 2
        assert log.changes_since(1) is None  # evicted span is a gap, not a guess
        assert log.changes_since(2) == (_step(2, 3), _step(3, 4))
