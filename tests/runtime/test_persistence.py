"""The persistent extent store: warm restarts, crash safety, wiring.

The tentpole invariant: a federation restarted with the same
``cache_path`` answers its queries **without a single agent scan** and
with results identical to the cold run, while a component-database
write after the reopen — or a persisted ``bump_generation`` — still
invalidates exactly as it does live.
"""

import sqlite3

import pytest

from repro.core.session import FederationSession
from repro.federation import FSM, FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.workloads import federated_cluster
from repro.runtime import (
    MISS,
    ExtentCache,
    FederationRuntime,
    PersistentExtentStore,
    RuntimeMetrics,
    ScanRequest,
    ShardPlan,
)
from repro.runtime.persistence import FORMAT_VERSION


def build_single_agent(instances=3):
    schema = Schema("S1")
    schema.add_class(ClassDef("person").attr("ssn#"))
    database = ObjectDatabase(schema, agent="h1")
    for index in range(instances):
        database.insert("person", {"ssn#": str(index)})
    agent = FSMAgent("a1")
    agent.host_object_database(database)
    return agent, database


@pytest.fixture
def cache_path(tmp_path):
    return tmp_path / "extents.db"


class TestStorePrimitives:
    def test_roundtrip_through_reopen(self, cache_path):
        store = PersistentExtentStore(cache_path)
        key = ("a1", "S1", "person")
        store.put(key, ("direct_extent", None), [1, 2], 0, 7)
        store.put(key, ("value_set", "ssn#"), {"x"}, 0, 7)
        assert len(store) == 2
        store.close()

        reopened = PersistentExtentStore(cache_path)
        assert not reopened.recovered
        entries = {variant: value for _, variant, value, _, _ in reopened.load()}
        assert entries == {("direct_extent", None): [1, 2], ("value_set", "ssn#"): {"x"}}
        reopened.close()

    def test_sharded_key_roundtrip(self, cache_path):
        store = PersistentExtentStore(cache_path)
        key = ("a1", "S1", "person", (2, 7, "range", 3))
        store.put(key, ("direct_extent", None), ["slice"], 0, 1)
        store.close()
        reopened = PersistentExtentStore(cache_path)
        (restored_key, variant, value, cache_generation, source_generation), = list(
            reopened.load()
        )
        assert restored_key == key
        assert value == ["slice"] and source_generation == 1
        reopened.close()

    def test_delete_and_clear(self, cache_path):
        store = PersistentExtentStore(cache_path)
        key = ("a1", "S1", "person")
        store.put(key, ("direct_extent", None), [1], 0, 1)
        store.put(key, ("extent", None), [2], 0, 1)
        store.delete(key, ("direct_extent", None))
        assert len(store) == 1
        store.delete_granule(key)
        assert len(store) == 0
        store.put(key, ("extent", None), [2], 0, 1)
        store.clear()
        assert len(store) == 0
        store.close()

    def test_generation_header_persists(self, cache_path):
        store = PersistentExtentStore(cache_path)
        assert store.generation() == 0
        store.set_generation(5)
        store.close()
        reopened = PersistentExtentStore(cache_path)
        assert reopened.generation() == 5
        reopened.close()

    def test_load_purges_entries_from_older_generations(self, cache_path):
        store = PersistentExtentStore(cache_path)
        store.put(("a1", "S1", "person"), ("direct_extent", None), [1], 0, 1)
        store.set_generation(1)  # the entry above is now stale
        store.put(("a1", "S1", "city"), ("direct_extent", None), [2], 1, 1)
        assert list(store.load()) == [
            (("a1", "S1", "city"), ("direct_extent", None), [2], 1, 1)
        ]
        assert len(store) == 1  # the stale row was deleted, not kept
        store.close()


class TestCrashSafety:
    def test_corrupt_file_falls_back_to_cold_start(self, cache_path):
        cache_path.write_bytes(b"this is not a sqlite database, not even close")
        store = PersistentExtentStore(cache_path)
        assert store.recovered
        assert len(store) == 0
        # the evidence is preserved next to the fresh store
        assert cache_path.with_name(cache_path.name + ".corrupt").exists()
        store.put(("a1", "S1", "person"), ("direct_extent", None), [1], 0, 1)
        store.close()
        assert not PersistentExtentStore(cache_path).recovered

    def test_format_version_mismatch_discards_the_file(self, cache_path):
        store = PersistentExtentStore(cache_path)
        store.put(("a1", "S1", "person"), ("direct_extent", None), [1], 0, 1)
        store.close()
        connection = sqlite3.connect(cache_path)
        with connection:
            connection.execute(
                "UPDATE meta SET value = ? WHERE key = 'format'",
                (FORMAT_VERSION + 1,),
            )
        connection.close()
        reopened = PersistentExtentStore(cache_path)
        assert reopened.recovered
        assert len(reopened) == 0
        reopened.close()

    def test_undecodable_value_row_is_dropped_not_fatal(self, cache_path):
        store = PersistentExtentStore(cache_path)
        store.put(("a1", "S1", "person"), ("direct_extent", None), [1], 0, 1)
        store.put(("a1", "S1", "city"), ("direct_extent", None), [2], 0, 1)
        store.close()
        connection = sqlite3.connect(cache_path)
        with connection:
            connection.execute(
                "UPDATE granules SET value = ? WHERE class_name = 'person'",
                (b"\x80garbage-pickle",),
            )
        connection.close()
        reopened = PersistentExtentStore(cache_path)
        entries = list(reopened.load())
        assert [key for key, *_ in entries] == [("a1", "S1", "city")]
        assert len(reopened) == 1  # the poisoned row was purged
        reopened.close()


class TestPersistentCache:
    def test_cache_spills_and_restores(self, cache_path):
        store = PersistentExtentStore(cache_path)
        cache = ExtentCache(store=store)
        request = ScanRequest("a1", "S1", "person")
        cache.put(request, [1, 2], source_generation=4)
        store.close()

        warm = ExtentCache(store=PersistentExtentStore(cache_path))
        assert warm.restored == 1
        assert warm.get(request, source_generation=4) == [1, 2]
        warm.close()

    def test_unobservable_source_stays_memory_only(self, cache_path):
        store = PersistentExtentStore(cache_path)
        cache = ExtentCache(store=store)
        request = ScanRequest("a1", "S1", "person")
        cache.put(request, [1], source_generation=None)
        assert cache.get(request) == [1]  # live hit as always
        assert len(store) == 0  # but never spilled: unverifiable on restart
        store.close()

    def test_source_version_mismatch_after_restart_misses(self, cache_path):
        cache = ExtentCache(store=PersistentExtentStore(cache_path))
        request = ScanRequest("a1", "S1", "person")
        cache.put(request, [1], source_generation=4)
        cache.close()
        warm = ExtentCache(store=PersistentExtentStore(cache_path))
        assert warm.get(request, source_generation=5) is MISS  # post-restart write
        warm.close()
        # the stale eviction wrote through: a third open restores nothing
        cold = ExtentCache(store=PersistentExtentStore(cache_path))
        assert cold.restored == 0
        cold.close()

    def test_bump_generation_is_persistent(self, cache_path):
        cache = ExtentCache(store=PersistentExtentStore(cache_path))
        request = ScanRequest("a1", "S1", "person")
        cache.put(request, [1], source_generation=4)
        cache.bump_generation()
        cache.close()
        warm = ExtentCache(store=PersistentExtentStore(cache_path))
        assert warm.generation == 1
        assert warm.restored == 0
        warm.close()

    def test_invalidate_and_clear_write_through(self, cache_path):
        store = PersistentExtentStore(cache_path)
        cache = ExtentCache(store=store)
        cache.put(ScanRequest("a1", "S1", "person"), [1], source_generation=4)
        cache.put(ScanRequest("a2", "S2", "city"), [2], source_generation=4)
        assert cache.invalidate(agent="a1") == 1
        assert len(store) == 1
        cache.clear()
        assert len(store) == 0
        store.close()

    def test_persistence_timer_and_restore_counter(self, cache_path):
        metrics = RuntimeMetrics()
        cache = ExtentCache(store=PersistentExtentStore(cache_path), metrics=metrics)
        cache.put(ScanRequest("a1", "S1", "person"), [1], source_generation=4)
        cache.close()
        agent, _ = build_single_agent()
        runtime = FederationRuntime(agents={"a1": agent}, cache_path=cache_path)
        stats = runtime.stats()
        assert stats.counter("cache_restores") == 1
        assert stats.timers["persistence"].count >= 1
        runtime.close()


class TestRuntimeWarmRestart:
    def test_restart_answers_without_one_agent_scan(self, cache_path):
        agent, _ = build_single_agent()
        runtime = FederationRuntime(agents={"a1": agent}, cache_path=cache_path)
        cold = [i.oid for i in runtime.direct_extent("S1", "person")]
        assert agent.access_count == 1
        runtime.close()

        restarted_agent, database = build_single_agent()
        restarted = FederationRuntime(
            agents={"a1": restarted_agent}, cache_path=cache_path
        )
        warm = [i.oid for i in restarted.direct_extent("S1", "person")]
        assert warm == cold
        assert restarted_agent.access_count == 0  # not a single agent scan
        assert restarted.stats().counter("cache_restores") == 1

        # a component write after the reopen forces an exact rescan
        database.insert("person", {"ssn#": "fresh"})
        assert len(restarted.direct_extent("S1", "person")) == len(cold) + 1
        assert restarted_agent.access_count == 1
        restarted.close()

    def test_sharded_restart_restores_every_shard_granule(self, cache_path):
        plan = ShardPlan(4)
        agent, _ = build_single_agent(instances=12)
        runtime = FederationRuntime(
            agents={"a1": agent}, shard_plan=plan, cache_path=cache_path
        )
        cold = {i.oid for i in runtime.direct_extent("S1", "person")}
        assert agent.access_count == 4
        runtime.close()

        restarted_agent, database = build_single_agent(instances=12)
        restarted = FederationRuntime(
            agents={"a1": restarted_agent}, shard_plan=plan, cache_path=cache_path
        )
        warm = {i.oid for i in restarted.direct_extent("S1", "person")}
        assert warm == cold
        assert restarted_agent.access_count == 0
        assert restarted.stats().counter("cache_restores") == 4

        database.insert("person", {"ssn#": "fresh"})
        assert len(restarted.direct_extent("S1", "person")) == len(cold) + 1
        assert restarted_agent.access_count == 4  # every shard re-scanned
        restarted.close()

    def test_restart_under_a_different_plan_misses_cleanly(self, cache_path):
        agent, _ = build_single_agent(instances=12)
        runtime = FederationRuntime(
            agents={"a1": agent}, shard_plan=ShardPlan(4, "hash"),
            cache_path=cache_path,
        )
        cold = {i.oid for i in runtime.direct_extent("S1", "person")}
        runtime.close()

        # the reopened runtime shards by range: the persisted hash-plan
        # granules must not be served for range-plan coordinates
        restarted_agent, _ = build_single_agent(instances=12)
        restarted = FederationRuntime(
            agents={"a1": restarted_agent}, shard_plan=ShardPlan(4, "range"),
            cache_path=cache_path,
        )
        assert {i.oid for i in restarted.direct_extent("S1", "person")} == cold
        assert restarted_agent.access_count == 4  # all range shards cold
        restarted.close()

    def test_async_mode_shares_the_persistent_cache(self, cache_path):
        agent, _ = build_single_agent()
        runtime = FederationRuntime(
            agents={"a1": agent}, mode="async", cache_path=cache_path
        )
        cold = [i.oid for i in runtime.direct_extent("S1", "person")]
        runtime.close()

        restarted_agent, _ = build_single_agent()
        restarted = FederationRuntime(
            agents={"a1": restarted_agent}, mode="async", cache_path=cache_path
        )
        assert [i.oid for i in restarted.direct_extent("S1", "person")] == cold
        assert restarted_agent.access_count == 0
        restarted.close()


class TestDeltaWarmRestart:
    """Patched granules write through at their new version, so deltas
    applied before a shutdown are visible after recovery — with zero
    agent scans, because content-derived source versions are
    process-deterministic."""

    @staticmethod
    def _disk_fsm(data_dir):
        from repro.runtime import RuntimePolicy
        from repro.sources import load_source_federation
        from repro.workloads import source_fsm

        text, databases = load_source_federation(data_dir)
        fsm = source_fsm(databases, text)
        fsm.integrate_all()
        return fsm, databases, RuntimePolicy()

    def test_deltas_applied_before_shutdown_survive_with_zero_scans(
        self, tmp_path, cache_path
    ):
        from repro.workloads import generate_source_federation, write_source_directory

        dataset = generate_source_federation(
            people_per_schema=5, records_per_person=1, seed=9,
            schemas=("university", "hospital"),
        )
        data_dir = tmp_path / "federation"
        write_source_directory(dataset, data_dir, kinds="sqlite")

        fsm, databases, policy = self._disk_fsm(data_dir)
        runtime = fsm.use_runtime(policy, cache_path=str(cache_path))
        query = "person() -> ssn"
        cold = {row["ssn"] for row in fsm.query(query)}
        databases["university"].adapter.insert_row(
            "person",
            {"ssn": "restart-new", "name": "rn", "level": 2, "dept": "d0"},
        )
        patched = {row["ssn"] for row in fsm.query(query)}
        assert patched == cold | {"restart-new"}
        assert fsm.last_query_stats.counter("agent_scans") == 0
        assert fsm.last_query_stats.counter("granules_patched") > 0
        runtime.close()

        # "another process": fresh adapters, empty delta logs, same
        # files — the restored granules already carry the post-write
        # content version, so nothing is stale and nothing rescans
        restarted_fsm, _, restarted_policy = self._disk_fsm(data_dir)
        restarted = restarted_fsm.use_runtime(
            restarted_policy, cache_path=str(cache_path)
        )
        warm = {row["ssn"] for row in restarted_fsm.query(query)}
        assert warm == patched
        assert restarted_fsm.last_query_stats.counter("agent_scans") == 0
        assert restarted.stats().counter("cache_restores") > 0
        restarted.close()


class TestSessionAndFsmWiring:
    @staticmethod
    def _populated_session():
        built, text, databases = federated_cluster(schemas=3, per_class=4)
        session = FederationSession()
        for schema in built:
            session.add_database(databases[schema.name])
        session.declare(text)
        session.integrate()
        return session

    def test_enable_runtime_cache_path_round_trip(self, cache_path):
        session = self._populated_session()
        runtime = session.enable_runtime(cache_path=cache_path)
        cold = sorted(row["ssn#"] for row in session.query("person0() -> ssn#"))
        assert cold
        runtime.close()

        restarted = self._populated_session()
        warm_runtime = restarted.enable_runtime(cache_path=cache_path)
        warm = sorted(row["ssn#"] for row in restarted.query("person0() -> ssn#"))
        assert warm == cold
        assert restarted.last_query_stats.counter("agent_scans") == 0
        assert warm_runtime.stats().counter("cache_restores") > 0
        warm_runtime.close()

    def test_fsm_use_runtime_accepts_cache_path(self, cache_path):
        agent, _ = build_single_agent()
        fsm = FSM()
        fsm.register_agent(agent)
        runtime = fsm.use_runtime(cache_path=str(cache_path))
        assert runtime.cache.persistent
        runtime.close()
