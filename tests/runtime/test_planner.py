"""The query planner: pruning, coalescing, pushdown, exact loss accounting.

Unit coverage for the planning primitives (batch requests, endpoint
coalescing, the §6 contributing-classes closure) plus end-to-end checks
of the planned query path: planned answers must equal unplanned answers
while ``round_trips`` drops strictly; pushdown hints must never change
request identity or cache keys; and a failed batch must name exactly
the granules it lost in ``RuntimeStats.lost_granules``.
"""

import pytest

from repro.errors import PartialResultError, TransportError
from repro.federation import FSM, FSMAgent
from repro.federation.query import FederatedQuery
from repro.runtime import (
    BatchScanRequest,
    BatchScanResult,
    FaultProfile,
    FederationRuntime,
    InProcessTransport,
    RuntimePolicy,
    ScanHint,
    ScanRequest,
    SimulatedNetworkTransport,
    coalesce_by_endpoint,
    contributing_classes,
    plan_query,
)
from repro.workloads import federated_cluster, genealogy

CLUSTER_QUERY = "person0() -> ssn#"
GENEALOGY_QUERY = "uncle(niece_nephew='John') -> Ussn#"


def _genealogy_fsm():
    _, _, text, databases = genealogy()
    fsm = FSM()
    for name, database in databases.items():
        agent = FSMAgent(f"agent-{name}")
        agent.host_object_database(database)
        fsm.register_agent(agent)
    fsm.declare(text)
    names = list(fsm.schema_names())
    fsm.integrate(names[0], names[1])
    return fsm


def _answers(rows):
    return sorted(row["ssn#"] if "ssn#" in row else row["Ussn#"] for row in rows)


def _simulated(fsm, policy=None, plan=True, per_agent=()):
    transport = SimulatedNetworkTransport(
        InProcessTransport(fsm._agents, fsm._schema_host)
    )
    for name, profile in per_agent:
        transport.set_profile(name, profile)
    runtime = FederationRuntime(
        transport=transport, policy=policy or RuntimePolicy(), plan=plan
    )
    fsm.use_runtime(runtime=runtime)
    return runtime, transport


class TestBatchPrimitives:
    def test_batch_needs_granules_and_one_endpoint(self):
        with pytest.raises(TransportError):
            BatchScanRequest(())
        with pytest.raises(TransportError):
            BatchScanRequest(
                (ScanRequest("a1", "S1", "c"), ScanRequest("a2", "S2", "c"))
            )

    def test_batch_exposes_its_granules(self):
        granules = (
            ScanRequest("a1", "S1", "person0"),
            ScanRequest("a1", "S1", "person1"),
        )
        batch = BatchScanRequest(granules)
        assert batch.endpoint == "a1"
        assert batch.agent == "a1"
        assert batch.granules == granules
        assert len(batch) == 2
        assert "batch[2]" in batch.describe()
        # a plain request is its own single granule
        assert granules[0].granules == (granules[0],)

    def test_coalesce_groups_by_endpoint_keeping_order(self):
        a0 = ScanRequest("a1", "S1", "person0")
        b0 = ScanRequest("a2", "S2", "person0")
        a1 = ScanRequest("a1", "S1", "person1")
        dispatches = coalesce_by_endpoint([a0, b0, a1])
        assert len(dispatches) == 2
        batch, single = dispatches
        assert isinstance(batch, BatchScanRequest)
        assert batch.requests == (a0, a1)  # first-seen endpoint order
        assert single is b0  # singletons stay plain requests

    def test_in_process_transport_unpacks_batches(self, cluster_fsm):
        fsm = cluster_fsm
        transport = InProcessTransport(fsm._agents, fsm._schema_host)
        granules = (
            ScanRequest("agent1", "S1", "person0"),
            ScanRequest("agent1", "S1", "person1"),
        )
        result = transport.perform(BatchScanRequest(granules))
        assert isinstance(result, BatchScanResult)
        expected = [transport.perform(granule) for granule in granules]
        assert [
            [obj.oid for obj in value] for value in result.values
        ] == [[obj.oid for obj in value] for value in expected]
        # the batch result's length is its total item count, so the
        # simulated network's per-item transfer cost stays honest
        assert len(result) == sum(len(value) for value in expected)


class TestHintNeutrality:
    def test_hint_never_changes_request_identity(self):
        plain = ScanRequest("a1", "S1", "person0")
        hinted = ScanRequest(
            "a1", "S1", "person0",
            hint=ScanHint(attributes=("ssn#",), equalities=(("grade", 1),)),
        )
        assert hinted == plain
        assert hash(hinted) == hash(plain)
        assert hinted.cache_key == plain.cache_key

    def test_hints_are_delivered_to_the_transport(self, cluster_fsm):
        runtime, transport = _simulated(cluster_fsm)
        cluster_fsm.query(CLUSTER_QUERY)
        # one hinted granule per agent (the plan prunes person1)
        assert transport.hints == {
            "agent1": 1, "agent2": 1, "agent3": 1, "agent4": 1
        }
        runtime.close()


class TestContributingClasses:
    def test_cluster_query_prunes_the_unrelated_class(self, cluster_fsm):
        integrated = cluster_fsm.integrated
        contributing = contributing_classes(integrated, "person0")
        assert "person0" in contributing
        assert "person1" not in contributing

    def test_genealogy_rules_keep_every_body_class(self):
        fsm = _genealogy_fsm()
        contributing = contributing_classes(fsm.integrated, "uncle")
        # uncle is derived from parent x brother: nothing may be pruned
        assert contributing == {"uncle", "parent", "brother"}

    def test_unknown_class_disables_pruning(self, cluster_fsm):
        integrated = cluster_fsm.integrated
        assert contributing_classes(integrated, "no_such_class") == frozenset(
            integrated.classes
        )

    def test_plan_query_builds_pairs_and_hint(self):
        fsm = _genealogy_fsm()
        query = FederatedQuery.parse(GENEALOGY_QUERY)
        plan = plan_query(fsm.integrated, query, schemas=set(fsm._schema_host))
        assert plan.class_name == "uncle"
        assert plan.pruned == ()
        assert set(plan.pairs) == {
            ("S1", "parent"), ("S1", "brother"), ("S2", "uncle")
        }
        assert plan.hint is not None
        assert "niece_nephew" in plan.hint.attributes
        assert ("niece_nephew", "John") in plan.hint.equalities
        assert plan.allows("uncle") and not plan.allows("no_such_class")
        assert "plan(" in plan.describe()


class TestRoundTripAccounting:
    @pytest.mark.parametrize(
        "builder, query",
        [
            (_genealogy_fsm, GENEALOGY_QUERY),
            (None, CLUSTER_QUERY),  # None → the cluster fixture builder
        ],
        ids=["genealogy", "cluster"],
    )
    def test_planned_round_trips_drop_with_identical_answers(
        self, cluster_builder, builder, query
    ):
        build = builder or cluster_builder
        unplanned_fsm = build()
        unplanned_rt, _ = _simulated(unplanned_fsm, plan=False)
        unplanned_rows = unplanned_fsm.query(query)
        unplanned = unplanned_fsm.last_query_stats

        planned_fsm = build()
        planned_rt, _ = _simulated(planned_fsm, plan=True)
        planned_rows = planned_fsm.query(query)
        planned = planned_fsm.last_query_stats
        try:
            assert _answers(planned_rows) == _answers(unplanned_rows)
            assert unplanned_rows  # a vacuous parity proves nothing
            assert 0 < planned.counter("round_trips") < unplanned.counter(
                "round_trips"
            )
            # unplanned traffic pays one round-trip per granule
            assert unplanned.counter("round_trips") == unplanned.counter(
                "agent_scans"
            )
            assert planned_fsm.runtime.last_plan is not None
        finally:
            planned_rt.close()
            unplanned_rt.close()

    def test_per_agent_round_trip_histogram(self, cluster_builder):
        fsm = cluster_builder()
        runtime, _ = _simulated(fsm, plan=True)
        fsm.query(CLUSTER_QUERY)
        delta = fsm.last_query_stats
        assert set(delta.agent_round_trips) == {
            "agent1", "agent2", "agent3", "agent4"
        }
        assert sum(delta.agent_round_trips.values()) == delta.counter(
            "round_trips"
        )
        assert fsm.runtime_stats().counter("planned_queries") == 1
        runtime.close()

    def test_warm_planned_repeat_scans_nothing(self, cluster_builder):
        fsm = cluster_builder()
        runtime, _ = _simulated(fsm, plan=True)
        cold = _answers(fsm.query(CLUSTER_QUERY))
        warm = _answers(fsm.query(CLUSTER_QUERY))
        assert warm == cold
        delta = fsm.last_query_stats
        assert delta.counter("agent_scans") == 0
        assert delta.counter("round_trips") == 0
        runtime.close()


class TestBatchFaultAccounting:
    def test_failed_batch_names_exactly_the_lost_granules(self):
        fsm = _genealogy_fsm()
        runtime, _ = _simulated(
            fsm,
            RuntimePolicy(
                max_retries=0, backoff_base=0.0, failure_policy="partial"
            ),
            per_agent=[("agent-S1", FaultProfile(drop_rate=1.0))],
        )
        rows = fsm.query(GENEALOGY_QUERY)
        assert rows == []  # uncle needs S1's parent and brother facts
        stats = fsm.last_query_stats
        # the dead agent's batch carried two granules; both are named
        lost = set(stats.lost_granules)
        assert lost == {
            ScanRequest("agent-S1", "S1", "parent").describe(),
            ScanRequest("agent-S1", "S1", "brother").describe(),
        }
        assert stats.counter("lost_granules") == 2
        assert stats.counter("partial_results") == 2
        warnings = runtime.drain_warnings()
        assert any("agent-S1" in warning for warning in warnings)
        runtime.close()

    def test_error_policy_still_raises_on_batch_failure(self):
        fsm = _genealogy_fsm()
        runtime, _ = _simulated(
            fsm,
            RuntimePolicy(
                max_retries=0, backoff_base=0.0, failure_policy="error"
            ),
            per_agent=[("agent-S1", FaultProfile(drop_rate=1.0))],
        )
        with pytest.raises(PartialResultError):
            fsm.query(GENEALOGY_QUERY)
        runtime.close()

    def test_surviving_agents_still_answer(self, cluster_builder):
        fsm = cluster_builder()
        runtime, _ = _simulated(
            fsm,
            RuntimePolicy(
                max_retries=0, backoff_base=0.0, failure_policy="partial"
            ),
            per_agent=[("agent3", FaultProfile(drop_rate=1.0))],
        )
        answers = _answers(fsm.query(CLUSTER_QUERY))
        assert answers and not any(a.startswith("S3-") for a in answers)
        stats = fsm.last_query_stats
        assert stats.counter("lost_granules") == 1
        assert all("agent3" in name for name in stats.lost_granules)
        runtime.close()


class TestBatchedCacheParity:
    """The bugfix the ISSUE pins: batched results must land in the cache
    per granule under the same keys an unplanned run would use, and
    invalidation must treat batched-origin entries identically."""

    def test_cache_keys_match_the_unplanned_run(self, cluster_builder):
        planned = cluster_builder()
        planned_rt, _ = _simulated(planned, plan=True)
        planned.query(CLUSTER_QUERY)

        unplanned = cluster_builder()
        unplanned_rt, _ = _simulated(unplanned, plan=False)
        unplanned.query(CLUSTER_QUERY)

        planned_keys = set(planned_rt.cache._granules)
        unplanned_keys = set(unplanned_rt.cache._granules)
        # pruning may shrink the planned key set, but every planned key
        # must be a key the unplanned run would have written — no batch
        # ever reaches the cache as a single entry
        assert planned_keys
        assert planned_keys <= unplanned_keys
        for key in planned_keys:
            assert len(key) in (3, 4)  # the existing key shapes only
        planned_rt.close()
        unplanned_rt.close()

    def test_invalidate_evicts_batched_origin_entries(self, cluster_builder):
        fsm = cluster_builder()
        runtime, _ = _simulated(fsm, plan=True)
        fsm.query(CLUSTER_QUERY)
        assert runtime.invalidate(agent="agent1") == 1
        fsm.query(CLUSTER_QUERY)
        delta = fsm.last_query_stats
        # only the invalidated agent's granule rescans
        assert set(delta.agent_scans) == {"agent1"}
        assert delta.counter("agent_scans") == 1
        runtime.close()

    def test_bump_generation_evicts_everything_batched(self, cluster_builder):
        fsm = cluster_builder()
        runtime, _ = _simulated(fsm, plan=True)
        cold = _answers(fsm.query(CLUSTER_QUERY))
        cold_scans = fsm.last_query_stats.counter("agent_scans")
        runtime.bump_generation()
        again = _answers(fsm.query(CLUSTER_QUERY))
        assert again == cold
        assert fsm.last_query_stats.counter("agent_scans") == cold_scans
        runtime.close()

    def test_component_write_is_visible_through_batches(self, cluster_builder):
        fsm = cluster_builder()
        runtime, _ = _simulated(fsm, plan=True)
        before = _answers(fsm.query(CLUSTER_QUERY))
        fsm.database("S1").insert(
            "person0", {"ssn#": "S1-new", "name": "new", "grade": 1}
        )
        after = _answers(fsm.query(CLUSTER_QUERY))
        assert len(after) == len(before) + 1
        assert "S1-new" in after
        runtime.close()
