"""The extent cache: hits, explicit invalidation, generation semantics."""

import pytest

from repro.federation import FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.runtime import (
    ExtentCache,
    FederationRuntime,
    MISS,
    RuntimePolicy,
    ScanRequest,
)


@pytest.fixture
def runtime():
    schema = Schema("S1")
    schema.add_class(ClassDef("person").attr("ssn#"))
    database = ObjectDatabase(schema, agent="h1")
    database.insert("person", {"ssn#": "1"})
    agent = FSMAgent("a1")
    agent.host_object_database(database)
    return FederationRuntime(agents={"a1": agent}), agent, database


class TestCachePrimitives:
    def test_miss_then_hit(self):
        cache = ExtentCache()
        request = ScanRequest("a1", "S1", "person")
        assert cache.get(request) is MISS
        cache.put(request, [1, 2])
        assert cache.get(request) == [1, 2]
        assert cache.hits == 1 and cache.misses == 1

    def test_results_are_copied(self):
        cache = ExtentCache()
        request = ScanRequest("a1", "S1", "person")
        cache.put(request, [1])
        cache.get(request).append(2)
        assert cache.get(request) == [1]

    def test_variants_share_a_granule(self):
        cache = ExtentCache()
        direct = ScanRequest("a1", "S1", "person")
        values = ScanRequest("a1", "S1", "person", "value_set", "ssn#")
        cache.put(direct, [1])
        cache.put(values, {"x"})
        assert len(cache) == 2
        assert cache.invalidate(class_name="person") == 1  # one granule
        assert cache.get(direct) is MISS and cache.get(values) is MISS

    def test_explicit_invalidation_by_coordinate(self):
        cache = ExtentCache()
        cache.put(ScanRequest("a1", "S1", "person"), [1])
        cache.put(ScanRequest("a2", "S2", "person"), [2])
        assert cache.invalidate(agent="a1") == 1
        assert cache.get(ScanRequest("a2", "S2", "person")) == [2]
        assert cache.invalidate() == 1  # drop the rest

    def test_bump_generation_invalidates_lazily(self):
        cache = ExtentCache()
        request = ScanRequest("a1", "S1", "person")
        cache.put(request, [1])
        cache.bump_generation()
        assert cache.get(request) is MISS

    def test_source_generation_mismatch_is_a_miss(self):
        cache = ExtentCache()
        request = ScanRequest("a1", "S1", "person")
        cache.put(request, [1], source_generation=7)
        assert cache.get(request, source_generation=7) == [1]
        assert cache.get(request, source_generation=8) is MISS


class TestRuntimeCaching:
    def test_warm_fetch_skips_the_agent(self, runtime):
        rt, agent, _ = runtime
        first = rt.direct_extent("S1", "person")
        count_after_cold = agent.access_count
        second = rt.direct_extent("S1", "person")
        assert [i.oid for i in first] == [i.oid for i in second]
        assert agent.access_count == count_after_cold  # zero warm scans
        stats = rt.stats()
        assert stats.counter("cache_hits") == 1
        assert stats.counter("cache_misses") == 1

    def test_component_write_invalidates_via_generation(self, runtime):
        rt, agent, database = runtime
        assert len(rt.direct_extent("S1", "person")) == 1
        database.insert("person", {"ssn#": "2"})
        assert len(rt.direct_extent("S1", "person")) == 2  # refetched
        assert agent.access_count == 2

    def test_explicit_invalidation_forces_rescan(self, runtime):
        rt, agent, _ = runtime
        rt.direct_extent("S1", "person")
        assert rt.invalidate(schema="S1") == 1
        rt.direct_extent("S1", "person")
        assert agent.access_count == 2

    def test_cache_disabled_policy_always_scans(self):
        schema = Schema("S1")
        schema.add_class(ClassDef("person").attr("ssn#"))
        database = ObjectDatabase(schema, agent="h1")
        database.insert("person", {"ssn#": "1"})
        agent = FSMAgent("a1")
        agent.host_object_database(database)
        rt = FederationRuntime(
            agents={"a1": agent}, policy=RuntimePolicy(cache_enabled=False)
        )
        rt.direct_extent("S1", "person")
        rt.direct_extent("S1", "person")
        assert agent.access_count == 2
        assert rt.stats().counter("cache_hits") == 0
