"""The extent cache: hits, explicit invalidation, generation semantics."""

import pytest

from repro.federation import FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.runtime import (
    ExtentCache,
    FederationRuntime,
    MISS,
    RuntimePolicy,
    ScanRequest,
    ShardPlan,
)


@pytest.fixture
def runtime():
    schema = Schema("S1")
    schema.add_class(ClassDef("person").attr("ssn#"))
    database = ObjectDatabase(schema, agent="h1")
    database.insert("person", {"ssn#": "1"})
    agent = FSMAgent("a1")
    agent.host_object_database(database)
    return FederationRuntime(agents={"a1": agent}), agent, database


class TestCachePrimitives:
    def test_miss_then_hit(self):
        cache = ExtentCache()
        request = ScanRequest("a1", "S1", "person")
        assert cache.get(request) is MISS
        cache.put(request, [1, 2])
        assert cache.get(request) == [1, 2]
        assert cache.hits == 1 and cache.misses == 1

    def test_results_are_copied(self):
        cache = ExtentCache()
        request = ScanRequest("a1", "S1", "person")
        cache.put(request, [1])
        cache.get(request).append(2)
        assert cache.get(request) == [1]

    def test_mapping_results_are_copied(self):
        """Regression: dict-shaped values used to be returned by
        reference, letting callers mutate the cached entry in place."""
        cache = ExtentCache()
        request = ScanRequest("a1", "S1", "person")
        cache.put(request, {"ann": 1})
        returned = cache.get(request)
        returned["bob"] = 2
        returned["ann"] = 99
        assert cache.get(request) == {"ann": 1}

    def test_stale_eviction_prunes_empty_granules(self):
        """Regression: evicting the last stale variant stranded the
        emptied granule dict in ``_granules`` forever."""
        cache = ExtentCache()
        request = ScanRequest("a1", "S1", "person")
        cache.put(request, [1], source_generation=1)
        assert cache.get(request, source_generation=2) is MISS  # evicts
        assert request.cache_key not in cache._granules
        # a variant surviving next to the stale one keeps its granule
        values = ScanRequest("a1", "S1", "person", "value_set", "ssn#")
        cache.put(request, [1], source_generation=1)
        cache.put(values, {"x"}, source_generation=1)
        assert cache.get(request, source_generation=2) is MISS
        assert cache.get(values, source_generation=1) == {"x"}
        assert request.cache_key in cache._granules

    def test_variants_share_a_granule(self):
        cache = ExtentCache()
        direct = ScanRequest("a1", "S1", "person")
        values = ScanRequest("a1", "S1", "person", "value_set", "ssn#")
        cache.put(direct, [1])
        cache.put(values, {"x"})
        assert len(cache) == 2
        assert cache.invalidate(class_name="person") == 1  # one granule
        assert cache.get(direct) is MISS and cache.get(values) is MISS

    def test_explicit_invalidation_by_coordinate(self):
        cache = ExtentCache()
        cache.put(ScanRequest("a1", "S1", "person"), [1])
        cache.put(ScanRequest("a2", "S2", "person"), [2])
        assert cache.invalidate(agent="a1") == 1
        assert cache.get(ScanRequest("a2", "S2", "person")) == [2]
        assert cache.invalidate() == 1  # drop the rest

    def test_bump_generation_invalidates_lazily(self):
        cache = ExtentCache()
        request = ScanRequest("a1", "S1", "person")
        cache.put(request, [1])
        cache.bump_generation()
        assert cache.get(request) is MISS

    def test_source_generation_mismatch_is_a_miss(self):
        cache = ExtentCache()
        request = ScanRequest("a1", "S1", "person")
        cache.put(request, [1], source_generation=7)
        assert cache.get(request, source_generation=7) == [1]
        assert cache.get(request, source_generation=8) is MISS


class TestShardGranules:
    """Sharded scans key 4-tuples; no invalidation path may miss them.

    The regression this pins: :meth:`ExtentCache.invalidate` matches on
    the first three key coordinates — it must treat the 3-tuple
    (unsharded) and 4-tuple (sharded) key shapes uniformly instead of
    silently skipping shard granules.
    """

    @staticmethod
    def _sharded_requests(shards=3):
        plan = ShardPlan(shards)
        return plan.split(ScanRequest("a1", "S1", "person"))

    def test_each_shard_is_its_own_granule(self):
        cache = ExtentCache()
        for index, request in enumerate(self._sharded_requests()):
            cache.put(request, [index])
        requests = self._sharded_requests()
        assert [cache.get(r) for r in requests] == [[0], [1], [2]]
        # the unsharded granule of the same class is untouched
        assert cache.get(ScanRequest("a1", "S1", "person")) is MISS

    def test_class_invalidation_evicts_every_shard_granule(self):
        cache = ExtentCache()
        cache.put(ScanRequest("a1", "S1", "person"), ["unsharded"])
        for request in self._sharded_requests():
            cache.put(request, ["slice"])
        # 1 unsharded + 3 shard granules, all matched by the class name
        assert cache.invalidate(class_name="person") == 4
        assert all(cache.get(r) is MISS for r in self._sharded_requests())
        assert cache.get(ScanRequest("a1", "S1", "person")) is MISS

    def test_generation_bump_evicts_every_shard_granule(self):
        cache = ExtentCache()
        requests = self._sharded_requests()
        for request in requests:
            cache.put(request, ["slice"])
        cache.bump_generation()
        assert all(cache.get(r) is MISS for r in requests)

    def test_shard_coordinate_narrows_invalidation(self):
        cache = ExtentCache()
        requests = self._sharded_requests()
        for request in requests:
            cache.put(request, ["slice"])
        assert cache.invalidate(shard=(1, 3)) == 1
        assert cache.get(requests[1]) is MISS
        assert cache.get(requests[0]) == ["slice"]
        assert cache.get(requests[2]) == ["slice"]

    def test_shard_key_carries_plan_kind_and_band(self):
        """Regression: the cache key collapsed the shard coordinate to
        ``(index, of)``, so hash and range plans with equal index/of
        collided — a runtime whose plan changed kind or band served
        stale slices cut under the old plan."""
        logical = ScanRequest("a1", "S1", "person")
        hash_request = ShardPlan(3, "hash").split(logical)[1]
        range_request = ShardPlan(3, "range", band=4).split(logical)[1]
        narrow_band = ShardPlan(3, "range", band=2).split(logical)[1]
        assert len({r.cache_key for r in (hash_request, range_request, narrow_band)}) == 3
        cache = ExtentCache()
        cache.put(hash_request, ["hash slice"])
        assert cache.get(range_request) is MISS
        assert cache.get(narrow_band) is MISS
        assert cache.get(hash_request) == ["hash slice"]

    def test_full_shard_coordinate_narrows_to_one_plan(self):
        """invalidate(shard=...) accepts the legacy ``(index, of)`` pair
        (a prefix across every plan) or the full 4-tuple for one plan."""
        logical = ScanRequest("a1", "S1", "person")
        hash_request = ShardPlan(3, "hash").split(logical)[1]
        range_request = ShardPlan(3, "range").split(logical)[1]
        cache = ExtentCache()
        cache.put(hash_request, ["hash"])
        cache.put(range_request, ["range"])
        assert cache.invalidate(shard=(1, 3, "range", 32)) == 1
        assert cache.get(range_request) is MISS
        assert cache.get(hash_request) == ["hash"]
        cache.put(range_request, ["range"])
        assert cache.invalidate(shard=(1, 3)) == 2  # prefix: both plans

    def test_runtime_generation_bump_forces_full_rescatter(self):
        schema = Schema("S1")
        schema.add_class(ClassDef("person").attr("ssn#"))
        database = ObjectDatabase(schema, agent="h1")
        for index in range(12):
            database.insert("person", {"ssn#": str(index)})
        agent = FSMAgent("a1")
        agent.host_object_database(database)
        rt = FederationRuntime(agents={"a1": agent}, shard_plan=ShardPlan(4))
        cold = {i.oid for i in rt.direct_extent("S1", "person")}
        scans_after_cold = agent.access_count
        warm = {i.oid for i in rt.direct_extent("S1", "person")}
        assert warm == cold
        assert agent.access_count == scans_after_cold  # all granules warm
        rt.bump_generation()
        again = {i.oid for i in rt.direct_extent("S1", "person")}
        assert again == cold
        # every one of the 4 shard granules had to rescan
        assert agent.access_count == scans_after_cold + 4


class TestRuntimeCaching:
    def test_warm_fetch_skips_the_agent(self, runtime):
        rt, agent, _ = runtime
        first = rt.direct_extent("S1", "person")
        count_after_cold = agent.access_count
        second = rt.direct_extent("S1", "person")
        assert [i.oid for i in first] == [i.oid for i in second]
        assert agent.access_count == count_after_cold  # zero warm scans
        stats = rt.stats()
        assert stats.counter("cache_hits") == 1
        assert stats.counter("cache_misses") == 1

    def test_component_write_invalidates_via_generation(self, runtime):
        rt, agent, database = runtime
        assert len(rt.direct_extent("S1", "person")) == 1
        database.insert("person", {"ssn#": "2"})
        assert len(rt.direct_extent("S1", "person")) == 2  # refetched
        assert agent.access_count == 2

    def test_explicit_invalidation_forces_rescan(self, runtime):
        rt, agent, _ = runtime
        rt.direct_extent("S1", "person")
        assert rt.invalidate(schema="S1") == 1
        rt.direct_extent("S1", "person")
        assert agent.access_count == 2

    def test_cache_disabled_policy_always_scans(self):
        schema = Schema("S1")
        schema.add_class(ClassDef("person").attr("ssn#"))
        database = ObjectDatabase(schema, agent="h1")
        database.insert("person", {"ssn#": "1"})
        agent = FSMAgent("a1")
        agent.host_object_database(database)
        rt = FederationRuntime(
            agents={"a1": agent}, policy=RuntimePolicy(cache_enabled=False)
        )
        rt.direct_extent("S1", "person")
        rt.direct_extent("S1", "person")
        assert agent.access_count == 2
        assert rt.stats().counter("cache_hits") == 0
