"""Shared builders for the federation-runtime suite."""

import pytest

from repro.federation import FSM, FSMAgent
from repro.workloads import federated_cluster


def build_cluster_fsm(schemas=4, per_class=5, classes_per_schema=2):
    """An integrated ≥4-agent federation over the cluster workload."""
    built, text, databases = federated_cluster(
        schemas=schemas, per_class=per_class, classes_per_schema=classes_per_schema
    )
    fsm = FSM()
    for index, schema in enumerate(built):
        agent = FSMAgent(f"agent{index + 1}")
        agent.host_object_database(databases[schema.name])
        fsm.register_agent(agent)
    fsm.declare(text)
    fsm.integrate_all()
    return fsm


@pytest.fixture
def cluster_fsm():
    return build_cluster_fsm()


@pytest.fixture
def cluster_builder():
    return build_cluster_fsm
