"""The asyncio executor: shared failure semantics, bounded fan-out, bridge."""

import asyncio

import pytest

from repro.errors import AgentTimeoutError, CircuitOpenError, TransportError
from repro.federation import FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.runtime import (
    AsyncFederationExecutor,
    AsyncInProcessTransport,
    AsyncSimulatedNetworkTransport,
    CircuitBreaker,
    FaultProfile,
    FederationExecutor,
    InProcessTransport,
    RuntimeMetrics,
    RuntimePolicy,
    ScanRequest,
    SimulatedNetworkTransport,
)
from repro.runtime.async_transport import AsyncAgentTransport


def _agents(count=1):
    agents = {}
    for index in range(count):
        schema = Schema(f"S{index + 1}")
        schema.add_class(ClassDef("person").attr("ssn#"))
        database = ObjectDatabase(schema, agent=f"h{index + 1}")
        database.insert("person", {"ssn#": str(index)})
        agent = FSMAgent(f"a{index + 1}")
        agent.host_object_database(database)
        agents[agent.name] = agent
    return agents


def _executor(profile=None, policy=None, breaker=None, agents=None):
    agents = agents or _agents()
    transport = AsyncInProcessTransport(agents)
    if profile is not None:
        simulated = AsyncSimulatedNetworkTransport(transport)
        for name in agents:
            simulated.set_profile(name, profile)
        transport = simulated
    metrics = RuntimeMetrics()

    async def no_sleep(_seconds):
        return None

    executor = AsyncFederationExecutor(
        transport,
        policy or RuntimePolicy(backoff_base=0.0, backoff_max=0.0),
        metrics,
        breaker,
        sleep=no_sleep,
    )
    return executor, metrics, transport


REQUEST = ScanRequest("a1", "S1", "person")


class TestRetries:
    def test_flaky_agent_succeeds_within_budget(self):
        executor, metrics, _ = _executor(
            FaultProfile(fail_times=2),
            RuntimePolicy(max_retries=2, backoff_base=0.0),
        )
        try:
            extent = executor.run_one(REQUEST)
        finally:
            executor.close()
        assert len(extent) == 1
        stats = metrics.snapshot()
        assert stats.counter("retries") == 2
        assert stats.counter("transport_failures") == 2
        assert stats.counter("agent_scans") == 3

    def test_exhausted_retries_raise_last_error(self):
        executor, metrics, _ = _executor(
            FaultProfile(fail_times=10),
            RuntimePolicy(max_retries=1, backoff_base=0.0),
        )
        try:
            with pytest.raises(TransportError, match="injected failure"):
                executor.run_one(REQUEST)
        finally:
            executor.close()
        assert metrics.snapshot().counter("retries") == 1

    def test_backoff_uses_the_shared_policy_schedule(self):
        naps = []

        async def record_nap(seconds):
            naps.append(seconds)

        agents = _agents()
        transport = AsyncSimulatedNetworkTransport(AsyncInProcessTransport(agents))
        transport.set_profile("a1", FaultProfile(fail_times=3))
        executor = AsyncFederationExecutor(
            transport,
            RuntimePolicy(
                max_retries=3,
                backoff_base=0.01,
                backoff_multiplier=2.0,
                backoff_max=1.0,
            ),
            RuntimeMetrics(),
            sleep=record_nap,
        )
        try:
            executor.run_one(REQUEST)
        finally:
            executor.close()
        assert naps == [0.01, 0.02, 0.04]


class TestDeadlines:
    def test_slow_agent_times_out(self):
        executor, metrics, _ = _executor(
            FaultProfile(latency=0.5),
            RuntimePolicy(timeout=0.02, max_retries=0),
        )
        try:
            with pytest.raises(AgentTimeoutError):
                executor.run_one(REQUEST)
        finally:
            executor.close()
        assert metrics.snapshot().counter("timeouts") == 1

    def test_fast_agent_beats_deadline(self):
        executor, _, _ = _executor(policy=RuntimePolicy(timeout=5.0, max_retries=0))
        try:
            assert len(executor.run_one(REQUEST)) == 1
        finally:
            executor.close()


class TestSharedBreaker:
    def test_threaded_trip_fast_fails_the_async_path(self):
        """One CircuitBreaker instance serves both executors at once."""
        breaker = CircuitBreaker(threshold=2, reset_timeout=60.0)
        agents = _agents()

        sync_transport = SimulatedNetworkTransport(InProcessTransport(agents))
        sync_transport.set_profile("a1", FaultProfile(fail_times=10))
        threaded = FederationExecutor(
            sync_transport,
            RuntimePolicy(max_retries=1, backoff_base=0.0),
            RuntimeMetrics(),
            breaker,
            sleep=lambda _t: None,
        )
        with pytest.raises(TransportError):
            threaded.run_one(REQUEST)  # two failures >= threshold: trips

        executor, metrics, _ = _executor(breaker=breaker, agents=agents)
        try:
            with pytest.raises(CircuitOpenError):
                executor.run_one(REQUEST)
        finally:
            executor.close()
        assert metrics.snapshot().counter("circuit_rejections") == 1

    def test_async_trip_fast_fails_the_threaded_path(self):
        breaker = CircuitBreaker(threshold=2, reset_timeout=60.0)
        agents = _agents()
        executor, _, _ = _executor(
            FaultProfile(fail_times=10),
            RuntimePolicy(max_retries=1, backoff_base=0.0),
            breaker=breaker,
            agents=agents,
        )
        try:
            with pytest.raises(TransportError):
                executor.run_one(REQUEST)
        finally:
            executor.close()

        threaded = FederationExecutor(
            InProcessTransport(agents),
            RuntimePolicy(max_retries=0),
            RuntimeMetrics(),
            breaker,
        )
        with pytest.raises(CircuitOpenError):
            threaded.run_one(REQUEST)


class _InflightProbe(AsyncAgentTransport):
    """Counts concurrent in-flight performs to verify the semaphore."""

    def __init__(self, inner):
        self.inner = inner
        self.active = 0
        self.high_water = 0

    def agent_names(self):
        return self.inner.agent_names()

    def agent_for_schema(self, schema_name):
        return self.inner.agent_for_schema(schema_name)

    def generation(self, request):
        return self.inner.generation(request)

    async def perform(self, request):
        self.active += 1
        self.high_water = max(self.high_water, self.active)
        try:
            await asyncio.sleep(0.005)
            return await self.inner.perform(request)
        finally:
            self.active -= 1


class TestFanOut:
    def test_semaphore_bounds_inflight_scans(self):
        agents = _agents(12)
        probe = _InflightProbe(AsyncInProcessTransport(agents))
        executor = AsyncFederationExecutor(
            probe, RuntimePolicy(max_inflight=3), RuntimeMetrics()
        )
        requests = [
            ScanRequest(f"a{i + 1}", f"S{i + 1}", "person") for i in range(12)
        ]
        try:
            outcome = executor.run(requests)
        finally:
            executor.close()
        assert len(outcome.results) == 12
        assert probe.high_water <= 3

    def test_partial_outcome_separates_failures(self):
        agents = _agents(3)
        transport = AsyncSimulatedNetworkTransport(AsyncInProcessTransport(agents))
        transport.set_profile("a2", FaultProfile(fail_times=10))
        executor = AsyncFederationExecutor(
            transport,
            RuntimePolicy(max_retries=0, backoff_base=0.0),
            RuntimeMetrics(),
        )
        requests = [
            ScanRequest(f"a{i + 1}", f"S{i + 1}", "person") for i in range(3)
        ]
        try:
            outcome = executor.run(requests)
        finally:
            executor.close()
        assert outcome.partial
        assert len(outcome.results) == 2
        assert [f.kind for f in outcome.failures] == ["transport"]

    def test_empty_fanout_short_circuits(self):
        executor, _, _ = _executor()
        try:
            outcome = executor.run([])
        finally:
            executor.close()
        assert outcome.results == {} and not outcome.partial

    def test_coroutine_api_composes_with_caller_loops(self):
        """run_async is awaitable from the caller's own event loop."""
        agents = _agents(4)
        executor = AsyncFederationExecutor(
            AsyncInProcessTransport(agents), RuntimePolicy(), RuntimeMetrics()
        )
        requests = [
            ScanRequest(f"a{i + 1}", f"S{i + 1}", "person") for i in range(4)
        ]
        outcome = asyncio.run(executor.run_async(requests))
        assert len(outcome.results) == 4
