"""Half-open probe leasing: breaker liveness under threads + coroutines.

Regression suite for the asyncio wedge: the old breaker marked the
half-open probe with a bare ``probing`` flag, so a probe torn down
between ``allow`` and its ``record_*`` call (coroutine cancellation,
crashed worker) blocked every future probe forever.  The probe is now a
*lease* that expires, plus an explicit :meth:`abandon_probe` release —
and all transitions stay correct when sync and async callers hammer one
instance concurrently.
"""

import asyncio
import threading

from repro.runtime import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _open_breaker(clock, threshold=1, reset=10.0, lease=5.0):
    breaker = CircuitBreaker(
        threshold=threshold, reset_timeout=reset, clock=clock, probe_lease=lease
    )
    for _ in range(threshold):
        breaker.record_failure("a1")
    assert breaker.state("a1") == OPEN
    return breaker


class TestProbeLease:
    def test_single_probe_per_lease_window(self):
        clock = FakeClock()
        breaker = _open_breaker(clock)
        clock.advance(11.0)  # past the reset window: half-open
        assert breaker.state("a1") == HALF_OPEN
        assert breaker.allow("a1")  # the probe
        assert not breaker.allow("a1")  # concurrent caller: rejected

    def test_abandoned_probe_expires_instead_of_wedging(self):
        """The asyncio bug: a probe that never reports must not block forever."""
        clock = FakeClock()
        breaker = _open_breaker(clock, lease=5.0)
        clock.advance(11.0)
        assert breaker.allow("a1")  # probe admitted... and then lost
        assert not breaker.allow("a1")
        clock.advance(6.0)  # lease expired
        assert breaker.allow("a1")  # liveness restored: a fresh probe runs

    def test_abandon_probe_releases_the_slot_immediately(self):
        clock = FakeClock()
        breaker = _open_breaker(clock)
        clock.advance(11.0)
        assert breaker.allow("a1")
        assert not breaker.allow("a1")
        breaker.abandon_probe("a1")  # cancellation handler path
        assert breaker.allow("a1")

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = _open_breaker(clock)
        clock.advance(11.0)
        assert breaker.allow("a1")
        breaker.record_failure("a1")  # failed probe: re-open a full window
        assert breaker.state("a1") == OPEN
        assert not breaker.allow("a1")
        clock.advance(11.0)
        assert breaker.allow("a1")
        breaker.record_success("a1")
        assert breaker.state("a1") == CLOSED
        assert breaker.allow("a1")

    def test_abandon_probe_on_unknown_agent_is_a_noop(self):
        breaker = CircuitBreaker()
        breaker.abandon_probe("ghost")
        assert breaker.allow("ghost")


class TestMixedSyncAsyncHammer:
    def test_one_breaker_survives_threads_and_coroutines(self):
        """Hammer one agent's circuit from 4 threads + 8 coroutines.

        The breaker must neither crash nor deadlock, admit at most one
        live probe per lease, and stay *live*: after the storm a probe
        is admitted and a success closes the circuit.
        """
        breaker = CircuitBreaker(threshold=3, reset_timeout=0.005, probe_lease=0.005)
        iterations = 300
        admitted = []
        admitted_lock = threading.Lock()

        def exercise(step):
            allowed = breaker.allow("a1")
            if allowed:
                with admitted_lock:
                    admitted.append(step)
            # deterministic mix of outcomes, including abandoned probes
            if step % 7 == 0:
                breaker.abandon_probe("a1")
            elif step % 3 == 0:
                breaker.record_success("a1")
            else:
                breaker.record_failure("a1")

        def sync_hammer(offset):
            for step in range(iterations):
                exercise(offset + step)

        async def async_hammer(offset):
            for step in range(iterations):
                exercise(offset + step)
                if step % 16 == 0:
                    await asyncio.sleep(0)

        async def async_storm():
            await asyncio.gather(*(async_hammer(1000 * t) for t in range(8)))

        threads = [
            threading.Thread(target=sync_hammer, args=(10_000 * (t + 1),))
            for t in range(4)
        ]
        async_thread = threading.Thread(target=lambda: asyncio.run(async_storm()))
        for thread in threads + [async_thread]:
            thread.start()
        for thread in threads + [async_thread]:
            thread.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads + [async_thread])
        assert admitted  # the breaker kept admitting work throughout

        # liveness after the storm: force open, wait the window, probe, close
        breaker.reset("a1")
        for _ in range(3):
            breaker.record_failure("a1")
        assert not breaker.allow("a1")
        deadline = threading.Event()
        deadline.wait(0.01)  # sleep past reset_timeout
        assert breaker.allow("a1")
        breaker.record_success("a1")
        assert breaker.state("a1") == CLOSED
