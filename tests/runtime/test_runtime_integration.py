"""End-to-end federation runtime behaviour — the ISSUE acceptance criteria.

A ≥4-agent federation with injected per-call latency must answer global
queries measurably faster through the concurrent executor than through
the sequential path; a repeat with a warm extent cache must perform zero
agent scans; a flaky agent must not change the answer set; and failure
policies must either degrade gracefully or refuse.
"""

import time

import pytest

from repro.core.session import FederationSession
from repro.errors import PartialResultError
from repro.federation import FederatedQuery
from repro.runtime import (
    FaultProfile,
    FederationRuntime,
    InProcessTransport,
    RuntimePolicy,
    SimulatedNetworkTransport,
)
from repro.workloads import federated_cluster

QUERY = "person0() -> ssn#"


def _answers(rows):
    return sorted(row["ssn#"] for row in rows)


def _simulated_runtime(fsm, policy, profile=None, per_agent=(), plan=True):
    transport = SimulatedNetworkTransport(
        InProcessTransport(fsm._agents, fsm._schema_host), profile
    )
    for agent_name, agent_profile in per_agent:
        transport.set_profile(agent_name, agent_profile)
    return fsm.use_runtime(
        runtime=FederationRuntime(transport=transport, policy=policy, plan=plan)
    )


class TestConcurrencySpeedup:
    def test_fan_out_beats_sequential_under_latency(self, cluster_builder):
        """4 agents x 10ms per call: concurrent must win clearly."""
        latency = FaultProfile(latency=0.010)

        # plan=False keeps one round-trip per scan granule — this test
        # measures executor fan-out, not the planner's coalescing win
        def timed_cold_query(policy):
            fsm = cluster_builder()
            _simulated_runtime(fsm, policy, latency, plan=False)
            started = time.perf_counter()
            rows = fsm.query(QUERY)
            return time.perf_counter() - started, rows

        sequential_policy = RuntimePolicy.sequential(cache_enabled=False)
        concurrent_policy = RuntimePolicy(max_workers=8, cache_enabled=False)
        # warm the thread machinery once so neither run pays first-pool cost
        timed_cold_query(concurrent_policy)
        sequential_time, sequential_rows = timed_cold_query(sequential_policy)
        concurrent_time, concurrent_rows = timed_cold_query(concurrent_policy)
        assert _answers(sequential_rows) == _answers(concurrent_rows)
        # 8 scans x 10ms sequentially is >= 80ms; concurrently ~1 round-trip
        assert sequential_time > 0.06
        assert concurrent_time < sequential_time * 0.75


class TestExtentCache:
    def test_warm_repeat_performs_zero_agent_scans(self, cluster_fsm):
        fsm = cluster_fsm
        fsm.use_runtime(RuntimePolicy(max_workers=8))
        cold_rows = fsm.query(QUERY)
        cold = fsm.last_query_stats
        assert cold.counter("agent_scans") > 0
        counts_after_cold = {
            name: fsm.agent(name).access_count for name in ("agent1", "agent2")
        }
        warm_rows = fsm.query(QUERY)
        warm = fsm.last_query_stats
        assert _answers(warm_rows) == _answers(cold_rows)
        # the per-agent access metrics record no scan at all
        assert warm.counter("agent_scans") == 0
        assert warm.agent_scans == {}
        assert warm.counter("cache_hits") == cold.counter("cache_misses")
        for name, count in counts_after_cold.items():
            assert fsm.agent(name).access_count == count

    def test_component_write_is_visible_despite_cache(self, cluster_fsm):
        fsm = cluster_fsm
        fsm.use_runtime(RuntimePolicy())
        before = fsm.query(QUERY)
        fsm.database("S1").insert(
            "person0", {"ssn#": "S1-new", "name": "new", "grade": 1}
        )
        after = fsm.query(QUERY)
        assert len(after) == len(before) + 1
        assert "S1-new" in _answers(after)


class TestFaultTolerance:
    def test_flaky_agent_yields_the_healthy_answer_set(self, cluster_builder):
        healthy = cluster_builder()
        healthy.use_runtime(RuntimePolicy())
        expected = _answers(healthy.query(QUERY))

        flaky = cluster_builder()
        _simulated_runtime(
            flaky,
            RuntimePolicy(max_retries=2, backoff_base=0.0),
            per_agent=[("agent2", FaultProfile(fail_times=2))],
        )
        rows = flaky.query(QUERY)
        assert _answers(rows) == expected
        stats = flaky.last_query_stats
        assert stats.counter("retries") >= 2
        assert stats.counter("transport_failures") >= 2

    def test_dead_agent_partial_policy_degrades_with_warning(self, cluster_builder):
        fsm = cluster_builder()
        runtime = _simulated_runtime(
            fsm,
            RuntimePolicy(max_retries=1, backoff_base=0.0, failure_policy="partial"),
            per_agent=[("agent3", FaultProfile(drop_rate=1.0))],
        )
        rows = fsm.query(QUERY)
        answers = _answers(rows)
        assert answers  # the surviving agents still answer
        assert not any(a.startswith("S3-") for a in answers)
        assert fsm.last_query_stats.counter("partial_results") > 0
        warnings = runtime.drain_warnings()
        assert any("agent3" in w for w in warnings)

    def test_dead_agent_error_policy_refuses(self, cluster_builder):
        fsm = cluster_builder()
        _simulated_runtime(
            fsm,
            RuntimePolicy(max_retries=0, backoff_base=0.0, failure_policy="error"),
            per_agent=[("agent3", FaultProfile(drop_rate=1.0))],
        )
        with pytest.raises(PartialResultError):
            fsm.query(QUERY)

    def test_timeout_partial_policy_drops_the_slow_agent(self, cluster_builder):
        fsm = cluster_builder()
        _simulated_runtime(
            fsm,
            RuntimePolicy(
                timeout=0.03,
                max_retries=0,
                backoff_base=0.0,
                failure_policy="partial",
            ),
            per_agent=[("agent4", FaultProfile(latency=0.5))],
        )
        rows = fsm.query(QUERY)
        answers = _answers(rows)
        assert answers and not any(a.startswith("S4-") for a in answers)
        assert fsm.last_query_stats.counter("timeouts") > 0

    def test_breaker_trip_is_counted_across_queries(self, cluster_builder):
        fsm = cluster_builder()
        # plan=False: the threshold below is sized for one failure per
        # scan granule; coalescing would halve agent1's dispatch count
        _simulated_runtime(
            fsm,
            RuntimePolicy(
                max_retries=0,
                backoff_base=0.0,
                breaker_threshold=2,
                failure_policy="partial",
                cache_enabled=False,
            ),
            per_agent=[("agent1", FaultProfile(drop_rate=1.0))],
            plan=False,
        )
        fsm.query(QUERY)
        fsm.query(QUERY)
        stats = fsm.runtime_stats()
        assert stats.counter("breaker_trips") >= 1
        assert stats.counter("circuit_rejections") >= 1


class TestAppendixBThroughRuntime:
    def test_top_down_agrees_and_caches(self, cluster_fsm):
        fsm = cluster_fsm
        fsm.use_runtime(RuntimePolicy())
        bottom_up = _answers(fsm.query(QUERY))
        query = FederatedQuery.parse(QUERY)
        top_down = _answers(query.run(fsm.appendix_b()))
        assert top_down == bottom_up
        # Appendix B fetches full extents; repeats hit the cache too
        before = fsm.runtime_stats()
        query.run(fsm.appendix_b())
        delta = fsm.runtime_stats() - before
        assert delta.counter("cache_hits") > 0

    def test_autonomy_property_still_observable(self, cluster_fsm):
        fsm = cluster_fsm
        fsm.use_runtime(RuntimePolicy())
        FederatedQuery.parse(QUERY).run(fsm.appendix_b())
        agent = fsm.agent("agent1")
        assert agent.access_count > 0
        assert agent.accessed_classes <= {("S1", "person0"), ("S1", "person1")}
        # and the runtime histogram saw every agent
        scans = fsm.runtime_stats().agent_scans
        assert set(scans) == {"agent1", "agent2", "agent3", "agent4"}


class TestSessionSurface:
    def test_session_enable_runtime_and_stats(self):
        built, text, databases = federated_cluster(schemas=4, per_class=3)
        session = FederationSession()
        for schema in built:
            session.add_database(databases[schema.name])
        session.declare(text)
        session.integrate()
        assert session.runtime_stats() is None
        session.enable_runtime(RuntimePolicy(max_workers=4))
        rows = session.query(QUERY)
        assert len(rows) == 4 * 3
        assert session.last_query_stats.counter("agent_scans") > 0
        assert session.runtime_stats().counter("requests") > 0
        assert session.runtime is session.fsm.runtime
