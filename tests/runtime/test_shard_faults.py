"""Partial shard failure: exact reporting, policy split, no duplicates.

Fault profiles target single shard endpoints (``agent2#1/3``) behind the
simulated network transports, killing k of N shards while their siblings
stay healthy.  The ERROR policy must refuse; the PARTIAL policy must
serve the surviving slices and name *exactly* the missing shard ids in
``RuntimeStats.missing_shards``; and a shard that succeeds on retry —
after an injected failure or a timed-out first attempt — must never
duplicate a fact in the merged answer.
"""

import asyncio
import threading
import time

import pytest

from repro.errors import PartialResultError
from repro.runtime import (
    AgentTransport,
    AsyncAgentTransport,
    AsyncInProcessTransport,
    FaultProfile,
    FederationRuntime,
    InProcessTransport,
    RuntimePolicy,
    ShardPlan,
    SimulatedNetworkTransport,
)
from repro.runtime.async_transport import AsyncSimulatedNetworkTransport

QUERY = "person0() -> ssn#"
PLAN = ShardPlan(3)
DEAD = ("#1/3", "#2/3")  # shard indexes 1 and 2 of agent2


def _answers(rows):
    return sorted(row["ssn#"] for row in rows)


def _attach(fsm, policy, mode="threaded", per_endpoint=(), plan=PLAN):
    if mode == "async":
        transport = AsyncSimulatedNetworkTransport(
            AsyncInProcessTransport(fsm._agents, fsm._schema_host)
        )
    else:
        transport = SimulatedNetworkTransport(
            InProcessTransport(fsm._agents, fsm._schema_host)
        )
    for endpoint, profile in per_endpoint:
        transport.set_profile(endpoint, profile)
    # planner off: this suite's shard-loss expectations are sized against
    # the unplanned one-granule-per-class traffic (the planner would prune
    # person1 and coalesce shard granules); planned-path fault reporting
    # is covered in test_planner.py / test_planner_parity.py
    runtime = FederationRuntime(
        transport=transport, policy=policy, mode=mode, shard_plan=plan,
        plan=False,
    )
    fsm.use_runtime(runtime=runtime)
    return runtime


def _expected_with_dead_shards(fsm, dead_indexes):
    """Baseline answers minus the S2 facts the dead shards own."""
    healthy = sorted(
        obj.get("ssn#")
        for name in fsm.schema_names()
        for obj in fsm.database(name).direct_extent("person0")
        if not (name == "S2" and PLAN.shard_of(obj.oid) in dead_indexes)
    )
    return healthy


class TestPartialPolicy:
    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_reports_exactly_the_missing_shard_ids(self, cluster_builder, mode):
        fsm = cluster_builder()
        dead = [f"agent2{suffix}" for suffix in DEAD]
        runtime = _attach(
            fsm,
            RuntimePolicy(max_retries=0, backoff_base=0.0, failure_policy="partial"),
            mode=mode,
            per_endpoint=[(name, FaultProfile(drop_rate=1.0)) for name in dead],
        )
        try:
            rows = fsm.query(QUERY)
            assert _answers(rows) == _expected_with_dead_shards(fsm, {1, 2})
            stats = fsm.last_query_stats
            # exactly the killed endpoints, nothing else
            assert set(stats.missing_shards) == set(dead)
            # both person0 and person1 scans of S2 lost those slices
            assert all(count == 2 for count in stats.missing_shards.values())
            assert stats.counter("missing_shards") == 4
            assert stats.counter("partial_results") > 0
            warnings = runtime.drain_warnings()
            assert any("missing shard(s) 1, 2" in w for w in warnings)
        finally:
            runtime.close()

    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_healthy_shards_report_nothing(self, cluster_builder, mode):
        fsm = cluster_builder()
        runtime = _attach(
            fsm, RuntimePolicy(failure_policy="partial"), mode=mode
        )
        try:
            fsm.query(QUERY)
            assert fsm.last_query_stats.missing_shards == {}
            assert fsm.last_query_stats.counter("missing_shards") == 0
        finally:
            runtime.close()


class TestErrorPolicy:
    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_one_dead_shard_refuses_the_query(self, cluster_builder, mode):
        fsm = cluster_builder()
        runtime = _attach(
            fsm,
            RuntimePolicy(max_retries=0, backoff_base=0.0, failure_policy="error"),
            mode=mode,
            per_endpoint=[("agent3#0/3", FaultProfile(drop_rate=1.0))],
        )
        try:
            with pytest.raises(PartialResultError) as excinfo:
                fsm.query(QUERY)
            assert "agent3#0/3" in str(excinfo.value)
        finally:
            runtime.close()


class TestRetryDedup:
    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_flaky_shard_retry_adds_no_duplicates(self, cluster_builder, mode):
        baseline = cluster_builder()
        baseline.use_runtime(RuntimePolicy())
        expected = _answers(baseline.query(QUERY))

        fsm = cluster_builder()
        runtime = _attach(
            fsm,
            RuntimePolicy(max_retries=2, backoff_base=0.0),
            mode=mode,
            per_endpoint=[("agent2#1/3", FaultProfile(fail_times=2))],
        )
        try:
            rows = fsm.query(QUERY)
            # sorted-list equality catches duplicates, not just set parity
            assert _answers(rows) == expected
            assert fsm.last_query_stats.counter("retries") >= 2
            assert fsm.last_query_stats.missing_shards == {}
        finally:
            runtime.close()

    def test_timed_out_shard_retry_adds_no_duplicates_threaded(
        self, cluster_builder
    ):
        baseline = cluster_builder()
        baseline.use_runtime(RuntimePolicy())
        expected = _answers(baseline.query(QUERY))

        fsm = cluster_builder()
        inner = InProcessTransport(fsm._agents, fsm._schema_host)
        slow_once = _SlowFirstAttemptTransport(inner, "agent2#0/3", delay=0.4)
        runtime = FederationRuntime(
            transport=slow_once,
            policy=RuntimePolicy(timeout=0.05, max_retries=1, backoff_base=0.0),
            shard_plan=PLAN,
        )
        fsm.use_runtime(runtime=runtime)
        rows = fsm.query(QUERY)
        assert _answers(rows) == expected
        stats = fsm.last_query_stats
        assert stats.counter("timeouts") >= 1
        assert stats.missing_shards == {}

    def test_timed_out_shard_retry_adds_no_duplicates_async(self, cluster_builder):
        baseline = cluster_builder()
        baseline.use_runtime(RuntimePolicy())
        expected = _answers(baseline.query(QUERY))

        fsm = cluster_builder()
        inner = AsyncInProcessTransport(fsm._agents, fsm._schema_host)
        slow_once = _AsyncSlowFirstAttemptTransport(inner, "agent2#0/3", delay=0.4)
        runtime = FederationRuntime(
            transport=slow_once,
            policy=RuntimePolicy(timeout=0.05, max_retries=1, backoff_base=0.0),
            mode="async",
            shard_plan=PLAN,
        )
        fsm.use_runtime(runtime=runtime)
        try:
            rows = fsm.query(QUERY)
            assert _answers(rows) == expected
            stats = fsm.last_query_stats
            assert stats.counter("timeouts") >= 1
            assert stats.missing_shards == {}
        finally:
            runtime.close()


class _SlowFirstAttemptTransport(AgentTransport):
    """Delegate transport whose target endpoint stalls on its first call.

    The first attempt overruns any sub-*delay* policy timeout and is
    abandoned; the retry answers promptly — the "slow network burp"
    the dedup property must survive.
    """

    def __init__(self, inner, endpoint, delay):
        self._inner = inner
        self._endpoint = endpoint
        self._delay = delay
        self._calls = 0
        self._lock = threading.Lock()

    def agent_names(self):
        return self._inner.agent_names()

    def agent_for_schema(self, schema_name):
        return self._inner.agent_for_schema(schema_name)

    def generation(self, request):
        return self._inner.generation(request)

    def perform(self, request):
        if request.endpoint == self._endpoint:
            with self._lock:
                self._calls += 1
                first = self._calls == 1
            if first:
                time.sleep(self._delay)
        return self._inner.perform(request)


class _AsyncSlowFirstAttemptTransport(AsyncAgentTransport):
    """Coroutine twin of :class:`_SlowFirstAttemptTransport`."""

    def __init__(self, inner, endpoint, delay):
        self._inner = inner
        self._endpoint = endpoint
        self._delay = delay
        self._calls = 0
        self._lock = threading.Lock()

    def agent_names(self):
        return self._inner.agent_names()

    def agent_for_schema(self, schema_name):
        return self._inner.agent_for_schema(schema_name)

    def generation(self, request):
        return self._inner.generation(request)

    async def perform(self, request):
        if request.endpoint == self._endpoint:
            with self._lock:
                self._calls += 1
                first = self._calls == 1
            if first:
                await asyncio.sleep(self._delay)
        return await self._inner.perform(request)
