"""The columnar codec: tuples-of-arrays extents must be lossless.

The multiprocess data plane ships every scan result across a process
boundary as a :class:`ColumnarExtent`; any value the §3 pipeline can
put on an instance — OID references, multivalued frozenset fills,
``TripleMapping``/``LinearMapping`` translations, NULL fills for
unmatched fuzzy values, nested instances — must survive
``from_instances`` → pickle → ``to_instances`` bit-for-bit, and the
array-level shard merge must agree with the per-instance merge.
"""

import datetime
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ShardMergeError
from repro.model.instances import ObjectInstance
from repro.model.oids import OID
from repro.runtime.columnar import ColumnarExtent, merge_columnar
from repro.runtime.sharding import merge_shard_values
from repro.workloads import build_memory_databases, generate_source_federation

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

oids = st.builds(
    OID,
    agent=st.sampled_from(["agent1", "agent2"]),
    system=st.sampled_from(["pyoodb", "relstore"]),
    database=st.sampled_from(["S1", "S2", "S3"]),
    relation=st.sampled_from(["person", "visit"]),
    number=st.integers(1, 9_999),
)

primitives = st.one_of(
    st.none(),
    st.integers(-1_000, 1_000),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=8),
    st.booleans(),
    st.dates(),
)

#: what set_attribute may store: primitives, OID refs, or multivalued
#: fills (lists/sets are coerced to frozenset on the way in)
attribute_values = st.one_of(
    primitives,
    oids,
    st.frozensets(st.one_of(primitives, oids), max_size=4),
    st.lists(st.integers(0, 9), max_size=3),
)

aggregation_values = st.one_of(st.none(), oids, st.frozensets(oids, max_size=3))


@st.composite
def instances(draw, allow_nested=True):
    value = attribute_values
    if allow_nested:
        value = st.one_of(value, instances(allow_nested=False))
    attributes = draw(
        st.dictionaries(st.sampled_from(["a", "b", "c", "d"]), value, max_size=4)
    )
    aggregations = draw(
        st.dictionaries(st.sampled_from(["r", "s"]), aggregation_values, max_size=2)
    )
    return ObjectInstance(
        draw(oids),
        draw(st.sampled_from(["person", "visit", "stock"])),
        attributes,
        aggregations,
    )


extents = st.lists(instances(), max_size=12)


class TestRoundTrip:
    @settings(**_SETTINGS)
    @given(extent=extents)
    def test_encode_decode_is_lossless(self, extent):
        encoded = ColumnarExtent.from_instances(extent)
        assert len(encoded) == len(extent)
        assert encoded.item_count == len(extent)
        decoded = encoded.to_instances()
        assert decoded == extent
        # attribute/aggregation dicts must match exactly: a NULL fill
        # (stored None) is not the same instance as an absent attribute
        for original, copy in zip(extent, decoded):
            assert copy.attributes == original.attributes
            assert copy.aggregations == original.aggregations
            assert copy.oid == original.oid

    @settings(**_SETTINGS)
    @given(extent=extents)
    def test_pickle_round_trip(self, extent):
        encoded = ColumnarExtent.from_instances(extent)
        revived = pickle.loads(pickle.dumps(encoded))
        assert revived.to_instances() == extent
        assert list(revived.oid_keys()) == list(encoded.oid_keys())

    def test_null_fill_differs_from_absent(self):
        oid = OID("agent1", "pyoodb", "S1", "person", 1)
        filled = ObjectInstance(oid, "person", {"name": None})
        bare = ObjectInstance(OID("agent1", "pyoodb", "S1", "person", 2), "person")
        decoded = ColumnarExtent.from_instances([filled, bare]).to_instances()
        assert "name" in decoded[0].attributes
        assert decoded[0].get("name") is None
        assert "name" not in decoded[1].attributes

    def test_heterogeneous_columns_pad_with_absent(self):
        # instances seen *after* a column first appears must not inherit it
        first = ObjectInstance(
            OID("agent1", "pyoodb", "S1", "person", 1), "person", {"a": 1}
        )
        second = ObjectInstance(
            OID("agent1", "pyoodb", "S1", "person", 2), "person", {"b": 2}
        )
        decoded = ColumnarExtent.from_instances([first, second]).to_instances()
        assert decoded == [first, second]
        assert "a" not in decoded[1].attributes
        assert "b" not in decoded[0].attributes

    def test_date_and_frozenset_of_oids_survive(self):
        target = OID("agent2", "pyoodb", "S2", "visit", 7)
        instance = ObjectInstance(
            OID("agent1", "pyoodb", "S1", "person", 1),
            "person",
            {"born": datetime.date(1999, 8, 7), "codes": frozenset({"x", "y"})},
            {"visits": [target]},
        )
        revived = pickle.loads(
            pickle.dumps(ColumnarExtent.from_instances([instance]))
        ).to_instances()[0]
        assert revived == instance
        assert revived.get("visits") == frozenset({target})


class TestMappedWorkloadParity:
    """Real §3 pipeline output: TripleMapping (fuzzy ``"L3"`` → 3),
    LinearMapping (basis points → level) and default NULL fills."""

    def test_source_extents_round_trip(self):
        dataset = generate_source_federation(
            people_per_schema=6, records_per_person=2, seed=3
        )
        databases = build_memory_databases(dataset)
        checked = 0
        for database in databases.values():
            for class_name in database.schema.class_names:
                extent = database.extent(class_name)
                encoded = ColumnarExtent.from_instances(extent)
                assert pickle.loads(pickle.dumps(encoded)).to_instances() == extent
                checked += len(extent)
        assert checked  # a vacuous parity proves nothing

    def test_mapped_levels_survive_encoding(self):
        dataset = generate_source_federation(
            people_per_schema=4, records_per_person=1, seed=5
        )
        databases = build_memory_databases(dataset)
        for schema in ("hospital", "market"):
            extent = databases[schema].extent("person")
            decoded = ColumnarExtent.from_instances(extent).to_instances()
            levels = [instance.get("level") for instance in decoded]
            assert levels == [instance.get("level") for instance in extent]
            assert all(isinstance(level, int) for level in levels)


class TestMergeColumnar:
    @settings(**_SETTINGS)
    @given(extent=extents, cuts=st.lists(st.integers(0, 12), max_size=3))
    def test_array_merge_matches_instance_merge(self, extent, cuts):
        # slice the extent at arbitrary cut points, overlapping slices
        # included — the merge must reproduce first-occurrence dedup
        bounds = sorted({min(cut, len(extent)) for cut in cuts})
        slices, start = [], 0
        for bound in bounds + [len(extent)]:
            slices.append(extent[start:bound])
            start = bound
        slices.append(extent[: len(extent) // 2])  # deliberate overlap
        merged = merge_columnar(
            [ColumnarExtent.from_instances(piece) for piece in slices]
        )
        assert merged.to_instances() == merge_shard_values(
            "extent", [list(piece) for piece in slices]
        )

    def test_merge_dedups_across_slices(self):
        oid = OID("agent1", "pyoodb", "S1", "person", 1)
        instance = ObjectInstance(oid, "person", {"a": 1})
        other = ObjectInstance(
            OID("agent1", "pyoodb", "S1", "person", 2), "person", {"a": 2}
        )
        merged = merge_columnar(
            [
                ColumnarExtent.from_instances([instance]),
                ColumnarExtent.from_instances([instance, other]),
            ]
        )
        assert merged.to_instances() == [instance, other]

    def test_merge_shard_values_folds_columnar_slices(self):
        instance = ObjectInstance(
            OID("agent1", "pyoodb", "S1", "person", 1), "person", {"a": 1}
        )
        merged = merge_shard_values(
            "extent", [ColumnarExtent.from_instances([instance])]
        )
        assert isinstance(merged, ColumnarExtent)
        assert merged.to_instances() == [instance]


class TestMergeShardValuesOids:
    """Satellite regression: the old merge keyed on
    ``getattr(instance, "oid", instance)`` — an OID-less record was
    silently deduplicated *by its own value* (or crashed unhashable);
    now the merge refuses loudly."""

    def test_oidless_records_raise_instead_of_silently_deduping(self):
        class Record:
            def __init__(self, payload):
                self.payload = payload

            def __hash__(self):
                return 0  # every record collides: the old code dropped these

            def __eq__(self, other):
                return isinstance(other, Record)

        first, second = Record("from-shard-0"), Record("from-shard-1")
        with pytest.raises(ShardMergeError) as caught:
            merge_shard_values("extent", [[first], [second]])
        assert "oid" in str(caught.value)
        assert caught.value.op == "extent"

    def test_unhashable_oidless_records_raise_the_typed_error(self):
        # pre-fix this path died on TypeError: unhashable type 'dict'
        with pytest.raises(ShardMergeError):
            merge_shard_values("direct_extent", [[{"ssn": 1}], [{"ssn": 2}]])

    def test_instances_with_oids_still_merge(self):
        first = ObjectInstance(
            OID("agent1", "pyoodb", "S1", "person", 1), "person", {"a": 1}
        )
        second = ObjectInstance(
            OID("agent1", "pyoodb", "S1", "person", 2), "person", {"a": 2}
        )
        assert merge_shard_values("extent", [[first], [second], [first]]) == [
            first,
            second,
        ]

    def test_value_set_merge_needs_no_oids(self):
        assert merge_shard_values("value_set", [{1, 2}, {2, 3}]) == {1, 2, 3}
