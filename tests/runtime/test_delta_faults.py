"""Fault injection on the delta feed: corruption must never go stale.

A transport that drops, duplicates or reorders feed entries hands the
cache a chain that cannot certify freshness.  The required behaviour is
always the targeted-rescan fallback — evict exactly the affected
granules, name them in the stats, rescan on the next query — and
**never** a silently stale answer or a full generation bump.
"""

import pytest

from repro.runtime import (
    FederationRuntime,
    InProcessTransport,
    RuntimePolicy,
)
from repro.runtime.deltas import DeltaReply
from repro.runtime.transport import AgentTransport
from repro.workloads import (
    build_memory_databases,
    generate_source_federation,
    source_fsm,
)

FAULTS = ("dropped", "duplicated", "reordered")


class CorruptingTransport(AgentTransport):
    """Delegate everything; mangle multi-link ``changes`` chains."""

    def __init__(self, inner, fault=None):
        self._inner = inner
        self.fault = fault
        self.corrupted = 0

    def agent_names(self):
        return self._inner.agent_names()

    def agent_for_schema(self, schema_name):
        return self._inner.agent_for_schema(schema_name)

    def generation(self, request):
        return self._inner.generation(request)

    def perform(self, request):
        return self._inner.perform(request)

    def changes(self, request, since):
        reply = self._inner.changes(request, since)
        if (
            self.fault is None
            or reply is None
            or reply.chain is None
            or len(reply.chain) < 2
        ):
            return reply
        chain = list(reply.chain)
        if self.fault == "dropped":
            del chain[0]
        elif self.fault == "duplicated":
            chain.insert(1, chain[0])
        elif self.fault == "reordered":
            chain[0], chain[1] = chain[1], chain[0]
        self.corrupted += 1
        return DeltaReply(tuple(chain))


def _federation(fault):
    dataset = generate_source_federation(
        people_per_schema=5, records_per_person=1, seed=13,
        schemas=("university", "market"),
    )
    databases = build_memory_databases(dataset)
    fsm = source_fsm(databases, dataset.assertions)
    fsm.integrate_all()
    transport = CorruptingTransport(
        InProcessTransport(fsm._agents, fsm._schema_host), fault
    )
    runtime = FederationRuntime(transport=transport, policy=RuntimePolicy())
    fsm.use_runtime(runtime=runtime)
    return dataset, databases, fsm, transport, runtime


def _two_inserts(databases):
    """Two observed writes → the pending chain holds two version steps."""
    databases["market"].adapter.insert(
        "person",
        {"ssn": "flt-a", "name": "fa", "level_bp": 100, "sector": "s0"},
    )
    databases["market"].adapter.insert(
        "person",
        {"ssn": "flt-b", "name": "fb", "level_bp": 200, "sector": "s1"},
    )


class TestCorruptedChains:
    @pytest.mark.parametrize("fault", FAULTS)
    def test_corruption_falls_back_and_never_serves_stale(self, fault):
        _, databases, fsm, transport, runtime = _federation(fault)
        try:
            query = "person() -> ssn"
            before = {row["ssn"] for row in fsm.query(query)}
            _two_inserts(databases)
            after = {row["ssn"] for row in fsm.query(query)}
            # the corrupted chain was seen and rejected: answers are
            # fresh because the granule was rescanned, not patched
            assert transport.corrupted > 0
            assert after == before | {"flt-a", "flt-b"}
            stats = fsm.last_query_stats
            assert stats.counter("granules_patched") == 0
            assert stats.counter("agent_scans") > 0
            assert stats.counter("fallback_invalidations") > 0
        finally:
            runtime.close()

    @pytest.mark.parametrize("fault", FAULTS)
    def test_fallback_names_the_exact_granules(self, fault):
        _, databases, fsm, transport, runtime = _federation(fault)
        try:
            query = "person() -> ssn"
            fsm.query(query)
            _two_inserts(databases)
            fsm.query(query)
            evicted = fsm.last_query_stats.fallback_invalidations
            assert evicted  # the histogram, not just the counter
            # only the written component's granules were touched, and
            # they are named in ScanRequest.describe vocabulary
            assert all("agent-market:market." in name for name in evicted)
            assert any(name.endswith(":market.person)") for name in evicted)
        finally:
            runtime.close()

    def test_intact_chains_still_patch_through_the_wrapper(self):
        _, databases, fsm, transport, runtime = _federation(None)
        try:
            query = "person() -> ssn"
            fsm.query(query)
            _two_inserts(databases)
            after = {row["ssn"] for row in fsm.query(query)}
            assert {"flt-a", "flt-b"} <= after
            stats = fsm.last_query_stats
            assert stats.counter("granules_patched") > 0
            assert stats.counter("agent_scans") == 0
            assert stats.counter("fallback_invalidations") == 0
        finally:
            runtime.close()

    @pytest.mark.parametrize("fault", FAULTS)
    def test_recovery_after_the_fault_clears(self, fault):
        # one corrupted sync must not poison the feed: once the
        # transport heals, later writes patch again
        _, databases, fsm, transport, runtime = _federation(fault)
        try:
            query = "person() -> ssn"
            fsm.query(query)
            _two_inserts(databases)
            fsm.query(query)  # fallback path
            transport.fault = None
            databases["market"].adapter.insert(
                "person",
                {"ssn": "flt-c", "name": "fc", "level_bp": 300, "sector": "s2"},
            )
            healed = {row["ssn"] for row in fsm.query(query)}
            assert "flt-c" in healed
            assert fsm.last_query_stats.counter("granules_patched") > 0
            assert fsm.last_query_stats.counter("agent_scans") == 0
        finally:
            runtime.close()
