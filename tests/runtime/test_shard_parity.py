"""Property-based shard parity: scatter/merge must never change answers.

Sharding an extent can silently lose facts (a slice nobody owns) or
duplicate them (overlapping slices, retry races); these properties pin
the invariant the ISSUE demands — for randomized cluster workloads, the
sharded answer set (N ∈ {1, 2, 7}, hash and range plans, threaded and
async modes) is exactly the unsharded baseline, cold, warm, and across
``bump_generation`` invalidation.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.federation import FSM, FSMAgent
from repro.runtime import RuntimePolicy, ShardPlan, shard_of_oid
from repro.workloads import federated_cluster

QUERY = "person0() -> ssn#"

_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

plans = st.builds(
    ShardPlan,
    shards=st.sampled_from([1, 2, 7]),
    kind=st.sampled_from(["hash", "range"]),
    band=st.sampled_from([1, 3, 32]),
)


def _build_fsm(schemas, per_class, seed):
    built, text, databases = federated_cluster(
        schemas=schemas, per_class=per_class, seed=seed
    )
    fsm = FSM()
    for index, schema in enumerate(built):
        agent = FSMAgent(f"agent{index + 1}")
        agent.host_object_database(databases[schema.name])
        fsm.register_agent(agent)
    fsm.declare(text)
    fsm.integrate_all()
    return fsm


def _answers(rows):
    return sorted(row["ssn#"] for row in rows)


def _assert_parity(schemas, per_class, seed, plan, mode):
    baseline = _build_fsm(schemas, per_class, seed)
    baseline.use_runtime(RuntimePolicy())
    expected = _answers(baseline.query(QUERY))
    assert expected  # a vacuous parity proves nothing

    sharded = _build_fsm(schemas, per_class, seed)
    runtime = sharded.use_runtime(RuntimePolicy(), mode=mode, shard_plan=plan)
    try:
        assert _answers(sharded.query(QUERY)) == expected  # cold scatter
        warm_rows = sharded.query(QUERY)  # warm: merged from shard granules
        assert _answers(warm_rows) == expected
        assert sharded.last_query_stats.counter("agent_scans") == 0
        runtime.bump_generation()  # every shard granule must miss again
        assert _answers(sharded.query(QUERY)) == expected
        assert sharded.last_query_stats.counter("agent_scans") > 0
    finally:
        runtime.close()
        baseline.runtime.close()


class TestShardedAnswersEqualUnsharded:
    @settings(**_SETTINGS)
    @given(
        schemas=st.integers(2, 4),
        per_class=st.integers(1, 10),
        seed=st.integers(0, 999),
        plan=plans,
    )
    def test_threaded_parity(self, schemas, per_class, seed, plan):
        _assert_parity(schemas, per_class, seed, plan, "threaded")

    @settings(**_SETTINGS)
    @given(
        schemas=st.integers(2, 4),
        per_class=st.integers(1, 10),
        seed=st.integers(0, 999),
        plan=plans,
    )
    def test_async_parity(self, schemas, per_class, seed, plan):
        _assert_parity(schemas, per_class, seed, plan, "async")


class TestShardOwnership:
    """The plan itself: every OID owned by exactly one shard."""

    @settings(**_SETTINGS)
    @given(
        per_class=st.integers(1, 16),
        seed=st.integers(0, 999),
        plan=plans,
    )
    def test_shards_partition_every_extent(self, per_class, seed, plan):
        _, _, databases = federated_cluster(
            schemas=2, per_class=per_class, seed=seed
        )
        for database in databases.values():
            extent = database.extent("person0")
            owners = [plan.shard_of(obj.oid) for obj in extent]
            assert all(0 <= owner < plan.shards for owner in owners)
            slices = [spec.filter_instances(extent) for spec in plan.specs()]
            assert sum(len(s) for s in slices) == len(extent)
            merged = {obj.oid for piece in slices for obj in piece}
            assert merged == {obj.oid for obj in extent}

    @given(
        number=st.integers(1, 10_000),
        plan=plans,
    )
    def test_shard_of_is_deterministic(self, number, plan):
        class Token:
            def __init__(self, n):
                self.number = n

            def __str__(self):
                return f"tok-{self.number}"

        token = Token(number)
        assert plan.shard_of(token) == plan.shard_of(token)
        assert plan.shard_of(token) == shard_of_oid(
            token, plan.shards, plan.kind, plan.band
        )


class TestWarmRestartParity:
    """A persisted-then-reopened cache answers the parity workload with
    zero agent scans; a component write after reopen forces a rescan."""

    @pytest.mark.parametrize("plan", [ShardPlan(1), ShardPlan(4), ShardPlan(7, "range", band=2)])
    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_restarted_federation_answers_scan_free(self, tmp_path, plan, mode):
        cache_path = tmp_path / "extents.db"
        cold_fsm = _build_fsm(schemas=3, per_class=5, seed=11)
        runtime = cold_fsm.use_runtime(
            RuntimePolicy(), mode=mode, shard_plan=plan, cache_path=str(cache_path)
        )
        try:
            expected = _answers(cold_fsm.query(QUERY))
            assert expected
            assert cold_fsm.last_query_stats.counter("agent_scans") > 0
        finally:
            runtime.close()

        warm_fsm = _build_fsm(schemas=3, per_class=5, seed=11)  # "restart"
        restarted = warm_fsm.use_runtime(
            RuntimePolicy(), mode=mode, shard_plan=plan, cache_path=str(cache_path)
        )
        try:
            assert restarted.stats().counter("cache_restores") > 0
            assert _answers(warm_fsm.query(QUERY)) == expected
            assert warm_fsm.last_query_stats.counter("agent_scans") == 0

            # a component-database version bump after the reopen must
            # force a rescan and surface the write
            warm_fsm.database("S1").insert(
                "person0", {"ssn#": "S1-post-restart", "name": "new", "grade": 1}
            )
            after = _answers(warm_fsm.query(QUERY))
            assert warm_fsm.last_query_stats.counter("agent_scans") > 0
            assert "S1-post-restart" in after
            assert len(after) == len(expected) + 1
        finally:
            restarted.close()


class TestValueSetParity:
    def test_sharded_value_sets_union_to_the_baseline(self, cluster_builder):
        fsm = cluster_builder()
        baseline = fsm.use_runtime(RuntimePolicy())
        expected = baseline.value_set("S1", "person0", "ssn#")
        assert expected
        for plan in (ShardPlan(2), ShardPlan(7, "range", band=2)):
            sharded = cluster_builder()
            runtime = sharded.use_runtime(RuntimePolicy(), shard_plan=plan)
            assert runtime.value_set("S1", "person0", "ssn#") == expected
            # warm repeat merges cached shard slices
            assert runtime.value_set("S1", "person0", "ssn#") == expected

    def test_component_write_visible_through_shard_granules(self, cluster_builder):
        fsm = cluster_builder()
        runtime = fsm.use_runtime(RuntimePolicy(), shard_plan=ShardPlan(4))
        before = _answers(fsm.query(QUERY))
        fsm.database("S1").insert(
            "person0", {"ssn#": "S1-new", "name": "new", "grade": 1}
        )
        after = _answers(fsm.query(QUERY))
        assert len(after) == len(before) + 1
        assert "S1-new" in after
        assert runtime.shard_plan is not None
