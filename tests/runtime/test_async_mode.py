"""mode="async": same answers, same cache behaviour, same stats shape.

The async executor is a different engine, not different semantics: a
federated query must return identical rows, the warm run must perform
zero agent scans, and the ``--stats`` counters must agree with the
threaded mode on everything the event loop does not change.
"""

import io

import pytest

from repro.cli import main
from repro.core.session import FederationSession
from repro.errors import RuntimeFederationError
from repro.runtime import (
    AsyncInProcessTransport,
    AsyncSimulatedNetworkTransport,
    FaultProfile,
    FederationRuntime,
    InProcessTransport,
    RuntimePolicy,
)
from repro.workloads import federated_cluster

QUERY = "person0() -> ssn#"


def _answers(rows):
    return sorted(str(row.get("ssn#")) for row in rows)


class TestModeSwitch:
    def test_unknown_mode_is_rejected(self, cluster_builder):
        fsm = cluster_builder()
        with pytest.raises(RuntimeFederationError, match="unknown runtime mode"):
            fsm.use_runtime(mode="fibers")

    def test_async_transport_needs_async_mode(self, cluster_fsm):
        transport = AsyncInProcessTransport(
            cluster_fsm._agents, cluster_fsm._schema_host
        )
        with pytest.raises(RuntimeFederationError, match="mode='async'"):
            FederationRuntime(transport=transport, mode="threaded")

    def test_sync_transport_is_adapted_into_async_mode(self, cluster_fsm):
        transport = InProcessTransport(
            cluster_fsm._agents, cluster_fsm._schema_host
        )
        runtime = FederationRuntime(transport=transport, mode="async")
        assert runtime.mode == "async"
        cluster_fsm.use_runtime(runtime=runtime)
        assert _answers(cluster_fsm.query(QUERY))
        runtime.close()


class TestAnswerParity:
    def test_async_and_threaded_agree_on_the_cluster_workload(
        self, cluster_builder
    ):
        threaded_fsm = cluster_builder()
        threaded_fsm.use_runtime(RuntimePolicy(max_workers=8))
        async_fsm = cluster_builder()
        async_fsm.use_runtime(RuntimePolicy(max_workers=8), mode="async")
        try:
            assert _answers(threaded_fsm.query(QUERY)) == _answers(
                async_fsm.query(QUERY)
            )
        finally:
            async_fsm.runtime.close()

    def test_appendix_b_agrees_across_modes(self, cluster_builder):
        from repro.federation.query import FederatedQuery

        query = FederatedQuery.parse(QUERY)
        threaded_fsm = cluster_builder()
        threaded_fsm.use_runtime()
        async_fsm = cluster_builder()
        async_fsm.use_runtime(mode="async")
        try:
            assert _answers(query.run(threaded_fsm.appendix_b())) == _answers(
                query.run(async_fsm.appendix_b())
            )
        finally:
            async_fsm.runtime.close()

    def test_cache_behaviour_is_identical_across_modes(self, cluster_builder):
        per_mode = {}
        for mode in ("threaded", "async"):
            fsm = cluster_builder()
            runtime = fsm.use_runtime(RuntimePolicy(max_workers=8), mode=mode)
            fsm.query(QUERY)
            cold = fsm.last_query_stats
            fsm.query(QUERY)
            warm = fsm.last_query_stats
            per_mode[mode] = (cold, warm)
            if mode == "async":
                runtime.close()
        for mode, (cold, warm) in per_mode.items():
            assert warm.counter("agent_scans") == 0, mode
            assert warm.counter("cache_misses") == 0, mode
        threaded_cold, async_cold = per_mode["threaded"][0], per_mode["async"][0]
        for counter in ("agent_scans", "cache_misses", "cache_hits", "requests"):
            assert threaded_cold.counter(counter) == async_cold.counter(counter)
        threaded_warm, async_warm = per_mode["threaded"][1], per_mode["async"][1]
        assert threaded_warm.counter("cache_hits") == async_warm.counter(
            "cache_hits"
        )

    def test_partial_degradation_matches_threaded_semantics(self, cluster_builder):
        fsm = cluster_builder()
        transport = AsyncSimulatedNetworkTransport(
            AsyncInProcessTransport(fsm._agents, fsm._schema_host)
        )
        transport.set_profile("agent2", FaultProfile(fail_times=100))
        runtime = FederationRuntime(
            transport=transport,
            policy=RuntimePolicy(max_retries=1, backoff_base=0.0),
            mode="async",
        )
        fsm.use_runtime(runtime=runtime)
        try:
            rows = fsm.query(QUERY)
        finally:
            runtime.close()
        warnings = runtime.drain_warnings()
        assert warnings and "agent2" in " ".join(warnings)
        assert rows  # surviving agents still answer
        assert all("S2" not in str(row.get("ssn#")) for row in rows)


class TestSessionAndCli:
    def test_session_enables_async_runtime(self):
        built, text, databases = federated_cluster(schemas=3, per_class=4)
        session = FederationSession()
        for schema in built:
            session.add_database(databases[schema.name])
        session.declare(text)
        session.integrate()
        runtime = session.enable_runtime(mode="async")
        assert runtime.mode == "async"
        try:
            rows = session.query(QUERY)
        finally:
            runtime.close()
        assert rows and session.last_query_stats.counter("agent_scans") > 0

    def test_cli_async_flag_matches_threaded_answers(self):
        outputs = {}
        for flag in ([], ["--async"]):
            out = io.StringIO()
            status = main(
                ["query", QUERY, "--demo", "cluster", *flag, "--stats"], out=out
            )
            assert status == 0
            outputs[bool(flag)] = out.getvalue()
        threaded_rows = sorted(
            line for line in outputs[False].splitlines() if "ssn#=" in line
        )
        async_rows = sorted(
            line for line in outputs[True].splitlines() if "ssn#=" in line
        )
        assert threaded_rows == async_rows
        assert "agent_scans" in outputs[True]

    def test_cli_async_repeat_hits_the_cache(self):
        out = io.StringIO()
        status = main(
            [
                "query",
                QUERY,
                "--demo",
                "cluster",
                "--async",
                "--max-inflight",
                "16",
                "--repeat",
                "2",
                "--stats",
            ],
            out=out,
        )
        assert status == 0
        text = out.getvalue()
        assert "run 2" in text and "agent_scans=0" in text
