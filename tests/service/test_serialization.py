"""The shared wire vocabulary: json_safe, stats_to_dict, query payloads."""

import json

import pytest

from repro.errors import QueryError
from repro.federation.query import FederatedQuery
from repro.model.oids import OID
from repro.runtime.metrics import RuntimeMetrics
from repro.service import json_safe, payload_to_query, rows_to_json, stats_to_dict


class TestJsonSafe:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert json_safe(value) == value

    def test_oid_renders_as_dotted_string(self):
        oid = OID("agent1", "pyoodb", "S1", "person", 7)
        assert json_safe(oid) == str(oid)
        assert isinstance(json_safe(oid), str)

    def test_frozenset_becomes_sorted_list(self):
        assert json_safe(frozenset({"b", "a"})) == ["a", "b"]

    def test_nested_structures_are_json_dumpable(self):
        oid = OID("agent1", "pyoodb", "S1", "person", 7)
        row = {"oid": oid, "children": frozenset({"Tom", "Ann"}), "n": 1}
        safe = json_safe(row)
        assert json.loads(json.dumps(safe)) == safe
        assert safe["children"] == ["Ann", "Tom"]

    def test_unknown_objects_fall_back_to_str(self):
        class Odd:
            def __repr__(self):
                return "odd!"

        assert isinstance(json_safe(Odd()), str)

    def test_rows_preserve_order(self):
        rows = [{"a": 1}, {"a": 2}]
        assert rows_to_json(rows) == [{"a": 1}, {"a": 2}]


class TestStatsToDict:
    def test_shape_and_round_trip(self):
        metrics = RuntimeMetrics()
        metrics.record_agent_scan("agent-S1")  # also counts one agent_scan
        with metrics.timer("query"):
            pass
        metrics.record_fallback_invalidation("extent(agent-S1:S1.person)")
        doc = stats_to_dict(metrics.snapshot())
        assert set(doc) == {
            "counters", "agent_scans", "fallback_invalidations",
            "missing_shards", "timers",
        }
        assert doc["counters"]["agent_scans"] == 1
        assert doc["agent_scans"] == {"agent-S1": 1}
        assert doc["fallback_invalidations"] == {
            "extent(agent-S1:S1.person)": 1
        }
        timer = doc["timers"]["query"]
        assert timer["count"] == 1
        assert timer["total_ms"] >= 0
        assert json.loads(json.dumps(doc)) == doc


class TestPayloadToQuery:
    def test_textual_form(self):
        query, appendix_b = payload_to_query(
            {"query": "uncle(niece_nephew='John') -> Ussn#"}
        )
        assert query.class_name == "uncle"
        assert dict(query.where) == {"niece_nephew": "John"}
        assert query.select == ("Ussn#",)
        assert appendix_b is False

    def test_structured_form_with_appendix_b(self):
        query, appendix_b = payload_to_query(
            {
                "class": "uncle",
                "where": {"niece_nephew": "John"},
                "select": ["Ussn#"],
                "appendix_b": True,
            }
        )
        assert query.class_name == "uncle"
        assert appendix_b is True

    def test_round_trip_through_payload(self):
        query = FederatedQuery.of("uncle", {"niece_nephew": "John"}, ("Ussn#",))
        again = FederatedQuery.from_payload(query.to_payload())
        assert again == query

    @pytest.mark.parametrize(
        "payload",
        [
            "not a mapping",
            {"query": 7},
            {},
            {"class": ""},
            {"class": "c", "where": "x=1"},
            {"class": "c", "select": [1, 2]},
        ],
    )
    def test_bad_payloads_raise_query_error(self, payload):
        with pytest.raises(QueryError):
            payload_to_query(payload)

    def test_bad_appendix_b_flag(self):
        with pytest.raises(QueryError):
            payload_to_query({"class": "c", "appendix_b": "yes"})
