"""FederationRepository: tenant registry, shared loop, graceful shutdown."""

import pytest

from repro.errors import ServiceClosedError, ServiceError, UnknownTenantError
from repro.service import FederationRepository, TenantConfig

QUERY = {"query": "uncle(niece_nephew='John') -> Ussn#"}


@pytest.fixture
def repository():
    repo = FederationRepository(drain_timeout=5.0)
    yield repo
    repo.close()


class TestRegistry:
    def test_add_and_list_tenants(self, repository):
        repository.add_tenant(TenantConfig(name="a"))
        repository.add_tenant(TenantConfig(name="b", demo="cluster"))
        assert repository.tenant_ids() == ["a", "b"]

    def test_duplicate_tenant_rejected(self, repository):
        repository.add_tenant(TenantConfig(name="a"))
        with pytest.raises(ServiceError):
            repository.add_tenant(TenantConfig(name="a"))

    def test_unknown_tenant_raises(self, repository):
        with pytest.raises(UnknownTenantError):
            repository.tenant("ghost")
        with pytest.raises(UnknownTenantError):
            repository.query("ghost", QUERY)

    def test_async_tenants_share_the_repository_loop(self, repository):
        a = repository.add_tenant(TenantConfig(name="a", mode="async"))
        b = repository.add_tenant(TenantConfig(name="b", mode="async"))
        assert a.runtime.executor._runner is repository.loop
        assert b.runtime.executor._runner is repository.loop

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            TenantConfig(name="")
        with pytest.raises(ServiceError):
            TenantConfig(name="x", demo="nope")
        with pytest.raises(ServiceError):
            TenantConfig(name="x", schemas=("a.schema",))  # no assertions
        with pytest.raises(ServiceError):
            TenantConfig(name="x", max_inflight=0)


class TestOperations:
    def test_query_returns_rows_and_accounting(self, repository):
        repository.add_tenant(TenantConfig(name="a"))
        answer = repository.query("a", QUERY)
        assert answer["tenant"] == "a"
        assert answer["count"] == 1
        assert answer["rows"][0]["Ussn#"] == "B1"
        assert answer["evaluator"] == "bottom_up"
        assert answer["elapsed_ms"] > 0
        assert answer["stats"]["counters"]["agent_scans"] >= 1
        assert "agent-S1" in answer["stats"]["agent_scans"]

    def test_query_appendix_b_evaluator(self, repository):
        repository.add_tenant(TenantConfig(name="a"))
        answer = repository.query(
            "a", {**QUERY, "appendix_b": True}
        )
        assert answer["evaluator"] == "appendix_b"
        assert answer["count"] == 1

    def test_stats_document(self, repository):
        repository.add_tenant(TenantConfig(name="a"))
        repository.query("a", QUERY)
        doc = repository.stats("a")
        assert doc["tenant"] == "a"
        assert doc["tenant_info"]["queries"] == 1
        assert doc["tenant_info"]["mode"] == "async"
        assert doc["stats"]["counters"]["agent_scans"] >= 1

    def test_invalidate_and_bump(self, repository):
        repository.add_tenant(TenantConfig(name="a"))
        repository.query("a", QUERY)
        dropped = repository.invalidate("a", {})
        assert dropped["dropped"] >= 1
        bumped = repository.bump("a")
        assert bumped["generation"] == 1

    def test_invalidate_rejects_non_object_body(self, repository):
        repository.add_tenant(TenantConfig(name="a"))
        with pytest.raises(ServiceError):
            repository.invalidate("a", [1, 2])

    def test_health_census(self, repository):
        repository.add_tenant(TenantConfig(name="a"))
        doc = repository.health()
        assert doc["status"] == "ok"
        assert doc["loop_alive"] is False  # the shared loop starts lazily
        assert doc["inflight"] == 0
        assert set(doc["tenants"]) == {"a"}
        repository.query("a", QUERY)  # first async scan spins the loop up
        assert repository.health()["loop_alive"] is True


class TestLifecycle:
    def test_close_is_idempotent_and_refuses_new_work(self):
        repository = FederationRepository()
        repository.add_tenant(TenantConfig(name="a"))
        repository.query("a", QUERY)
        repository.close()
        repository.close()  # second close is a no-op
        assert repository.closed
        with pytest.raises(ServiceClosedError):
            repository.query("a", QUERY)
        with pytest.raises(ServiceClosedError):
            repository.add_tenant(TenantConfig(name="b"))

    def test_close_stops_the_shared_loop_and_runtimes(self):
        repository = FederationRepository()
        tenant = repository.add_tenant(TenantConfig(name="a", mode="async"))
        repository.query("a", QUERY)
        repository.close()
        assert not repository.loop.alive
        assert tenant.runtime.closed
        assert repository.health()["status"] == "closing"
