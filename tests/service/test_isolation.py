"""Multi-tenant isolation: one shared loop, zero cross-tenant effects.

Two tenants with their own schemas and caches multiplex every agent
scan on one executor loop.  Invalidation (``bump_generation``) and
component-database writes in tenant A must never invalidate tenant B's
cache — and must never let B serve granules that are stale for A.
Both execution paths are covered: the threaded bridge and native async.
"""

import pytest

from repro.service import FederationRepository, TenantConfig

GEN_QUERY = {"query": "uncle(niece_nephew='John') -> Ussn#"}
CLU_QUERY = {"query": "person0() -> ssn#"}


def _scans(answer):
    return answer["stats"]["counters"].get("agent_scans", 0)


@pytest.fixture(params=["threaded", "async"])
def pair(request):
    """Two tenants (same mode) on one repository; params cover both paths."""
    repository = FederationRepository(drain_timeout=5.0)
    repository.add_tenant(
        TenantConfig(name="a", demo="genealogy", mode=request.param)
    )
    repository.add_tenant(
        TenantConfig(name="b", demo="cluster", mode=request.param)
    )
    yield repository
    repository.close()


class TestSharedLoop:
    def test_async_tenants_borrow_one_runner(self):
        repository = FederationRepository()
        try:
            a = repository.add_tenant(TenantConfig(name="a", mode="async"))
            b = repository.add_tenant(
                TenantConfig(name="b", demo="cluster", mode="async")
            )
            assert a.runtime.executor._runner is repository.loop
            assert b.runtime.executor._runner is repository.loop
            assert not a.runtime.executor._owns_runner
            repository.query("a", GEN_QUERY)
            repository.query("b", CLU_QUERY)
            assert repository.loop.alive
        finally:
            repository.close()
        assert not repository.loop.alive

    def test_tenant_close_leaves_the_shared_loop_running(self):
        repository = FederationRepository()
        try:
            a = repository.add_tenant(TenantConfig(name="a", mode="async"))
            repository.add_tenant(
                TenantConfig(name="b", demo="cluster", mode="async")
            )
            repository.query("a", GEN_QUERY)
            a.close()  # one tenant going away must not stop the others
            assert repository.loop.alive
            answer = repository.query("b", CLU_QUERY)
            assert answer["count"] == 32
        finally:
            repository.close()


class TestCacheIsolation:
    def test_warm_caches_are_per_tenant(self, pair):
        cold_a = _scans(pair.query("a", GEN_QUERY))
        cold_b = _scans(pair.query("b", CLU_QUERY))
        assert cold_a >= 1 and cold_b >= 1
        assert _scans(pair.query("a", GEN_QUERY)) == 0  # warm
        assert _scans(pair.query("b", CLU_QUERY)) == 0  # warm

    def test_bump_in_a_never_invalidates_b(self, pair):
        pair.query("a", GEN_QUERY)
        pair.query("b", CLU_QUERY)
        generation = pair.bump("a")["generation"]
        assert generation == 1
        # A is stale: it must rescan its agents...
        assert _scans(pair.query("a", GEN_QUERY)) >= 1
        # ...while B's cache is untouched: zero scans, same answers
        answer_b = pair.query("b", CLU_QUERY)
        assert _scans(answer_b) == 0
        assert answer_b["count"] == 32

    def test_explicit_invalidate_in_a_never_drops_b(self, pair):
        pair.query("a", GEN_QUERY)
        pair.query("b", CLU_QUERY)
        assert pair.invalidate("a", {})["dropped"] >= 1
        assert _scans(pair.query("a", GEN_QUERY)) >= 1
        assert _scans(pair.query("b", CLU_QUERY)) == 0

    def test_component_write_in_a_is_seen_by_a_and_invisible_to_b(self, pair):
        """The staleness fence: a write bumps only that tenant's sources."""
        pair.query("a", GEN_QUERY)
        first_b = pair.query("b", CLU_QUERY)
        # write directly into tenant A's S2 component database: a second
        # uncle row; the database version bump makes A's granules stale
        tenant_a = pair.tenant("a")
        tenant_a.session.fsm.database("S2").insert(
            "uncle", {"Ussn#": "B9", "niece_nephew": {"John"}}
        )
        answer_a = pair.query("a", GEN_QUERY)
        assert answer_a["count"] == 2  # the new row is visible immediately
        assert {"B1", "B9"} == {row["Ussn#"] for row in answer_a["rows"]}
        assert _scans(answer_a) >= 1  # served by rescan, not the stale cache
        # tenant B: still warm, still the same answers, zero extra scans
        answer_b = pair.query("b", CLU_QUERY)
        assert _scans(answer_b) == 0
        assert answer_b["rows"] == first_b["rows"]

    def test_stats_are_per_tenant(self, pair):
        pair.query("a", GEN_QUERY)
        pair.query("a", GEN_QUERY)
        pair.query("b", CLU_QUERY)
        stats_a = pair.stats("a")
        stats_b = pair.stats("b")
        assert stats_a["tenant_info"]["queries"] == 2
        assert stats_b["tenant_info"]["queries"] == 1
        assert stats_a["stats"]["agent_scans"]
        assert stats_b["stats"]["agent_scans"]
        # forcing B to rescan must leave A's accounting untouched, even
        # though both tenants name their agents after the same schemas
        pair.bump("b")
        pair.query("b", CLU_QUERY)
        assert pair.stats("a")["stats"] == stats_a["stats"]
        assert (
            pair.stats("b")["stats"]["counters"]["agent_scans"]
            > stats_b["stats"]["counters"]["agent_scans"]
        )
