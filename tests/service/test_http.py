"""The HTTP surface: routing, error mapping, keep-alive, concurrency."""

import http.client
import json
import threading

import pytest

from repro.service import (
    FederationRepository,
    ServerThread,
    TenantConfig,
    create_app,
)

QUERY_BODY = json.dumps({"query": "uncle(niece_nephew='John') -> Ussn#"})


@pytest.fixture(scope="module")
def served():
    """One server, two tenants, shared by every test in this module."""
    repository = FederationRepository(drain_timeout=5.0)
    repository.add_tenant(TenantConfig(name="gen", demo="genealogy", mode="async"))
    repository.add_tenant(
        TenantConfig(name="clu", demo="cluster", mode="threaded")
    )
    app = create_app(repository, allow_shutdown=False)
    with ServerThread(app, port=0) as server:
        yield server, repository
    repository.close()


def _request(server, method, path, body=None):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestEndpoints:
    def test_healthz(self, served):
        server, _ = served
        status, doc = _request(server, "GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert set(doc["tenants"]) == {"gen", "clu"}

    def test_tenants_listing(self, served):
        server, _ = served
        status, doc = _request(server, "GET", "/tenants")
        assert status == 200
        assert doc["tenants"] == ["clu", "gen"]

    def test_query_round_trip(self, served):
        server, _ = served
        status, doc = _request(
            server, "POST", "/tenants/gen/query", body=QUERY_BODY
        )
        assert status == 200
        assert doc["count"] == 1
        assert doc["rows"][0]["Ussn#"] == "B1"
        assert doc["stats"]["counters"]["requests"] >= 1

    def test_structured_query_payload(self, served):
        server, _ = served
        body = json.dumps(
            {"class": "person0", "where": {}, "select": ["ssn#"]}
        )
        status, doc = _request(server, "POST", "/tenants/clu/query", body=body)
        assert status == 200
        assert doc["count"] == 32  # 4 schemas x 8 rows, deduplicated extent

    def test_stats_endpoint(self, served):
        server, _ = served
        _request(server, "POST", "/tenants/gen/query", body=QUERY_BODY)
        status, doc = _request(server, "GET", "/tenants/gen/stats")
        assert status == 200
        assert doc["tenant_info"]["queries"] >= 1
        assert doc["stats"]["counters"]["agent_scans"] >= 1

    def test_cache_endpoints(self, served):
        server, _ = served
        _request(server, "POST", "/tenants/gen/query", body=QUERY_BODY)
        status, doc = _request(
            server, "POST", "/tenants/gen/cache/invalidate", body=json.dumps({})
        )
        assert status == 200
        assert doc["dropped"] >= 0
        status, doc = _request(server, "POST", "/tenants/gen/cache/bump")
        assert status == 200
        assert doc["generation"] >= 1


class TestErrorMapping:
    def test_unknown_tenant_is_404(self, served):
        server, _ = served
        status, doc = _request(
            server, "POST", "/tenants/ghost/query", body=QUERY_BODY
        )
        assert status == 404
        assert doc["tenant"] == "ghost"

    def test_unknown_path_is_404(self, served):
        server, _ = served
        status, _ = _request(server, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405_with_allowed_list(self, served):
        server, _ = served
        status, doc = _request(server, "GET", "/tenants/gen/query")
        assert status == 405
        assert doc["allowed"] == ["POST"]

    def test_malformed_json_is_400(self, served):
        server, _ = served
        status, doc = _request(
            server, "POST", "/tenants/gen/query", body="{not json"
        )
        assert status == 400
        assert "JSON" in doc["error"]

    def test_malformed_query_is_400(self, served):
        server, _ = served
        status, _ = _request(
            server, "POST", "/tenants/gen/query", body=json.dumps({"where": {}})
        )
        assert status == 400

    def test_unparseable_query_text_is_400(self, served):
        server, _ = served
        status, doc = _request(
            server,
            "POST",
            "/tenants/gen/query",
            body=json.dumps({"query": "uncle(bad"}),
        )
        assert status == 400
        assert "malformed" in doc["error"]

    def test_unknown_class_yields_no_answers(self, served):
        # the bottom-up engine treats an unknown class as an empty
        # extent, so this is a well-formed query with zero rows
        server, _ = served
        status, doc = _request(
            server,
            "POST",
            "/tenants/gen/query",
            body=json.dumps({"query": "no_such_class() -> x"}),
        )
        assert status == 200
        assert doc["count"] == 0

    def test_shutdown_disabled_is_403(self, served):
        server, _ = served
        status, _ = _request(server, "POST", "/admin/shutdown")
        assert status == 403


class TestProtocol:
    def test_keep_alive_serves_many_requests_per_connection(self, served):
        server, _ = served
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            for _ in range(5):
                conn.request("POST", "/tenants/gen/query", body=QUERY_BODY)
                response = conn.getresponse()
                assert response.status == 200
                json.loads(response.read())
        finally:
            conn.close()

    def test_eight_concurrent_clients(self, served):
        """The acceptance bar: >= 8 simultaneous clients, zero errors."""
        server, _ = served
        clients, per_client = 8, 5
        results, errors = [], []
        barrier = threading.Barrier(clients)

        def client(index):
            try:
                barrier.wait(timeout=30)
                conn = http.client.HTTPConnection(
                    server.host, server.port, timeout=60
                )
                tenant = "gen" if index % 2 == 0 else "clu"
                body = (
                    QUERY_BODY
                    if tenant == "gen"
                    else json.dumps({"query": "person0() -> ssn#"})
                )
                for _ in range(per_client):
                    conn.request("POST", f"/tenants/{tenant}/query", body=body)
                    response = conn.getresponse()
                    payload = json.loads(response.read())
                    results.append((response.status, payload["count"]))
                conn.close()
            except Exception as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(results) == clients * per_client
        assert all(status == 200 for status, _ in results)
        assert {count for _, count in results} == {1, 32}


class TestShutdownEndpoint:
    def test_admin_shutdown_stops_the_server(self):
        repository = FederationRepository(drain_timeout=5.0)
        repository.add_tenant(TenantConfig(name="gen"))
        app = create_app(repository, allow_shutdown=True)
        server = ServerThread(app, port=0).start()
        status, doc = _request(server, "POST", "/admin/shutdown")
        assert status == 202
        assert doc["status"] == "shutting down"
        server.thread.join(timeout=15)
        assert not server.thread.is_alive()
        assert repository.closed  # lifespan shutdown drained the repository
