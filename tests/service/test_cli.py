"""CLI surfaces of the service PR: query --json, serve, tenant specs."""

import io
import json
import http.client
import os
import re
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.cli import _parse_tenant_spec, main
from repro.errors import ServiceError

QUERY = "uncle(niece_nephew='John') -> Ussn#"


def _loop_threads():
    return [
        thread
        for thread in threading.enumerate()
        if thread.name == "fsm-async-loop" and thread.is_alive()
    ]


class TestQueryJson:
    def _run(self, *argv):
        out = io.StringIO()
        status = main(list(argv), out=out)
        return status, out.getvalue()

    def test_json_document_shape(self):
        status, text = self._run(
            "query", QUERY, "--demo", "genealogy", "--json", "--stats"
        )
        assert status == 0
        document = json.loads(text)
        assert document["query"] == QUERY
        assert document["count"] == 1
        assert document["rows"][0]["Ussn#"] == "B1"
        assert document["evaluator"] == "bottom_up"
        assert document["warnings"] == []
        assert document["runs"][0]["agent_scans"] >= 1
        # the stats vocabulary is the service's stats_to_dict shape
        for section in ("last_query", "cumulative"):
            stats = document["stats"][section]
            assert set(stats) == {
                "counters", "agent_scans", "fallback_invalidations",
                "missing_shards", "timers",
            }

    def test_json_without_stats_is_lean(self):
        status, text = self._run("query", QUERY, "--demo", "genealogy", "--json")
        assert status == 0
        document = json.loads(text)
        assert "stats" not in document
        assert "runs" not in document

    def test_json_repeat_reports_cache_hits(self):
        status, text = self._run(
            "query", QUERY, "--demo", "genealogy", "--json", "--stats",
            "--repeat", "2",
        )
        assert status == 0
        document = json.loads(text)
        assert len(document["runs"]) == 2
        assert document["runs"][0]["agent_scans"] >= 1
        assert document["runs"][1]["agent_scans"] == 0  # warm second run

    def test_async_query_leaves_no_loop_thread(self):
        before = len(_loop_threads())
        status, text = self._run(
            "query", QUERY, "--demo", "genealogy", "--async", "--json"
        )
        assert status == 0
        assert json.loads(text)["count"] == 1
        assert len(_loop_threads()) == before  # close() ran on the way out

    def test_error_path_still_closes_the_runtime(self):
        before = len(_loop_threads())
        out = io.StringIO()
        status = main(
            ["query", "uncle(bad", "--demo", "genealogy", "--async"], out=out
        )
        assert status == 1
        assert len(_loop_threads()) == before


class TestTenantSpec:
    def test_full_spec(self):
        config = _parse_tenant_spec(
            "name=t1,demo=cluster,mode=threaded,shards=4,shard-kind=range,"
            "latency=2.5,max-inflight=3,workers=2"
        )
        assert config.name == "t1"
        assert config.demo == "cluster"
        assert config.mode == "threaded"
        assert config.shards == 4
        assert config.shard_kind == "range"
        assert config.latency_ms == 2.5
        assert config.max_inflight == 3
        assert config.max_workers == 2

    def test_defaults(self):
        config = _parse_tenant_spec("name=x")
        assert config.demo == "genealogy"
        assert config.mode == "async"
        assert config.shards == 0

    @pytest.mark.parametrize(
        "spec",
        ["demo=genealogy", "name=x,unknown=1", "name=x,mode"],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ServiceError):
            _parse_tenant_spec(spec)


class TestServeSubcommand:
    def test_serve_boots_answers_and_shuts_down(self):
        """End-to-end: subprocess serve, query over HTTP, clean exit."""
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--allow-remote-shutdown",
                "--tenant", "name=gen,demo=genealogy,mode=async",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={
                **os.environ,
                # make `repro` importable however the suite was invoked
                "PYTHONPATH": os.pathsep.join(
                    filter(
                        None,
                        (
                            str(Path(__file__).resolve().parents[2] / "src"),
                            os.environ.get("PYTHONPATH"),
                        ),
                    )
                ),
            },
        )
        try:
            port = None
            assert process.stdout is not None
            for line in process.stdout:
                match = re.search(r"listening on http://127\.0\.0\.1:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port, "serve never announced its address"
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("GET", "/healthz")
            health = conn.getresponse()
            assert health.status == 200
            assert json.loads(health.read())["status"] == "ok"
            conn.request(
                "POST",
                "/tenants/gen/query",
                body=json.dumps({"query": QUERY}),
            )
            answer = conn.getresponse()
            assert answer.status == 200
            assert json.loads(answer.read())["count"] == 1
            conn.request("POST", "/admin/shutdown")
            assert conn.getresponse().status == 202
            conn.close()
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait(timeout=10)
