"""Principle 4: disjointness — complement rules and reverse aggregations."""

import pytest

from repro.assertions import AssertionSet, parse
from repro.integration import (
    IntegratedSchema,
    apply_disjoint,
    apply_disjoint_family,
    apply_equivalence,
)
from repro.model import ClassDef, Schema


@pytest.fixture
def man_woman():
    """Fig 4(d) with the required person ≡ human context."""
    s1 = Schema("S1")
    s1.add_class(ClassDef("person").attr("ssn#"))
    s1.add_class(
        ClassDef("man", parents=["person"]).agg("spouse", "person", "[1:1]")
    )
    s2 = Schema("S2")
    s2.add_class(ClassDef("human").attr("ssn#"))
    s2.add_class(
        ClassDef("woman", parents=["human"]).agg("spouse", "human", "[1:1]")
    )
    text = """
    assertion S1.person == S2.human
      attr S1.person.ssn# == S2.human.ssn#
    end
    assertion S1.man ! S2.woman
      agg S1.man.spouse rev S2.woman.spouse
    end
    """
    assertions = AssertionSet("S1", "S2")
    assertions.extend(parse(text))
    result = IntegratedSchema("IS")
    apply_equivalence(
        result, assertions.lookup("person", "human").oriented_assertion(),
        s1, s2, assertions,
    )
    return s1, s2, assertions, result


class TestComplementRule:
    def test_rule_generated_with_context(self, man_woman):
        s1, s2, assertions, result = man_woman
        rules = apply_disjoint(
            result, assertions.lookup("man", "woman").oriented_assertion(),
            s1, s2, assertions,
        )
        complement = [r for r in rules if "¬" in str(r)]
        assert len(complement) == 1
        text = str(complement[0])
        # <x: woman> ⇐ <x: person>, ¬<x: man>
        assert "woman" in text and "person" in text and "¬<x: man>" in text

    def test_no_context_only_copies(self):
        s1 = Schema("S1")
        s1.add_class(ClassDef("a"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("b"))
        assertions = AssertionSet("S1", "S2")
        assertions.extend(parse("assertion S1.a ! S2.b"))
        result = IntegratedSchema("IS")
        rules = apply_disjoint(
            result, assertions.lookup("a", "b").oriented_assertion(),
            s1, s2, assertions,
        )
        assert rules == []
        assert "a" in result.classes and "b" in result.classes
        assert any("meaningless" in n or "copied only" in n for n in result.log)


class TestReverseAggregation:
    def test_symmetric_rules_generated(self, man_woman):
        s1, s2, assertions, result = man_woman
        rules = apply_disjoint(
            result, assertions.lookup("man", "woman").oriented_assertion(),
            s1, s2, assertions,
        )
        reverse_rules = [r for r in rules if "spouse" in str(r)]
        assert len(reverse_rules) == 2
        forward, backward = (str(r) for r in reverse_rules)
        assert "woman" in forward and "man" in forward
        assert "man" in backward and "woman" in backward

    def test_reverse_rules_evaluate_symmetrically(self, man_woman):
        """man.spouse facts answer woman.spouse queries and vice versa."""
        from repro.logic import Atom, FactStore, QueryEngine, att_predicate, inst_predicate

        s1, s2, assertions, result = man_woman
        apply_disjoint(
            result, assertions.lookup("man", "woman").oriented_assertion(),
            s1, s2, assertions,
        )
        store = FactStore()
        store.add(inst_predicate("man"), ("m1",))
        store.add(att_predicate("man", "spouse"), ("m1", "w1"))
        engine = QueryEngine([r.rule for r in result.rules if r.evaluable], store)
        rows = engine.ask(
            Atom.of(att_predicate("woman", "spouse"), "?w", "?m")
        )
        assert rows == [{"w": "w1", "m": "m1"}]


class TestFamily:
    def test_single_head_family_is_evaluable(self, man_woman):
        s1, s2, assertions, result = man_woman
        family = [assertions.lookup("man", "woman").oriented_assertion()]
        rule = apply_disjoint_family(result, family, s1, s2, assertions)
        assert rule is not None
        assert result.rules[-1].evaluable

    def test_multi_head_family_recorded_not_evaluable(self):
        s1 = Schema("S1")
        s1.add_class(ClassDef("p"))
        s1.add_class(ClassDef("a1", parents=["p"]))
        s2 = Schema("S2")
        s2.add_class(ClassDef("q"))
        s2.add_class(ClassDef("b1", parents=["q"]))
        s2.add_class(ClassDef("b2", parents=["q"]))
        text = """
        assertion S1.p == S2.q
        assertion S1.a1 ! S2.b1
        assertion S1.a1 ! S2.b2
        """
        assertions = AssertionSet("S1", "S2")
        assertions.extend(parse(text))
        result = IntegratedSchema("IS")
        apply_equivalence(
            result, assertions.lookup("p", "q").oriented_assertion(), s1, s2, assertions
        )
        family = [
            assertions.lookup("a1", "b1").oriented_assertion(),
            assertions.lookup("a1", "b2").oriented_assertion(),
        ]
        rule = apply_disjoint_family(result, family, s1, s2, assertions)
        assert rule is not None
        assert len(rule.heads) == 2
        assert not result.rules[-1].evaluable

    def test_family_without_shared_context_returns_none(self):
        s1 = Schema("S1")
        s1.add_class(ClassDef("a"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("b"))
        assertions = AssertionSet("S1", "S2")
        assertions.extend(parse("assertion S1.a ! S2.b"))
        result = IntegratedSchema("IS")
        family = [assertions.lookup("a", "b").oriented_assertion()]
        assert apply_disjoint_family(result, family, s1, s2, assertions) is None
