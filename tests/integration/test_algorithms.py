"""The §6 algorithms: complexity shape, agreement, link behaviour."""

import pytest

from repro.core import SchemaIntegrator
from repro.integration import (
    naive_schema_integration,
    schema_integration,
    sull_kashyap_style,
)
from repro.workloads import inclusion_chain, match_at_depth, mirrored_pair


class TestComplexityShape:
    """Experiment E-C1: §6.3's O(n) vs O(n²) pair checks."""

    def test_optimized_checks_linear_on_matched_trees(self):
        for size in (32, 64, 128):
            left, right, assertions = mirrored_pair(size, equivalence_fraction=1.0)
            _, stats = schema_integration(left, right, assertions)
            assert stats.pairs_checked == size

    def test_naive_checks_quadratic(self):
        for size in (16, 32):
            left, right, assertions = mirrored_pair(size, equivalence_fraction=1.0)
            _, stats = naive_schema_integration(left, right, assertions)
            assert stats.pairs_checked == size * size

    def test_speedup_grows_with_n(self):
        ratios = []
        for size in (16, 64):
            left, right, assertions = mirrored_pair(size, equivalence_fraction=1.0)
            _, optimized = schema_integration(left, right, assertions)
            _, naive = naive_schema_integration(left, right, assertions)
            ratios.append(naive.pairs_checked / optimized.pairs_checked)
        assert ratios[1] > ratios[0]


class TestAgreement:
    """Both algorithms must produce the same integrated semantics."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_same_classes_and_links_on_mixed_workloads(self, seed):
        left, right, assertions = mirrored_pair(
            30,
            seed=seed,
            equivalence_fraction=0.5,
            inclusion_fraction=0.2,
            intersection_fraction=0.1,
            exclusion_fraction=0.1,
        )
        r_opt, _ = schema_integration(left, right, assertions)
        r_naive, _ = naive_schema_integration(left, right, assertions)
        assert set(r_opt.classes) == set(r_naive.classes)
        assert set(r_opt.is_a_links()) == set(r_naive.is_a_links())

    def test_rules_agree_up_to_order(self):
        left, right, assertions = mirrored_pair(
            20, equivalence_fraction=0.4, intersection_fraction=0.4
        )
        r_opt, _ = schema_integration(left, right, assertions)
        r_naive, _ = naive_schema_integration(left, right, assertions)
        assert sorted(str(r.rule) for r in r_opt.rules) == sorted(
            str(r.rule) for r in r_naive.rules
        )


class TestLinkMinimality:
    """Experiment E-L: Fig 8 link generation vs the [33]-style baseline."""

    @pytest.mark.parametrize("chain", [2, 4, 8])
    def test_optimized_generates_single_link(self, chain):
        left, right, assertions = inclusion_chain(chain, declare_all=True)
        result, _ = schema_integration(left, right, assertions)
        a_links = [l for l in result.is_a_links() if l[0] == "A"]
        assert a_links == [("A", f"B{chain}")]

    @pytest.mark.parametrize("chain", [2, 4, 8])
    def test_baseline_generates_k_links(self, chain):
        left, right, assertions = inclusion_chain(chain, declare_all=True)
        result, _ = sull_kashyap_style(left, right, assertions)
        a_links = [l for l in result.is_a_links() if l[0] == "A"]
        assert len(a_links) == chain

    def test_integrated_hierarchy_equivalent_despite_fewer_links(self):
        left, right, assertions = inclusion_chain(5, declare_all=True)
        minimal, _ = schema_integration(left, right, assertions)
        verbose, _ = sull_kashyap_style(left, right, assertions)
        # Reachability agrees even though edge counts differ.
        for target in (f"B{i}" for i in range(1, 6)):
            assert minimal.has_is_a_path("A", target)
            assert verbose.has_is_a_path("A", target)


class TestMatchDepth:
    """Experiment E-C2: the two extreme cases of the Ω_h recurrence."""

    def test_aligned_match_is_linear(self):
        left, right, assertions = match_at_depth(63, depth=0)
        _, stats = schema_integration(left, right, assertions)
        assert stats.pairs_checked == 63

    def test_offset_match_stays_below_naive(self):
        from repro.integration import naive_schema_integration

        left, right, assertions = match_at_depth(63, depth=5)
        _, optimized = schema_integration(left, right, assertions)
        _, naive = naive_schema_integration(left, right, assertions)
        assert optimized.pairs_checked < naive.pairs_checked

    def test_offset_match_same_semantics_as_naive(self):
        from repro.integration import naive_schema_integration

        left, right, assertions = match_at_depth(31, depth=3)
        r_opt, _ = schema_integration(left, right, assertions)
        r_naive, _ = naive_schema_integration(left, right, assertions)
        assert set(r_opt.classes) == set(r_naive.classes)
        assert set(r_opt.is_a_links()) == set(r_naive.is_a_links())


class TestDeterminism:
    def test_runs_are_reproducible(self):
        left, right, assertions = mirrored_pair(25, equivalence_fraction=0.7)
        first, stats_a = schema_integration(left, right, assertions)
        second, stats_b = schema_integration(left, right, assertions)
        assert first.describe() == second.describe()
        assert stats_a.as_dict() == stats_b.as_dict()

    def test_integrator_facade_matches_direct_call(self):
        left, right, assertions = mirrored_pair(25, equivalence_fraction=0.7)
        direct, _ = schema_integration(left, right, assertions)
        facade = SchemaIntegrator(left, right, assertions).run()
        assert direct.describe() == facade.describe()
