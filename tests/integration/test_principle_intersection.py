"""Principle 3: intersection — virtual classes, rules, AIFs (Example 8)."""

import pytest

from repro.assertions import AssertionSet, parse
from repro.errors import IntegrationError
from repro.integration import (
    IntegratedSchema,
    SAME_OBJECT,
    ValueSetOp,
    apply_intersection,
)
from repro.workloads import fig4_suite


@pytest.fixture
def faculty_student():
    s1, s2, text = fig4_suite()
    assertions = AssertionSet("S1", "S2")
    assertions.extend(parse(text))
    result = IntegratedSchema("IS")
    # The parent equivalence person ≡ human must exist first (BFS order).
    from repro.integration import apply_equivalence

    apply_equivalence(
        result, assertions.lookup("person", "human").oriented_assertion(),
        s1, s2, assertions,
    )
    common = apply_intersection(
        result, assertions.lookup("faculty", "student").oriented_assertion(),
        s1, s2, assertions,
    )
    return result, common


class TestVirtualClasses:
    def test_three_virtual_classes_created(self, faculty_student):
        result, common = faculty_student
        assert common.name == "faculty_student"
        assert result.cls("faculty_student").virtual
        assert result.cls("faculty_only").virtual
        assert result.cls("student_only").virtual

    def test_local_copies_inserted(self, faculty_student):
        result, _ = faculty_student
        assert not result.cls("faculty").virtual
        assert not result.cls("student").virtual


class TestExample8Rules:
    def test_three_membership_rules(self, faculty_student):
        result, _ = faculty_student
        rules = [r.rule for r in result.rules_by_principle("P3")]
        assert len(rules) == 3
        texts = [str(r) for r in rules]
        assert any(SAME_OBJECT in t for t in texts)
        negated = [t for t in texts if "¬" in t]
        assert len(negated) == 2

    def test_membership_rule_uses_same_object_not_literal_equality(
        self, faculty_student
    ):
        result, _ = faculty_student
        [membership] = [
            r.rule
            for r in result.rules_by_principle("P3")
            if "¬" not in str(r.rule)
        ]
        assert SAME_OBJECT in str(membership)

    def test_rules_are_evaluable(self, faculty_student):
        result, _ = faculty_student
        assert all(r.evaluable for r in result.rules_by_principle("P3"))


class TestExample8Attributes:
    def test_union_attributes_defined_over_re_mapping(self, faculty_student):
        result, common = faculty_student
        ssn = common.attributes["fssn#"]
        assert ssn.spec.op is ValueSetOp.UNION
        # re(S1, fssn#) and re(S2, fssn#) both recorded.
        assert result.re_mapping.resolve("S1", "fssn#") == ("faculty", "fssn#")
        assert result.re_mapping.resolve("S2", "fssn#") == ("student", "ssn#")

    def test_intersection_attribute_uses_aif(self, faculty_student):
        _, common = faculty_student
        merged = common.attributes["income_study_support"]
        assert merged.spec.op is ValueSetOp.AIF
        assert merged.spec.aif_attribute == "income_study_support"

    def test_default_aif_is_average(self, faculty_student):
        result, _ = faculty_student
        aif = result.aifs.resolve("income_study_support")
        assert aif(100, 50) == 75

    def test_custom_aif_registration_wins(self, faculty_student):
        result, _ = faculty_student
        result.aifs.register("income_study_support", "max", max)
        assert result.aifs.resolve("income_study_support")(100, 50) == 100

    def test_merged_aggregation_on_common_class(self, faculty_student):
        _, common = faculty_student
        assert "work_in" in common.aggregations


class TestGuards:
    def test_reverse_agg_under_intersection_is_error(self):
        from repro.model import ClassDef, Schema

        s1 = Schema("S1")
        s1.add_class(ClassDef("a").agg("f", "a", "[1:1]"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("b").agg("g", "b", "[1:1]"))
        assertions = AssertionSet("S1", "S2")
        assertions.extend(
            parse("assertion S1.a ^ S2.b\n  agg S1.a.f rev S2.b.g\nend")
        )
        with pytest.raises(IntegrationError, match="error"):
            apply_intersection(
                IntegratedSchema("IS"),
                assertions.lookup("a", "b").oriented_assertion(),
                s1, s2, assertions,
            )

    def test_idempotent(self, faculty_student):
        result, common = faculty_student
        # A second application returns the existing virtual class.
        from repro.workloads import fig4_suite

        s1, s2, text = fig4_suite()
        assertions = AssertionSet("S1", "S2")
        assertions.extend(parse(text))
        again = apply_intersection(
            result, assertions.lookup("faculty", "student").oriented_assertion(),
            s1, s2, assertions,
        )
        assert again is common
