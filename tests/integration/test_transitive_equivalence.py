"""Transitive equivalence: A ≡ B and A ≡ C must end in one class.

The §6.3 analysis assumes each concept has exactly one counterpart, but
assertion sets lifted across integration rounds (Fig 2 strategies) can
relate one class to several; Principle 1 absorbs the extras into the
existing merge.  Regression tests for the dispatch path that once
skipped the absorption.
"""

import pytest

from repro.assertions import AssertionSet, parse
from repro.integration import naive_schema_integration, schema_integration
from repro.model import ClassDef, Schema


@pytest.fixture
def fan_out():
    """S1.a equivalent to both S2 roots b and c (brothers)."""
    s1 = Schema("S1")
    s1.add_class(ClassDef("a").attr("k").attr("x1"))
    s2 = Schema("S2")
    s2.add_class(ClassDef("b").attr("k").attr("x2"))
    s2.add_class(ClassDef("c").attr("k").attr("x3"))
    assertions = AssertionSet("S1", "S2")
    assertions.extend(
        parse(
            """
            assertion S1.a == S2.b
              attr S1.a.k == S2.b.k
            end
            assertion S1.a == S2.c
              attr S1.a.k == S2.c.k
            end
            """
        )
    )
    return s1, s2, assertions


@pytest.mark.parametrize("algorithm", [schema_integration, naive_schema_integration])
def test_all_three_classes_collapse(fan_out, algorithm):
    s1, s2, assertions = fan_out
    result, _ = algorithm(s1, s2, assertions)
    assert (
        result.is_name("S1", "a")
        == result.is_name("S2", "b")
        == result.is_name("S2", "c")
    )


def test_absorbed_class_contributes_origins(fan_out):
    s1, s2, assertions = fan_out
    result, _ = schema_integration(s1, s2, assertions)
    merged = result.cls(result.is_name("S1", "a"))
    assert set(merged.origins) == {("S1", "a"), ("S2", "b"), ("S2", "c")}
    key = merged.attributes["k"]
    assert {origin[0:2] for origin in key.origins} == {
        ("S1", "a"), ("S2", "b"), ("S2", "c"),
    }


def test_absorbed_class_unmatched_attributes_accumulate(fan_out):
    s1, s2, assertions = fan_out
    result, _ = schema_integration(s1, s2, assertions)
    merged = result.cls(result.is_name("S1", "a"))
    assert {"x1", "x2", "x3"} <= set(merged.attributes)


def test_three_way_chain_through_subclasses():
    """Equivalences at different hierarchy levels still chain."""
    s1 = Schema("S1")
    s1.add_class(ClassDef("top1").attr("k"))
    s1.add_class(ClassDef("mid1", parents=["top1"]).attr("m"))
    s2 = Schema("S2")
    s2.add_class(ClassDef("top2").attr("k"))
    s2.add_class(ClassDef("mid2", parents=["top2"]).attr("m"))
    s2.add_class(ClassDef("mid2b", parents=["top2"]).attr("m2"))
    assertions = AssertionSet("S1", "S2")
    assertions.extend(
        parse(
            """
            assertion S1.top1 == S2.top2
            assertion S1.mid1 == S2.mid2
            assertion S1.mid1 == S2.mid2b
            """
        )
    )
    result, _ = schema_integration(s1, s2, assertions)
    assert (
        result.is_name("S1", "mid1")
        == result.is_name("S2", "mid2")
        == result.is_name("S2", "mid2b")
    )
    # hierarchy intact
    assert result.has_is_a_path(
        result.is_name("S1", "mid1"), result.is_name("S1", "top1")
    )
