"""Integration over DAG-shaped schemas (multiple inheritance).

The §6 algorithms are described on trees ("to simplify the explanation")
but local OO schemas may be DAGs; the implementation must handle them:
every pair still gets considered, labels propagate through all parents,
and the integrated hierarchy stays a DAG.
"""

from repro.assertions import AssertionSet, parse
from repro.integration import naive_schema_integration, schema_integration
from repro.model import ClassDef, Schema


def diamond_schema(name: str, suffix: str) -> Schema:
    schema = Schema(name)
    schema.add_class(ClassDef(f"top{suffix}").attr("k"))
    schema.add_class(ClassDef(f"left{suffix}", parents=[f"top{suffix}"]).attr("l"))
    schema.add_class(ClassDef(f"right{suffix}", parents=[f"top{suffix}"]).attr("r"))
    schema.add_class(
        ClassDef(f"bottom{suffix}", parents=[f"left{suffix}", f"right{suffix}"])
    )
    return schema


def full_match_assertions() -> AssertionSet:
    assertions = AssertionSet("S1", "S2")
    for name in ("top", "left", "right", "bottom"):
        assertions.extend(parse(f"assertion S1.{name}1 == S2.{name}2"))
    return assertions


class TestDiamonds:
    def test_all_diamond_classes_merge(self):
        s1 = diamond_schema("S1", "1")
        s2 = diamond_schema("S2", "2")
        result, _ = schema_integration(s1, s2, full_match_assertions())
        assert len(result.classes) == 4
        assert result.is_name("S1", "bottom1") == result.is_name("S2", "bottom2")

    def test_integrated_hierarchy_is_a_diamond(self):
        s1 = diamond_schema("S1", "1")
        s2 = diamond_schema("S2", "2")
        result, _ = schema_integration(s1, s2, full_match_assertions())
        bottom = result.is_name("S1", "bottom1")
        top = result.is_name("S1", "top1")
        assert len(result.parents(bottom)) == 2
        assert result.has_is_a_path(bottom, top)

    def test_agrees_with_naive_on_diamonds(self):
        s1 = diamond_schema("S1", "1")
        s2 = diamond_schema("S2", "2")
        r_opt, _ = schema_integration(s1, s2, full_match_assertions())
        r_naive, _ = naive_schema_integration(s1, s2, full_match_assertions())
        assert set(r_opt.classes) == set(r_naive.classes)
        assert set(r_opt.is_a_links()) == set(r_naive.is_a_links())


class TestDagInclusion:
    def test_inclusion_into_dag_superclasses(self):
        """A ⊆ both branches of a diamond: path_labelling through a DAG."""
        s1 = Schema("S1")
        s1.add_class(ClassDef("A").attr("x"))
        s2 = diamond_schema("S2", "2")
        assertions = AssertionSet("S1", "S2")
        assertions.extend(
            parse(
                """
                assertion S1.A <= S2.top2
                assertion S1.A <= S2.left2
                assertion S1.A <= S2.right2
                """
            )
        )
        result, _ = schema_integration(s1, s2, assertions)
        a_links = {parent for child, parent in result.is_a_links() if child == "A"}
        # Most specific targets: both diamond branches, not the top.
        assert a_links == {"left2", "right2"}

    def test_mixed_depth_inclusions(self):
        s1 = Schema("S1")
        s1.add_class(ClassDef("A").attr("x"))
        s2 = diamond_schema("S2", "2")
        assertions = AssertionSet("S1", "S2")
        assertions.extend(
            parse(
                """
                assertion S1.A <= S2.top2
                assertion S1.A <= S2.bottom2
                """
            )
        )
        result, _ = schema_integration(s1, s2, assertions)
        a_links = {parent for child, parent in result.is_a_links() if child == "A"}
        assert a_links == {"bottom2"}
