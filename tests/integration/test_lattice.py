"""Constraint lattices and lcs — Fig 13, Principle 6 (experiment E-X1)."""

import itertools

import pytest

from repro.errors import LatticeError
from repro.integration import EXTENDED_LATTICE, SIMPLE_LATTICE, lcs
from repro.model import Cardinality as C


class TestPaperExamples:
    def test_lcs_of_1n_and_m1_is_mn(self):
        # "[n : m] is lcs([1: m], [n : 1])"
        assert SIMPLE_LATTICE.lcs(C.ONE_TO_N, C.M_TO_ONE) is C.M_TO_N

    def test_lcs_of_11_and_m1_is_m1(self):
        # "[n : 1] is lcs([1: 1], [n : 1])"
        assert SIMPLE_LATTICE.lcs(C.ONE_TO_ONE, C.M_TO_ONE) is C.M_TO_ONE

    def test_node_is_lcs_of_itself(self):
        # "a node is considered to be the least common super-node of itself"
        for constraint in SIMPLE_LATTICE.members():
            assert SIMPLE_LATTICE.lcs(constraint, constraint) is constraint


class TestSimpleLattice:
    simple = [C.ONE_TO_ONE, C.ONE_TO_N, C.M_TO_ONE, C.M_TO_N]

    def test_bottom_and_top(self):
        for constraint in self.simple:
            assert SIMPLE_LATTICE.is_super(C.M_TO_N, constraint)
            assert SIMPLE_LATTICE.is_super(constraint, C.ONE_TO_ONE)

    def test_every_pair_has_unique_lcs(self):
        for left, right in itertools.product(self.simple, repeat=2):
            result = SIMPLE_LATTICE.lcs(left, right)
            assert SIMPLE_LATTICE.is_super(result, left)
            assert SIMPLE_LATTICE.is_super(result, right)

    def test_lcs_is_commutative(self):
        for left, right in itertools.product(self.simple, repeat=2):
            assert SIMPLE_LATTICE.lcs(left, right) is SIMPLE_LATTICE.lcs(right, left)

    def test_lcs_is_least(self):
        # No strictly lower common super-node exists.
        for left, right in itertools.product(self.simple, repeat=2):
            result = SIMPLE_LATTICE.lcs(left, right)
            for candidate in SIMPLE_LATTICE.common_supers(left, right):
                assert SIMPLE_LATTICE.is_super(candidate, result)

    def test_mandatory_constraints_rejected(self):
        with pytest.raises(LatticeError):
            SIMPLE_LATTICE.lcs(C.MD_N_TO_ONE, C.ONE_TO_ONE)


class TestExtendedLattice:
    def test_mandatory_relaxes_to_plain(self):
        # Loosening "bottom-up, which is least loosened": md_n:1 with 1:1
        # meets at m:1 (drop mandatory, widen left).
        assert EXTENDED_LATTICE.lcs(C.MD_N_TO_ONE, C.ONE_TO_ONE) is C.M_TO_ONE

    def test_two_mandatory_constraints_stay_mandatory(self):
        assert (
            EXTENDED_LATTICE.lcs(C.MD_ONE_TO_N, C.MD_N_TO_ONE) is C.MD_N_TO_N
        )

    def test_mandatory_with_its_relaxation(self):
        assert EXTENDED_LATTICE.lcs(C.MD_ONE_TO_ONE, C.ONE_TO_ONE) is C.ONE_TO_ONE

    def test_every_pair_has_unique_lcs(self):
        for left, right in itertools.product(list(C), repeat=2):
            result = EXTENDED_LATTICE.lcs(left, right)
            assert EXTENDED_LATTICE.is_super(result, left)
            assert EXTENDED_LATTICE.is_super(result, right)
            for candidate in EXTENDED_LATTICE.common_supers(left, right):
                assert EXTENDED_LATTICE.is_super(candidate, result)

    def test_relaxation_chain_ends_at_top(self):
        for constraint in C:
            chain = EXTENDED_LATTICE.relaxation_chain(constraint)
            assert chain[0] is constraint
            assert chain[-1] is C.M_TO_N

    def test_module_level_lcs_uses_extended(self):
        assert lcs(C.MD_N_TO_ONE, C.MD_N_TO_ONE) is C.MD_N_TO_ONE

    def test_lcs_all_folds(self):
        assert (
            EXTENDED_LATTICE.lcs_all([C.ONE_TO_ONE, C.ONE_TO_N, C.M_TO_ONE])
            is C.M_TO_N
        )
        with pytest.raises(LatticeError):
            EXTENDED_LATTICE.lcs_all([])
