"""Principle 5: derivation rules — Examples 9, 10 and 11 (experiment E-R)."""

import pytest

from repro.assertions import AssertionSet, parse
from repro.integration import IntegratedSchema, apply_derivation
from repro.logic import Comparison, OTerm, Variable
from repro.workloads import bibliography, car_prices, genealogy


def run(scenario_schemas, text):
    s1, s2 = scenario_schemas
    assertions = AssertionSet(s1.name, s2.name)
    parsed = parse(text)
    assertions.extend(parsed)
    result = IntegratedSchema("IS")
    rules = []
    for assertion in parsed:
        if assertion.left_schema == s1.name:
            rules += apply_derivation(result, assertion, s1, s2)
        else:
            rules += apply_derivation(result, assertion, s2, s1)
    return result, rules


class TestExample9Uncle:
    @pytest.fixture
    def uncle_rule(self):
        s1, s2, text, _ = genealogy(populated=False)
        result, rules = run((s1, s2), text)
        [rule] = rules
        return result, rule

    def test_single_rule_generated(self, uncle_rule):
        _, rule = uncle_rule
        assert len(rule.heads) == 1
        assert len(rule.body) == 2

    def test_head_is_uncle_oterm(self, uncle_rule):
        _, rule = uncle_rule
        head = rule.heads[0]
        assert isinstance(head, OTerm)
        assert head.class_name == "uncle"
        assert set(head.descriptors()) == {"Ussn#", "niece_nephew"}

    def test_variable_sharing_matches_paper(self, uncle_rule):
        """Bssn# shares with Ussn#; Pssn# with brothers; children with
        niece_nephew — the three reverse substitutions of Example 9."""
        _, rule = uncle_rule
        head = rule.heads[0]
        oterms = {item.element.class_name: item.element for item in rule.body}
        assert head.binding("Ussn#") == oterms["brother"].binding("Bssn#")
        assert oterms["parent"].binding("Pssn#") == oterms["brother"].binding("brothers")
        assert head.binding("niece_nephew") == oterms["parent"].binding("children")

    def test_rule_is_evaluable(self, uncle_rule):
        result, _ = uncle_rule
        assert all(r.evaluable for r in result.rules_by_principle("P5"))


class TestExample10Cars:
    def test_one_rule_per_car_name(self):
        s1, s2, text = car_prices(("vw", "bmw", "opel"))
        result, rules = run((s1, s2), text)
        assert len(rules) == 3

    def test_rule_shape_matches_example_10(self):
        s1, s2, text = car_prices(("vw",))
        _, [rule] = run((s1, s2), text)
        head = rule.heads[0]
        assert head.class_name == "car1"
        # time shared between head and body; price bound to the vw column;
        # car-name constrained by the predicate  x = 'vw'.
        [body_oterm] = [i.element for i in rule.body if isinstance(i.element, OTerm)]
        assert head.binding("time") == body_oterm.binding("time")
        assert head.binding("price") == body_oterm.binding("vw")
        [predicate] = [
            i.element for i in rule.body if isinstance(i.element, Comparison)
        ]
        assert predicate.right.value == "vw"
        assert predicate.left == head.binding("car-name")

    def test_rules_evaluate_schematic_discrepancy(self):
        """car2's per-car attributes answer car1-style queries."""
        from repro.logic import Atom, FactStore, QueryEngine, att_predicate, inst_predicate

        s1, s2, text = car_prices(("vw", "bmw"))
        result, rules = run((s1, s2), text)
        store = FactStore()
        store.add(inst_predicate("car2"), ("t1",))
        store.add(att_predicate("car2", "time"), ("t1", "March"))
        store.add(att_predicate("car2", "vw"), ("t1", 20000))
        store.add(att_predicate("car2", "bmw"), ("t1", 50000))
        engine = QueryEngine([r.rule for r in result.rules if r.evaluable], store)
        rows = engine.ask(
            Atom.of(att_predicate("car1", "car-name"), "?o", "?n"),
            Atom.of(att_predicate("car1", "price"), "?o", "?p"),
        )
        answers = {(row["n"], row["p"]) for row in rows}
        assert answers == {("vw", 20000), ("bmw", 50000)}


class TestExample11BookAuthor:
    def test_two_directional_rules(self):
        s1, s2, text = bibliography()
        result, rules = run((s1, s2), text)
        assert len(rules) == 2
        heads = {rule.heads[0].class_name for rule in rules}
        assert heads == {"Book", "Author"}

    def test_nested_paths_become_dotted_descriptors(self):
        s1, s2, text = bibliography()
        _, rules = run((s1, s2), text)
        book_rule = next(r for r in rules if r.heads[0].class_name == "Book")
        head = book_rule.heads[0]
        body = book_rule.body[0].element
        # Shared variables thread Book.ISBN/title with Author.book.*:
        assert head.binding("ISBN") == body.binding("book.ISBN")
        assert head.binding("title") == body.binding("book.title")
        # ... and the nested author record with Author's own attributes.
        assert head.binding("author.name") == body.binding("name")
        assert head.binding("author.birthday") == body.binding("birthday")

    def test_derived_virtual_objects_answer_queries(self):
        """Ada's nested book record materializes as a Book answer."""
        import datetime

        from repro.logic import Atom, QueryEngine, att_predicate, facts_from_database
        from repro.model import ObjectDatabase

        s1, s2, text = bibliography()
        result, rules = run((s1, s2), text)
        db2 = ObjectDatabase(s2, agent="a2")
        db2.insert(
            "Author",
            {
                "name": "Ada",
                "birthday": datetime.date(1815, 12, 10),
                "book": {"ISBN": "0-19-2", "title": "Notes"},
            },
        )
        store = facts_from_database(db2)
        engine = QueryEngine([r.rule for r in result.rules if r.evaluable], store)
        rows = engine.ask(Atom.of(att_predicate("Book", "title"), "?o", "?t"))
        assert [row["t"] for row in rows] == ["Notes"]


class TestDeterminism:
    def test_same_input_same_rules(self):
        s1, s2, text, _ = genealogy(populated=False)
        _, rules_a = run((s1, s2), text)
        _, rules_b = run((s1, s2), text)
        assert [str(r) for r in rules_a] == [str(r) for r in rules_b]

    def test_wrong_kind_rejected(self):
        from repro.assertions import equivalence
        from repro.errors import IntegrationError

        s1, s2, _, _ = genealogy(populated=False)
        with pytest.raises(IntegrationError):
            apply_derivation(
                IntegratedSchema("IS"), equivalence("S1.parent", "S2.uncle"), s1, s2
            )
