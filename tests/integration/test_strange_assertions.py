"""§6.1 observation 3's safety valve: assertions under ∅/→ pairs.

"If such pairs exist, we may, for the purpose of safety, inform the
user that something is strange, and ask her or him whether the
assertion is correct or a mistake. (This is the only case where user
interference is required.)"  The implementation warns in the build log
and honours the declaration.
"""

from repro.assertions import AssertionSet, parse
from repro.integration import schema_integration
from repro.model import ClassDef, Schema


def build():
    s1 = Schema("S1")
    s1.add_class(ClassDef("man").attr("ssn#"))
    s1.add_class(ClassDef("man_student", parents=["man"]).attr("uni"))
    s2 = Schema("S2")
    s2.add_class(ClassDef("woman").attr("ssn#"))
    s2.add_class(ClassDef("woman_student", parents=["woman"]).attr("uni"))
    return s1, s2


def test_plain_disjoint_skips_descendant_pairs_silently():
    s1, s2 = build()
    assertions = AssertionSet("S1", "S2")
    assertions.extend(parse("assertion S1.man ! S2.woman"))
    result, stats = schema_integration(s1, s2, assertions)
    assert not any("WARNING" in note for note in result.log)
    # the skipped pairs were never checked
    assert stats.pairs_checked <= 4


def test_declared_assertion_below_disjoint_pair_warns_and_is_honoured():
    s1, s2 = build()
    assertions = AssertionSet("S1", "S2")
    assertions.extend(
        parse(
            """
            assertion S1.man ! S2.woman
            # strange: a subclass pair declared despite the parents' ∅
            assertion S1.man_student ^ S2.woman_student
            """
        )
    )
    result, _ = schema_integration(s1, s2, assertions)
    warnings = [note for note in result.log if "WARNING" in note]
    assert len(warnings) == 1
    assert "man_student" in warnings[0] and "woman_student" in warnings[0]
    # honoured: the intersection's virtual class exists
    assert "man_student_woman_student" in result.classes


def test_declared_assertion_below_derivation_pair_warns():
    s1 = Schema("S1")
    s1.add_class(ClassDef("parent").attr("Pssn#"))
    s1.add_class(ClassDef("brother").attr("Bssn#").attr("brothers", multivalued=True))
    s1.add_class(ClassDef("old_brother", parents=["brother"]))
    s2 = Schema("S2")
    s2.add_class(ClassDef("uncle").attr("Ussn#"))
    s2.add_class(ClassDef("rich_uncle", parents=["uncle"]))
    assertions = AssertionSet("S1", "S2")
    assertions.extend(
        parse(
            """
            assertion S1(parent, brother) -> S2.uncle
              attr S1.brother.Bssn# == S2.uncle.Ussn#
            end
            assertion S1.old_brother <= S2.rich_uncle
            """
        )
    )
    result, _ = schema_integration(s1, s2, assertions)
    warnings = [note for note in result.log if "WARNING" in note]
    assert warnings
    # the inclusion is still realized
    assert ("old_brother", "rich_uncle") in result.is_a_links()
