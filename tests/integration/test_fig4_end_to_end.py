"""Fig 4's four assertions integrated together — one end-to-end pass.

Exercises all assertion kinds simultaneously on the paper's own §4
example suite: equivalence with composed-into, inclusion with member
correspondences, intersection with an AIF, exclusion with a reverse
aggregation — plus the supporting publisher ≡ press context.
"""

import pytest

from repro.core import SchemaIntegrator
from repro.integration import ValueSetOp
from repro.model import Cardinality
from repro.workloads import fig4_suite


@pytest.fixture(scope="module")
def integrated():
    s1, s2, text = fig4_suite()
    return SchemaIntegrator(s1, s2, text).run()


class TestFig4a:
    def test_person_human_merged_with_address(self, integrated):
        merged = integrated.cls(integrated.is_name("S1", "person"))
        assert "address" in merged.attributes
        assert merged.attributes["address"].spec.op is ValueSetOp.CONCATENATION
        assert merged.attributes["interests"].spec.op is ValueSetOp.UNION


class TestFig4b:
    def test_book_included_in_publication(self, integrated):
        book = integrated.is_name("S1", "book")
        publication = integrated.is_name("S2", "publication")
        assert integrated.has_is_a_path(book, publication)

    def test_publication_keeps_merged_aggregation_target(self, integrated):
        publication = integrated.cls(integrated.is_name("S2", "publication"))
        assert "published_by" in publication.aggregations
        target = publication.aggregations["published_by"].range_class
        assert target == integrated.is_name("S2", "press")


class TestFig4c:
    def test_intersection_virtual_classes(self, integrated):
        assert integrated.cls("faculty_student").virtual
        assert integrated.cls("faculty_only").virtual
        assert integrated.cls("student_only").virtual

    def test_aif_attribute_present(self, integrated):
        common = integrated.cls("faculty_student")
        assert "income_study_support" in common.attributes

    def test_merged_work_in_cardinality_is_lcs(self, integrated):
        # S1 work_in [m:1], S2 work_in [m:n] → lcs [m:n]
        common = integrated.cls("faculty_student")
        assert common.aggregations["work_in"].cardinality is Cardinality.M_TO_N


class TestFig4d:
    def test_disjoint_complement_rule(self, integrated):
        complements = [
            r for r in integrated.rules_by_principle("P4") if "¬" in str(r.rule)
        ]
        assert complements, "expected the woman ⇐ person \\ man rule"

    def test_reverse_spouse_rules(self, integrated):
        spouse_rules = [
            r for r in integrated.rules_by_principle("P4") if "spouse" in str(r.rule)
        ]
        assert len(spouse_rules) == 2

    def test_man_woman_remain_disjoint_classes(self, integrated):
        assert integrated.is_name("S1", "man") != integrated.is_name("S2", "woman")


class TestWholeSchema:
    def test_every_local_class_placed(self, integrated):
        s1, s2, _ = fig4_suite()
        for schema in (s1, s2):
            for class_name in schema.class_names:
                assert integrated.is_name(schema.name, class_name) is not None

    def test_no_pending_range_tokens(self, integrated):
        from repro.integration import parse_range_token

        for integrated_class in integrated:
            for aggregation in integrated_class.aggregations.values():
                assert parse_range_token(aggregation.range_class) is None

    def test_all_evaluable_rules_safe(self, integrated):
        from repro.logic.safety import violations

        for integrated_rule in integrated.rules:
            if integrated_rule.evaluable:
                for compiled in integrated_rule.rule.compile():
                    assert not violations(compiled)
