"""AIFs, re-mappings, concatenation and the naming policy."""

import pytest

from repro.errors import IntegrationError
from repro.integration import (
    AIFRegistry,
    NamePolicy,
    ReMapping,
    average_aif,
    concatenation,
    prefer_left_aif,
)


class TestAIF:
    def test_paper_average(self):
        assert average_aif(100, 50) == 75

    def test_average_null_on_missing(self):
        assert average_aif(None, 50) is None
        assert average_aif(100, None) is None

    def test_average_rejects_non_numeric(self):
        with pytest.raises(IntegrationError, match="custom AIF"):
            average_aif("a", "b")

    def test_prefer_left(self):
        assert prefer_left_aif("x", "y") == "x"
        assert prefer_left_aif(None, "y") == "y"

    def test_registry_default_and_override(self):
        registry = AIFRegistry()
        assert registry.resolve("anything").name == "average"
        registry.register("income", "max", max)
        assert registry.resolve("income")(3, 9) == 9
        assert registry.registered() == ("income",)


class TestReMapping:
    def test_paper_re_function_semantics(self):
        re_mapping = ReMapping()
        re_mapping.record("fssn#", "S1", "faculty", "fssn#")
        re_mapping.record("fssn#", "S2", "student", "ssn#")
        assert re_mapping.resolve("S1", "fssn#") == ("faculty", "fssn#")
        assert re_mapping.resolve("S2", "fssn#") == ("student", "ssn#")
        assert re_mapping.resolve("S3", "fssn#") is None
        assert len(re_mapping) == 2


class TestConcatenation:
    def test_paper_cancatenation(self):
        assert concatenation("Darmstadt", "64293") == "Darmstadt 64293"

    def test_null_on_missing_partner(self):
        assert concatenation(None, "64293") is None
        assert concatenation("Darmstadt", None) is None

    def test_literal_separator(self):
        assert concatenation("a", "b", separator="") == "ab"


class TestNamePolicy:
    def test_merged_defaults_to_left(self):
        assert NamePolicy().merged("person", "human") == "person"

    def test_override_wins(self):
        policy = NamePolicy({("person", "human"): "individual"})
        assert policy.merged("person", "human") == "individual"

    def test_local_disambiguates_on_collision(self):
        policy = NamePolicy()
        assert policy.local("S2", "stock", taken=False) == "stock"
        assert policy.local("S2", "stock", taken=True) == "S2_stock"

    def test_principle3_spellings(self):
        policy = NamePolicy()
        assert policy.intersection_class("faculty", "student") == "faculty_student"
        assert policy.left_only_class("faculty", "student") == "faculty_only"
        assert policy.right_only_class("faculty", "student") == "student_only"
        assert policy.intersection_attribute("income", "support") == "income_support"
