"""Principle 1: equivalence merging — attribute & aggregation cases."""

import pytest

from repro.assertions import AssertionSet, parse
from repro.errors import IntegrationError
from repro.integration import (
    IntegratedSchema,
    ValueSetOp,
    apply_equivalence,
)
from repro.model import Cardinality, ClassDef, Schema
from repro.workloads import fig4_suite


def build(text, s1, s2):
    assertions = AssertionSet(s1.name, s2.name)
    assertions.extend(parse(text))
    assertions.validate(s1, s2)
    return assertions


@pytest.fixture
def fig4():
    s1, s2, text = fig4_suite()
    assertions = build(text, s1, s2)
    return s1, s2, assertions


def merged_person(fig4):
    s1, s2, assertions = fig4
    result = IntegratedSchema("IS")
    lookup = assertions.lookup("person", "human")
    merged = apply_equivalence(
        result, lookup.oriented_assertion(), s1, s2, assertions
    )
    return result, merged


class TestExample6:
    """Example 6: the integrated person/human class."""

    def test_merged_class_named_after_left(self, fig4):
        result, merged = merged_person(fig4)
        assert merged.name == "person"
        assert result.is_name("S1", "person") == "person"
        assert result.is_name("S2", "human") == "person"

    def test_equivalent_attributes_union(self, fig4):
        _, merged = merged_person(fig4)
        ssn = merged.attributes["ssn#"]
        assert ssn.spec.op is ValueSetOp.UNION
        assert set(ssn.origins) == {
            ("S1", "person", "ssn#"), ("S2", "human", "hssn#"),
        }

    def test_composed_into_creates_address(self, fig4):
        _, merged = merged_person(fig4)
        address = merged.attributes["address"]
        assert address.spec.op is ValueSetOp.CONCATENATION

    def test_inclusion_attributes_also_union(self, fig4):
        # interests ⊇ hobby — still a single merged attribute.
        _, merged = merged_person(fig4)
        assert merged.attributes["interests"].spec.op is ValueSetOp.UNION

    def test_source_attributes_not_duplicated(self, fig4):
        _, merged = merged_person(fig4)
        names = set(merged.attributes)
        assert names == {"ssn#", "full_name", "address", "interests"}


class TestAttributeCases:
    def make(self, corr_line):
        s1 = Schema("S1")
        s1.add_class(ClassDef("a").attr("x").attr("p"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("b").attr("y").attr("q"))
        text = f"assertion S1.a == S2.b\n  {corr_line}\nend"
        assertions = build(text, s1, s2)
        result = IntegratedSchema("IS")
        merged = apply_equivalence(
            result, assertions.lookup("a", "b").oriented_assertion(), s1, s2, assertions
        )
        return merged

    def test_intersection_splits_into_three(self):
        merged = self.make("attr S1.a.x ^ S2.b.y")
        assert {"x_only", "y_only", "x_y"} <= set(merged.attributes)
        assert merged.attributes["x_only"].spec.op is ValueSetOp.DIFFERENCE
        assert merged.attributes["x_y"].spec.op is ValueSetOp.INTERSECTION

    def test_exclusion_keeps_both(self):
        merged = self.make("attr S1.a.x ! S2.b.y")
        assert "x" in merged.attributes and "y" in merged.attributes
        assert merged.attributes["x"].spec.op is ValueSetOp.LOCAL

    def test_more_specific_keeps_left_only(self):
        merged = self.make("attr S1.a.x beta S2.b.y")
        assert "x" in merged.attributes
        assert "y" not in merged.attributes

    def test_unmentioned_attributes_accumulated(self):
        merged = self.make("attr S1.a.x == S2.b.y")
        assert "p" in merged.attributes and "q" in merged.attributes


class TestAggregationCases:
    def test_equivalent_aggs_merge_with_lcs(self, fig4):
        s1, s2, assertions = fig4
        result = IntegratedSchema("IS")
        merged = apply_equivalence(
            result, assertions.lookup("publisher", "press").oriented_assertion(),
            s1, s2, assertions,
        )
        # now merge faculty∩student? No — test book/publication via P1 on
        # a direct equivalence instead; see intersection tests for ∩.
        assert merged.name == "publisher"

    def test_reverse_agg_keeps_both_with_local_ccs(self):
        s1 = Schema("S1")
        s1.add_class(ClassDef("man").agg("spouse", "man", "[1:1]"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("woman").agg("spouse", "woman", "[md_1:1]"))
        text = "assertion S1.man == S2.woman\n  agg S1.man.spouse rev S2.woman.spouse\nend"
        assertions = build(text, s1, s2)
        result = IntegratedSchema("IS")
        merged = apply_equivalence(
            result, assertions.lookup("man", "woman").oriented_assertion(),
            s1, s2, assertions,
        )
        ccs = {agg.cardinality for agg in merged.aggregations.values()}
        assert ccs == {Cardinality.ONE_TO_ONE, Cardinality.MD_ONE_TO_ONE}

    def test_merged_agg_uses_lattice_lcs(self):
        s1 = Schema("S1")
        s1.add_class(ClassDef("dept"))
        s1.add_class(ClassDef("a").agg("f", "dept", "[1:n]"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("unit"))
        s2.add_class(ClassDef("b").agg("g", "unit", "[m:1]"))
        text = (
            "assertion S1.dept == S2.unit\n"
            "assertion S1.a == S2.b\n  agg S1.a.f == S2.b.g\nend"
        )
        assertions = build(text, s1, s2)
        result = IntegratedSchema("IS")
        merged = apply_equivalence(
            result, assertions.lookup("a", "b").oriented_assertion(), s1, s2, assertions
        )
        assert merged.aggregations["f"].cardinality is Cardinality.M_TO_N


class TestGuards:
    def test_wrong_kind_rejected(self, fig4):
        s1, s2, assertions = fig4
        result = IntegratedSchema("IS")
        with pytest.raises(IntegrationError):
            apply_equivalence(
                result,
                assertions.lookup("faculty", "student").oriented_assertion(),
                s1, s2, assertions,
            )

    def test_idempotent_per_pair(self, fig4):
        s1, s2, assertions = fig4
        result = IntegratedSchema("IS")
        oriented = assertions.lookup("person", "human").oriented_assertion()
        first = apply_equivalence(result, oriented, s1, s2, assertions)
        second = apply_equivalence(result, oriented, s1, s2, assertions)
        assert first is second
