"""Experiment E-A: the Appendix A sample integration, end to end.

Verifies the semantic outputs of the paper's step-by-step trace
(Example 12, Fig 18) and the three "features of the algorithms" it
highlights.
"""

import pytest

from repro.assertions import AssertionSet, parse
from repro.core import SchemaIntegrator
from repro.workloads import appendix_a


@pytest.fixture(scope="module")
def integrated():
    s1, s2, text = appendix_a()
    integrator = SchemaIntegrator(s1, s2, text)
    return integrator.run(), integrator.stats


class TestFig18c:
    def test_person_and_human_merged(self, integrated):
        result, _ = integrated
        assert result.is_name("S1", "person") == "person"
        assert result.is_name("S2", "human") == "person"

    def test_single_is_a_link_for_lecturer(self, integrated):
        """Feature 2: only is_a(lecturer, faculty) is created; the links
        to employee are redundant and never generated."""
        result, _ = integrated
        links = result.is_a_links()
        assert ("lecturer", "faculty") in links
        assert ("lecturer", "employee") not in links
        assert ("teaching_assistant", "employee") not in links
        assert ("teaching_assistant", "faculty") not in links

    def test_local_hierarchy_preserved(self, integrated):
        result, _ = integrated
        links = result.is_a_links()
        assert ("student", "person") in links
        assert ("employee", "person") in links
        assert ("faculty", "employee") in links
        assert ("professor", "faculty") in links
        assert ("teaching_assistant", "lecturer") in links

    def test_intersection_rules_for_student_faculty(self, integrated):
        result, _ = integrated
        rules = [str(r.rule) for r in result.rules_by_principle("P3")]
        assert len(rules) == 3
        assert any("student_faculty" in text and "same_object" in text for text in rules)
        assert sum("¬" in text for text in rules) == 2

    def test_every_class_placed(self, integrated):
        result, _ = integrated
        for schema_name, class_name in [
            ("S1", "person"), ("S1", "student"), ("S1", "lecturer"),
            ("S1", "teaching_assistant"), ("S2", "human"), ("S2", "employee"),
            ("S2", "faculty"), ("S2", "professor"),
        ]:
            assert result.is_name(schema_name, class_name) is not None


class TestFeatures:
    def test_feature1_equivalence_pruning(self, integrated):
        """After person ≡ human, one-sided pairs like (student, human)
        and (person, employee) are never checked."""
        _, stats = integrated
        # The naive algorithm checks the full 4×4 = 16 pairs; the
        # optimized run checks strictly fewer.
        assert stats.pairs_checked < 16

    def test_feature3_labels_prevent_rechecks(self, integrated):
        """teaching_assistant inherits lecturer's label and is never
        checked against the labelled employee/faculty path."""
        _, stats = integrated
        assert stats.pairs_skipped_labels >= 1

    def test_depth_first_search_ran_once_per_subset_pair(self, integrated):
        _, stats = integrated
        # lecturer ⊆ employee triggers the only path_labelling call; the
        # teaching_assistant inclusions are label-skipped.
        assert stats.dfs_calls == 1

    def test_redundant_link_removed_by_section_6_2(self, integrated):
        _, stats = integrated
        # faculty→person (via merged human parent) becomes redundant once
        # employee→person and faculty→employee are present.
        assert stats.is_a_links_removed >= 0  # pass must have run
        result, _ = integrated
        for child, parent in result.is_a_links():
            result.remove_is_a(child, parent)
            redundant = result.has_is_a_path(child, parent)
            result.add_is_a(child, parent)
            assert not redundant, f"is_a({child}, {parent}) is redundant"


class TestAgainstNaive:
    def test_same_semantic_output_fewer_checks(self):
        s1, s2, text = appendix_a()
        optimized = SchemaIntegrator(s1, s2, text, algorithm="optimized")
        naive = SchemaIntegrator(s1, s2, text, algorithm="naive")
        r_opt, r_naive = optimized.run(), naive.run()
        assert set(r_opt.is_a_links()) == set(r_naive.is_a_links())
        assert set(r_opt.classes) == set(r_naive.classes)
        assert optimized.stats.pairs_checked < naive.stats.pairs_checked
