"""Integration reports."""

import pytest

from repro.core import SchemaIntegrator
from repro.integration import build_report, render_markdown
from repro.workloads import appendix_a, fig4_suite


@pytest.fixture(scope="module")
def appendix_a_report():
    s1, s2, text = appendix_a()
    integrator = SchemaIntegrator(s1, s2, text)
    integrator.run()
    return build_report(integrator.result, integrator.stats)


class TestBuild:
    def test_class_partition_sums(self, appendix_a_report):
        report = appendix_a_report
        assert (
            report.merged_classes + report.copied_classes + report.virtual_classes
            == report.total_classes
        )

    def test_appendix_a_shape(self, appendix_a_report):
        report = appendix_a_report
        assert report.merged_classes == 1  # person/human
        assert report.virtual_classes == 3  # the Principle 3 trio
        assert dict(report.rules_by_principle) == {"P3": 3}
        assert report.warnings == ()

    def test_stats_embedded(self, appendix_a_report):
        assert appendix_a_report.stats is not None
        assert appendix_a_report.stats.pairs_checked > 0

    def test_fig4_has_p4_rules(self):
        s1, s2, text = fig4_suite()
        integrator = SchemaIntegrator(s1, s2, text)
        integrator.run()
        report = build_report(integrator.result)
        principles = dict(report.rules_by_principle)
        assert "P3" in principles and "P4" in principles

    def test_warnings_collected(self):
        from repro.assertions import AssertionSet, parse
        from repro.integration import schema_integration
        from repro.model import ClassDef, Schema

        s1 = Schema("S1")
        s1.add_class(ClassDef("a"))
        s1.add_class(ClassDef("a_sub", parents=["a"]))
        s2 = Schema("S2")
        s2.add_class(ClassDef("b"))
        s2.add_class(ClassDef("b_sub", parents=["b"]))
        assertions = AssertionSet("S1", "S2")
        assertions.extend(
            parse("assertion S1.a ! S2.b\nassertion S1.a_sub ^ S2.b_sub")
        )
        result, stats = schema_integration(s1, s2, assertions)
        report = build_report(result, stats)
        assert len(report.warnings) == 1


class TestMarkdown:
    def test_renders_table_and_metrics(self, appendix_a_report):
        text = render_markdown(appendix_a_report)
        assert text.startswith("# Integration report")
        assert "| merged (≥ 2 origins) | 1 |" in text
        assert "| rules from P3 | 3 |" in text
        assert "pair checks" in text

    def test_cli_report_flag(self, tmp_path):
        from repro.cli import main
        import io

        left = tmp_path / "s1.schema"
        right = tmp_path / "s2.schema"
        dsl = tmp_path / "a.dsl"
        left.write_text("schema S1\nclass a\n  attr k: string\n")
        right.write_text("schema S2\nclass b\n  attr k: string\n")
        dsl.write_text("assertion S1.a == S2.b\n  attr S1.a.k == S2.b.k\nend\n")
        out = io.StringIO()
        status = main(["integrate", str(left), str(right), str(dsl), "--report"], out=out)
        assert status == 0
        assert "# Integration report" in out.getvalue()
