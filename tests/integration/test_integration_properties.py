"""Property-based invariants of the integration algorithms (hypothesis).

These are the repository's strongest correctness guarantees: for *any*
generated workload, the optimized algorithm must agree semantically
with the naive one while never checking more pairs, and the integrated
schema must satisfy structural sanity conditions.
"""

from hypothesis import given, settings, strategies as st

from repro.integration import naive_schema_integration, schema_integration
from repro.workloads import mirrored_pair


@st.composite
def workloads(draw):
    size = draw(st.integers(min_value=3, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    eq = draw(st.floats(min_value=0.0, max_value=1.0))
    remaining = 1.0 - eq
    inc = draw(st.floats(min_value=0.0, max_value=remaining))
    remaining -= inc
    inter = draw(st.floats(min_value=0.0, max_value=remaining))
    excl = max(0.0, remaining - inter)
    return mirrored_pair(
        size,
        seed=seed,
        equivalence_fraction=eq,
        inclusion_fraction=inc,
        intersection_fraction=inter,
        exclusion_fraction=excl,
    )


@given(workloads())
@settings(max_examples=30, deadline=None)
def test_optimized_never_checks_more_than_naive(workload):
    left, right, assertions = workload
    _, optimized = schema_integration(left, right, assertions)
    _, naive = naive_schema_integration(left, right, assertions)
    assert optimized.pairs_checked <= naive.pairs_checked


@given(workloads())
@settings(max_examples=30, deadline=None)
def test_algorithms_agree_on_classes_and_links(workload):
    left, right, assertions = workload
    result_opt, _ = schema_integration(left, right, assertions)
    result_naive, _ = naive_schema_integration(left, right, assertions)
    assert set(result_opt.classes) == set(result_naive.classes)
    assert set(result_opt.is_a_links()) == set(result_naive.is_a_links())


@given(workloads())
@settings(max_examples=30, deadline=None)
def test_every_local_class_is_placed(workload):
    left, right, assertions = workload
    result, _ = schema_integration(left, right, assertions)
    for schema in (left, right):
        for class_name in schema.class_names:
            assert result.is_name(schema.name, class_name) is not None


@given(workloads())
@settings(max_examples=30, deadline=None)
def test_integrated_is_a_is_acyclic_and_irredundant(workload):
    left, right, assertions = workload
    result, _ = schema_integration(left, right, assertions)
    # acyclic: no class reaches itself through a non-empty path
    for class_name in result.classes:
        for parent in result.parents(class_name):
            assert not result.has_is_a_path(parent, class_name)
    # irredundant (§6.2): removing any edge breaks reachability
    for child, parent in result.is_a_links():
        result.remove_is_a(child, parent)
        still_reachable = result.has_is_a_path(child, parent)
        result.add_is_a(child, parent)
        assert not still_reachable


@given(workloads())
@settings(max_examples=30, deadline=None)
def test_local_subclassing_preserved_in_integrated_schema(workload):
    """is-a semantics survive: local ancestors remain reachable."""
    left, right, assertions = workload
    result, _ = schema_integration(left, right, assertions)
    for schema in (left, right):
        for class_name in schema.class_names:
            child_is = result.is_name(schema.name, class_name)
            for ancestor in schema.ancestors(class_name):
                ancestor_is = result.is_name(schema.name, ancestor)
                assert result.has_is_a_path(child_is, ancestor_is), (
                    f"{schema.name}: {class_name} ⊑ {ancestor} lost "
                    f"({child_is} vs {ancestor_is})"
                )


@given(workloads())
@settings(max_examples=30, deadline=None)
def test_generated_rules_are_well_formed(workload):
    """Evaluable rules compile and pass the ref-[8] safety conditions."""
    from repro.logic.safety import violations

    left, right, assertions = workload
    result, _ = schema_integration(left, right, assertions)
    for integrated_rule in result.rules:
        if not integrated_rule.evaluable:
            continue
        for compiled in integrated_rule.rule.compile():
            assert violations(compiled) == [], str(integrated_rule.rule)


@given(workloads())
@settings(max_examples=20, deadline=None)
def test_aggregation_ranges_fully_resolved(workload):
    left, right, assertions = workload
    result, _ = schema_integration(left, right, assertions)
    from repro.integration import parse_range_token

    for integrated_class in result:
        for aggregation in integrated_class.aggregations.values():
            assert parse_range_token(aggregation.range_class) is None
            assert aggregation.range_class in result.classes
