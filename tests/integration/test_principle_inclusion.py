"""Principle 2: inclusion — is-a generation without redundancy (Fig 8)."""

import pytest

from repro.assertions import AssertionSet, parse
from repro.integration import (
    IntegratedSchema,
    apply_inclusion,
    apply_inclusions_generalized,
    most_specific_superclasses,
)
from repro.model import ClassDef, Schema, build_hierarchy


@pytest.fixture
def example7():
    """Example 7: professor ⊆ human, professor ⊆ employee; employee ⊆
    human holds locally in S2."""
    s1 = Schema("S1")
    s1.add_class(ClassDef("professor").attr("name"))
    s2 = Schema("S2")
    s2.add_class(ClassDef("human").attr("name"))
    s2.add_class(ClassDef("employee", parents=["human"]))
    text = """
    assertion S1.professor <= S2.human
    assertion S1.professor <= S2.employee
    """
    assertions = AssertionSet("S1", "S2")
    assertions.extend(parse(text))
    return s1, s2, assertions


class TestBasicForm:
    def test_single_link_inserted(self, example7):
        s1, s2, assertions = example7
        result = IntegratedSchema("IS")
        oriented = assertions.lookup("professor", "employee").oriented_assertion()
        assert apply_inclusion(result, oriented, s1, s2)
        assert ("professor", "employee") in result.is_a_links()

    def test_transitively_implied_link_not_added(self, example7):
        s1, s2, assertions = example7
        result = IntegratedSchema("IS")
        apply_inclusion(
            result, assertions.lookup("professor", "employee").oriented_assertion(),
            s1, s2,
        )
        from repro.integration import copy_local_class

        copy_local_class(result, s2, "human")
        result.add_is_a("employee", "human")
        # professor ⊆ human is already derivable.
        added = apply_inclusion(
            result, assertions.lookup("professor", "human").oriented_assertion(),
            s1, s2,
        )
        assert not added

    def test_wrong_kind_rejected(self, example7):
        from repro.assertions import equivalence
        from repro.errors import IntegrationError

        s1, s2, _ = example7
        with pytest.raises(IntegrationError):
            apply_inclusion(
                IntegratedSchema("IS"), equivalence("S1.professor", "S2.human"), s1, s2
            )


class TestMostSpecific:
    def test_chain_keeps_deepest(self):
        schema = build_hierarchy(
            "S2", [("B2", "B1"), ("B3", "B2"), ("B4", "B3")]
        )
        kept = most_specific_superclasses(schema, ["B1", "B2", "B3", "B4"])
        assert kept == ["B4"]

    def test_unrelated_targets_all_kept(self):
        schema = build_hierarchy("S2", [("B2", "B1")], extra=["C"])
        kept = most_specific_superclasses(schema, ["B2", "C"])
        assert set(kept) == {"B2", "C"}

    def test_example7_keeps_employee_only(self, example7):
        _, s2, _ = example7
        assert most_specific_superclasses(s2, ["human", "employee"]) == ["employee"]


class TestGeneralizedForm:
    def test_example7_generates_one_link(self, example7):
        s1, s2, assertions = example7
        result = IntegratedSchema("IS")
        inserted = apply_inclusions_generalized(result, assertions, s1, s2)
        assert inserted == [("professor", "employee")]

    def test_fig8_chain_generates_one_link(self):
        from repro.workloads import inclusion_chain

        s1, s2, assertions = inclusion_chain(5, declare_all=True)
        result = IntegratedSchema("IS")
        inserted = apply_inclusions_generalized(result, assertions, s1, s2)
        assert inserted == [("A", "B5")]

    def test_reverse_orientation_handled(self):
        s1 = Schema("S1")
        s1.add_class(ClassDef("big"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("small"))
        assertions = AssertionSet("S1", "S2")
        assertions.extend(parse("assertion S1.big >= S2.small"))
        result = IntegratedSchema("IS")
        inserted = apply_inclusions_generalized(result, assertions, s1, s2)
        assert inserted == [("small", "big")]
