"""IntegratedSchema: the result container's own API."""

import pytest

from repro.errors import IntegrationError, UnknownClassError
from repro.integration import (
    IntegratedAttribute,
    IntegratedClass,
    IntegratedSchema,
    ValueSetOp,
    ValueSetSpec,
)
from repro.logic import Atom, Rule


def make_class(name, origins=()):
    return IntegratedClass(name=name, origins=tuple(origins))


@pytest.fixture
def schema() -> IntegratedSchema:
    result = IntegratedSchema("IS")
    result.add_class(make_class("a", [("S1", "a")]))
    result.add_class(make_class("b", [("S2", "b")]))
    result.add_class(make_class("c", [("S1", "c"), ("S2", "c2")]))
    return result


class TestClasses:
    def test_is_map_from_origins(self, schema):
        assert schema.is_name("S1", "a") == "a"
        assert schema.is_name("S2", "c2") == "c"
        assert schema.is_name("S1", "ghost") is None

    def test_require_is_raises(self, schema):
        with pytest.raises(IntegrationError):
            schema.require_is("S1", "ghost")

    def test_duplicate_class_rejected(self, schema):
        with pytest.raises(IntegrationError):
            schema.add_class(make_class("a"))

    def test_map_origin_extends_provenance(self, schema):
        schema.map_origin("S3", "x", "a")
        assert schema.is_name("S3", "x") == "a"
        assert ("S3", "x") in schema.cls("a").origins

    def test_map_origin_unknown_class_rejected(self, schema):
        with pytest.raises(UnknownClassError):
            schema.map_origin("S3", "x", "ghost")

    def test_member_namespace_shared(self, schema):
        cls = schema.cls("a")
        cls.add_attribute(
            IntegratedAttribute("x", ValueSetSpec(ValueSetOp.LOCAL, ("S1", "a", "x")), ())
        )
        with pytest.raises(IntegrationError):
            cls.add_attribute(
                IntegratedAttribute(
                    "x", ValueSetSpec(ValueSetOp.LOCAL, ("S1", "a", "x")), ()
                )
            )


class TestLinks:
    def test_add_and_query(self, schema):
        assert schema.add_is_a("a", "b")
        assert not schema.add_is_a("a", "b")  # duplicate
        assert schema.parents("a") == ("b",)
        assert schema.children("b") == ("a",)

    def test_reflexive_rejected(self, schema):
        with pytest.raises(IntegrationError):
            schema.add_is_a("a", "a")

    def test_unknown_endpoint_rejected(self, schema):
        with pytest.raises(UnknownClassError):
            schema.add_is_a("a", "ghost")

    def test_path_reachability(self, schema):
        schema.add_is_a("a", "b")
        schema.add_is_a("b", "c")
        assert schema.has_is_a_path("a", "c")
        assert not schema.has_is_a_path("c", "a")

    def test_remove(self, schema):
        schema.add_is_a("a", "b")
        assert schema.remove_is_a("a", "b")
        assert not schema.remove_is_a("a", "b")


class TestRules:
    def test_rule_bookkeeping(self, schema):
        rule = Rule.of(Atom.of("p", "?x"), [Atom.of("q", "?x")])
        schema.add_rule(rule, principle="P3")
        schema.add_rule(rule, principle="P4", evaluable=False)
        assert len(schema.evaluable_rules()) == 1
        assert len(schema.rules_by_principle("P4")) == 1

    def test_describe_includes_everything(self, schema):
        schema.add_is_a("a", "b")
        schema.add_rule(
            Rule.of(Atom.of("p", "?x"), [Atom.of("q", "?x")]), principle="P3"
        )
        text = schema.describe()
        assert "is_a(a, b)" in text
        assert "rules:" in text


class TestModelProjection:
    def test_to_model_schema_preserves_shape(self, schema):
        schema.add_is_a("a", "b")
        cls = schema.cls("a")
        cls.add_attribute(
            IntegratedAttribute("x", ValueSetSpec(ValueSetOp.LOCAL, ("S1", "a", "x")), ())
        )
        projected = schema.to_model_schema()
        assert set(projected.class_names) == {"a", "b", "c"}
        assert ("a", "b") in projected.is_a_links()
        assert projected.cls("a").has_member("x")
