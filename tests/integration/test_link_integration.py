"""§6.2 link integration: local links, redundancy removal, ranges."""

import pytest

from repro.assertions import AssertionSet, parse
from repro.integration import (
    IntegratedSchema,
    IntegrationStats,
    apply_equivalence,
    copy_local_class,
    finalize_aggregation_ranges,
    insert_local_links,
    merge_parallel_aggregations,
    remove_redundant_is_a,
)
from repro.model import Cardinality, ClassDef, Schema


def schemas_with_equivalent_pairs():
    """The Fig 12(a) setting: A' ≡ B', A ≡ B with parallel local links."""
    s1 = Schema("S1")
    s1.add_class(ClassDef("Ap").attr("x"))
    s1.add_class(ClassDef("A", parents=["Ap"]).attr("y"))
    s2 = Schema("S2")
    s2.add_class(ClassDef("Bp").attr("x"))
    s2.add_class(ClassDef("B", parents=["Bp"]).attr("y"))
    text = """
    assertion S1.Ap == S2.Bp
    assertion S1.A == S2.B
    """
    assertions = AssertionSet("S1", "S2")
    assertions.extend(parse(text))
    return s1, s2, assertions


class TestFig12a:
    def test_duplicate_local_links_collapse(self):
        s1, s2, assertions = schemas_with_equivalent_pairs()
        result = IntegratedSchema("IS")
        for pair in (("Ap", "Bp"), ("A", "B")):
            apply_equivalence(
                result, assertions.lookup(*pair).oriented_assertion(),
                s1, s2, assertions,
            )
        stats = IntegrationStats()
        inserted = insert_local_links(result, {"S1": s1, "S2": s2}, stats)
        # Both local is_a(A, Ap) and is_a(B, Bp) map to one merged link.
        assert inserted == [("A", "Ap")]


class TestFig12b:
    def test_shortcut_edge_removed(self):
        result = IntegratedSchema("IS")
        schema = Schema("X")
        for name in ("a", "b", "c"):
            schema.add_class(ClassDef(name))
        for name in ("a", "b", "c"):
            copy_local_class(result, schema, name)
        result.add_is_a("a", "b")
        result.add_is_a("b", "c")
        result.add_is_a("a", "c")  # the * edge of Fig 12(b)
        stats = IntegrationStats()
        removed = remove_redundant_is_a(result, stats)
        assert removed == [("a", "c")]
        assert set(result.is_a_links()) == {("a", "b"), ("b", "c")}

    def test_non_redundant_edges_kept(self):
        result = IntegratedSchema("IS")
        schema = Schema("X")
        for name in ("a", "b", "c"):
            schema.add_class(ClassDef(name))
            copy_local_class(result, schema, name)
        result.add_is_a("a", "b")
        result.add_is_a("a", "c")
        stats = IntegrationStats()
        assert remove_redundant_is_a(result, stats) == []


class TestRanges:
    def test_pending_range_tokens_resolved(self):
        schema = Schema("S1")
        schema.add_class(ClassDef("Dept").attr("d"))
        schema.add_class(ClassDef("Empl").agg("work_in", "Dept", "[m:1]"))
        result = IntegratedSchema("IS")
        copy_local_class(result, schema, "Empl")
        finalize_aggregation_ranges(result, {"S1": schema})
        agg = result.cls("Empl").aggregations["work_in"]
        assert agg.range_class == "Dept"
        assert "Dept" in result.classes  # copied on demand

    def test_transitive_range_copying(self):
        schema = Schema("S1")
        schema.add_class(ClassDef("C").attr("x"))
        schema.add_class(ClassDef("B").agg("f", "C"))
        schema.add_class(ClassDef("A").agg("g", "B"))
        result = IntegratedSchema("IS")
        copy_local_class(result, schema, "A")
        finalize_aggregation_ranges(result, {"S1": schema})
        assert {"A", "B", "C"} <= set(result.classes)


class TestParallelAggregations:
    def test_same_name_same_range_merge_with_lcs(self):
        result = IntegratedSchema("IS")
        from repro.integration import IntegratedAggregation, IntegratedClass

        cls = IntegratedClass("X", origins=(("S1", "X"),))
        cls.add_aggregation(
            IntegratedAggregation("f", "R", Cardinality.ONE_TO_N, (("S1", "X", "f"),))
        )
        cls.add_aggregation(
            IntegratedAggregation(
                "S2_f", "R", Cardinality.M_TO_ONE, (("S2", "Y", "f"),)
            )
        )
        result.add_class(cls)
        # Different base names don't merge...
        assert merge_parallel_aggregations(result) == 0
        # ...but identical base names (post-merge duplicates) do:
        cls.aggregations.pop("S2_f")
        cls.aggregations["f$dup"] = IntegratedAggregation(
            "f$dup", "R", Cardinality.M_TO_ONE, (("S2", "Y", "f"),)
        )
        cls.aggregations["f$dup"].name = "f$dup"
        merged = merge_parallel_aggregations(result)
        assert merged == 1
        [survivor] = cls.aggregations.values()
        assert survivor.cardinality is Cardinality.M_TO_N
