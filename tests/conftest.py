"""Shared fixtures: the paper's scenarios, built once per test."""

import pytest

from repro.workloads import (
    appendix_a,
    bibliography,
    car_prices,
    fig4_suite,
    genealogy,
    stock_market,
)


@pytest.fixture
def appendix_a_scenario():
    return appendix_a()


@pytest.fixture
def genealogy_scenario():
    return genealogy()


@pytest.fixture
def bibliography_scenario():
    return bibliography()


@pytest.fixture
def stock_scenario():
    return stock_market()


@pytest.fixture
def car_scenario():
    return car_prices()


@pytest.fixture
def fig4_scenario():
    return fig4_suite()
