"""Terms, forward substitutions and unification."""

import pytest

from repro.errors import LogicError
from repro.logic import (
    Atom,
    Constant,
    EMPTY,
    Substitution,
    Variable,
    VariableFactory,
    make_term,
    unify_atoms,
    unify_terms,
)


class TestTerms:
    def test_make_term_lifts_question_mark_strings(self):
        assert make_term("?x") == Variable("x")

    def test_make_term_wraps_plain_values(self):
        assert make_term("John") == Constant("John")
        assert make_term(42) == Constant(42)

    def test_make_term_passes_terms_through(self):
        v = Variable("x")
        assert make_term(v) is v

    def test_bare_question_mark_is_a_constant(self):
        assert make_term("?") == Constant("?")

    def test_constant_requires_hashable(self):
        with pytest.raises(LogicError):
            Constant(["unhashable"])

    def test_variable_factory_is_fresh(self):
        factory = VariableFactory()
        assert factory.fresh() != factory.fresh()

    def test_variable_factory_named_hint(self):
        factory = VariableFactory()
        assert factory.fresh_named("ssn").name.startswith("ssn_")


class TestSubstitution:
    def test_apply_follows_chains(self):
        s = Substitution({Variable("x"): Variable("y"), Variable("y"): Constant(1)})
        assert s.apply(Variable("x")) == Constant(1)

    def test_bind_consistent_extension(self):
        s = EMPTY.bind(Variable("x"), Constant(1))
        assert s is not None
        assert s.apply(Variable("x")) == Constant(1)

    def test_bind_conflict_returns_none(self):
        s = EMPTY.bind(Variable("x"), Constant(1))
        assert s.bind(Variable("x"), Constant(2)) is None

    def test_bind_same_value_is_noop(self):
        s = EMPTY.bind(Variable("x"), Constant(1))
        assert s.bind(Variable("x"), Constant(1)) is s

    def test_bind_variable_to_variable_then_ground(self):
        s = EMPTY.bind(Variable("x"), Variable("y"))
        s = s.bind(Variable("y"), Constant(3))
        assert s.apply(Variable("x")) == Constant(3)

    def test_compose_applies_left_then_right(self):
        left = Substitution({Variable("x"): Variable("y")})
        right = Substitution({Variable("y"): Constant(7)})
        composed = left.compose(right)
        assert composed.apply(Variable("x")) == Constant(7)

    def test_identity_bindings_dropped(self):
        s = Substitution({Variable("x"): Variable("x")})
        assert len(s) == 0


class TestUnify:
    def test_unify_variable_with_constant(self):
        s = unify_terms(Variable("x"), Constant(5))
        assert s.apply(Variable("x")) == Constant(5)

    def test_unify_two_constants_fails_when_distinct(self):
        assert unify_terms(Constant(1), Constant(2)) is None

    def test_unify_atoms_matches_paper_predicates(self):
        pattern = Atom.of("uncle", "?x", "?z")
        fact = Atom.of("uncle", "John", "Bill")
        s = unify_atoms(pattern, fact)
        assert s.apply(Variable("x")) == Constant("John")
        assert s.apply(Variable("z")) == Constant("Bill")

    def test_unify_atoms_rejects_different_predicates(self):
        assert unify_atoms(Atom.of("p", "?x"), Atom.of("q", "?x")) is None

    def test_unify_atoms_rejects_different_arity(self):
        assert unify_atoms(Atom.of("p", "?x"), Atom.of("p", "?x", "?y")) is None

    def test_shared_variables_must_agree(self):
        pattern = Atom.of("p", "?x", "?x")
        assert unify_atoms(pattern, Atom.of("p", 1, 2)) is None
        assert unify_atoms(pattern, Atom.of("p", 1, 1)) is not None
