"""O-terms, typing O-terms and rule compilation (§2, §5)."""

import pytest

from repro.errors import LogicError
from repro.logic import (
    Atom,
    BodyItem,
    Comparison,
    Constant,
    OTerm,
    Rule,
    TypingOTerm,
    Variable,
    att_predicate,
    inst_predicate,
    parse_predicate,
)
from repro.logic.atoms import Skolem


class TestOTerm:
    def test_paper_empl_dept_oterm(self):
        # <o1: Empl | e_name: x, work_in: o2>
        oterm = OTerm.of("?o1", "Empl", {"e_name": "?x", "work_in": "?o2"})
        assert str(oterm) == "<o1: Empl | e_name: x, work_in: o2>"

    def test_duplicate_descriptor_rejected(self):
        with pytest.raises(LogicError, match="twice"):
            OTerm(Variable("o"), "C", (("a", Constant(1)), ("a", Constant(2))))

    def test_membership_only(self):
        assert OTerm.of("?x", "C").is_membership_only()
        assert not OTerm.of("?x", "C", {"a": 1}).is_membership_only()

    def test_schematic_detection(self):
        assert OTerm.of("?x", Variable("cls")).is_schematic()
        assert OTerm(Variable("x"), "C", ((Variable("attr"), Constant(1)),)).is_schematic()
        assert not OTerm.of("?x", "C", {"a": 1}).is_schematic()

    def test_compile_produces_inst_and_att_atoms(self):
        oterm = OTerm.of("?o", "Empl", {"e_name": "?x"})
        atoms = oterm.compile()
        assert atoms[0] == Atom(inst_predicate("Empl"), (Variable("o"),))
        assert atoms[1] == Atom(
            att_predicate("Empl", "e_name"), (Variable("o"), Variable("x"))
        )

    def test_compile_schematic_refused(self):
        with pytest.raises(LogicError, match="schematic"):
            OTerm.of("?x", Variable("cls")).compile()

    def test_compile_negated_membership_only(self):
        [literal] = OTerm.of("?x", "C").compile_negated()
        assert not literal.positive
        with pytest.raises(LogicError):
            OTerm.of("?x", "C", {"a": 1}).compile_negated()

    def test_predicate_name_roundtrip(self):
        assert parse_predicate(inst_predicate("C")) == ("C", None)
        assert parse_predicate(att_predicate("C", "a")) == ("C", "a")
        assert parse_predicate("plain") is None

    def test_with_binding_replaces(self):
        oterm = OTerm.of("?x", "C", {"a": 1})
        updated = oterm.with_binding("a", Constant(2))
        assert updated.binding("a") == Constant(2)


class TestTypingOTerm:
    def test_compiles_to_is_a_atom(self):
        atom = TypingOTerm("student", "person").compile()
        assert atom == Atom.of("is_a", "student", "person")

    def test_str_matches_paper(self):
        assert str(TypingOTerm("student", "person")) == "<student: person>"


class TestRuleCompile:
    def test_department_manager_rule_compiles(self):
        # <o1: Empl | work_in: o2> ⇐ <o2: Dept | manager: o1>
        head = OTerm.of("?o1", "Empl", {"work_in": "?o2"})
        body = OTerm.of("?o2", "Dept", {"manager": "?o1"})
        compiled = Rule.of(head, [body]).compile()
        # inst head + att head, same 2-literal body each.
        assert len(compiled) == 2
        assert all(len(rule.body) == 2 for rule in compiled)

    def test_conjunctive_head_splits(self):
        rule = Rule.of(
            [Atom.of("p", "?x"), Atom.of("q", "?x")], [Atom.of("r", "?x")]
        )
        assert [r.head.predicate for r in rule.compile()] == ["p", "q"]

    def test_comparison_head_rejected(self):
        with pytest.raises(LogicError):
            Rule.of(Comparison.of("?x", "=", 1), [])

    def test_virtual_head_object_is_skolemized(self):
        # The uncle rule: o1 appears only in the head.
        head = OTerm.of("?o1", "uncle", {"Ussn#": "?x1"})
        body = OTerm.of("?o2", "brother", {"Bssn#": "?x1"})
        compiled = Rule.of(head, [body]).compile()
        skolems = [
            literal
            for rule in compiled
            for literal in rule.body
            if isinstance(literal.atom, Skolem)
        ]
        assert skolems, "expected a skolem literal for the virtual o1"
        assert skolems[0].atom.result == Variable("o1")

    def test_bound_head_object_not_skolemized(self):
        head = OTerm.of("?o", "C", {"a": "?x"})
        body = OTerm.of("?o", "D", {"b": "?x"})
        compiled = Rule.of(head, [body]).compile()
        assert not any(
            isinstance(literal.atom, Skolem)
            for rule in compiled
            for literal in rule.body
        )

    def test_negated_body_oterm_compiles_to_negated_membership(self):
        rule = Rule.of(
            OTerm.of("?x", "A_only"),
            [BodyItem(OTerm.of("?x", "A")), BodyItem(OTerm.of("?x", "AB"), False)],
        )
        [compiled] = rule.compile()
        negatives = [l for l in compiled.body if not l.positive]
        assert len(negatives) == 1
        assert negatives[0].atom.predicate == inst_predicate("AB")

    def test_rule_str_uses_paper_arrow(self):
        rule = Rule.of(Atom.of("p", "?x"), [Atom.of("q", "?x")])
        assert "⇐" in str(rule)

    def test_fact_rule(self):
        rule = Rule.of(Atom.of("p", 1), [])
        assert rule.is_fact()
        assert str(rule).endswith(".")
