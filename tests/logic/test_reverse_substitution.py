"""Reverse substitutions — Definitions 5.1, 5.2, 5.3 verbatim."""

import pytest

from repro.errors import LogicError
from repro.logic import (
    Constant,
    OTerm,
    ReverseSubstitution,
    Variable,
    compose_all,
)


class TestDefinition51:
    def test_keys_may_be_constants_or_variables(self):
        theta = ReverseSubstitution.of(("z", "x1"), (Variable("w"), "x1"))
        assert len(theta) == 2

    def test_keys_must_be_distinct(self):
        with pytest.raises(LogicError, match="duplicate"):
            ReverseSubstitution.of(("z", "x1"), ("z", "x2"))

    def test_values_must_be_variables(self):
        with pytest.raises(LogicError):
            ReverseSubstitution({Constant("c"): Constant("d")})


class TestDefinition52:
    def test_replaces_each_occurrence_simultaneously(self):
        theta = ReverseSubstitution.of((Variable("x"), "x2"), (Variable("y"), "x3"))
        terms = (Variable("x"), Variable("y"), Variable("x"), Constant("k"))
        assert theta.apply_terms(terms) == (
            Variable("x2"),
            Variable("x3"),
            Variable("x2"),
            Constant("k"),
        )

    def test_paper_example_uncle_oterm(self):
        # B = <o1: IS(S2.uncle) | Ussn#: x, niece_nephew: y>, θ = {x/x2, y/x3}
        b = OTerm.of("?o1", "IS(S2.uncle)", {"Ussn#": "?x", "niece_nephew": "?y"})
        theta = ReverseSubstitution.of((Variable("x"), "x2"), (Variable("y"), "x3"))
        result = b.apply_reverse(theta)
        assert result.binding("Ussn#") == Variable("x2")
        assert result.binding("niece_nephew") == Variable("x3")

    def test_constants_replaced_too(self):
        theta = ReverseSubstitution.of(("car-name", "y3"))
        assert theta.replace(Constant("car-name")) == Variable("y3")
        assert theta.replace(Constant("other")) == Constant("other")


class TestDefinition53:
    def test_composition_rewrites_right_sides(self):
        # θ = {c/x}, δ = {x/y}  →  θδ = {c/y, x/y}
        theta = ReverseSubstitution.of(("c", "x"))
        delta = ReverseSubstitution.of((Variable("x"), "y"))
        composed = theta.compose(delta)
        assert composed.replace(Constant("c")) == Variable("y")
        assert composed.replace(Variable("x")) == Variable("y")

    def test_identity_bindings_deleted(self):
        # θ = {x/y}, δ = {y/x}: binding x/x (from xδ) must be deleted.
        theta = ReverseSubstitution.of((Variable("x"), "y"))
        delta = ReverseSubstitution.of((Variable("y"), "x"))
        composed = theta.compose(delta)
        assert Variable("x") not in composed
        # δ's own binding y/x survives (y ∉ dom θ keys? y IS a key of δ
        # and not among θ's keys {x}), so it is kept.
        assert composed.replace(Variable("y")) == Variable("x")

    def test_right_bindings_shadowed_by_left_keys_deleted(self):
        # dj/yj with dj ∈ {c1..cn} is deleted.
        theta = ReverseSubstitution.of(("c", "x"))
        delta = ReverseSubstitution.of(("c", "z"), ("d", "w"))
        composed = theta.compose(delta)
        assert composed.replace(Constant("c")) == Variable("x")
        assert composed.replace(Constant("d")) == Variable("w")

    def test_compose_all_disjoint_components(self):
        # The three θs of Example 9 are disjoint; composition is their union.
        theta1 = ReverseSubstitution.of(("z", "x1"), (Variable("w"), "x1"))
        theta2 = ReverseSubstitution.of((Variable("v"), "x2"), (Variable("x"), "x2"))
        theta3 = ReverseSubstitution.of((Variable("u"), "x3"), (Variable("y"), "x3"))
        composed = compose_all([theta1, theta2, theta3])
        assert len(composed) == 6
        assert composed.replace(Variable("v")) == Variable("x2")
        assert composed.replace(Constant("z")) == Variable("x1")
