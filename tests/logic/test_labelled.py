"""Appendix B: schema-labelled predicates and top-down evaluation."""

import pytest

from repro.errors import EvaluationError
from repro.logic import (
    Atom,
    Comparison,
    LabelledProgram,
    Literal,
    negated,
    source_from_facts,
)
from repro.logic.rules import DatalogRule


def dl(head, *body) -> DatalogRule:
    return DatalogRule(head, tuple(body))


@pytest.fixture
def appendix_b_program() -> LabelledProgram:
    """The exact Appendix B setting: mother/father in S1, parent/brother
    and the uncle rule over S2."""
    s1 = source_from_facts(
        "S1",
        {
            "mother": [("John", "Mary")],
            "father": [("Ann", "Carl")],
        },
    )
    s2 = source_from_facts(
        "S2",
        {
            "parent": [("Zoe", "Pam")],
            "brother": [("Mary", "Bill"), ("Pam", "Ugo")],
        },
    )
    rules = [
        dl(Atom.of("parent", "?x", "?y"), Literal(Atom.of("mother", "?x", "?y"))),
        dl(Atom.of("parent", "?x", "?y"), Literal(Atom.of("father", "?x", "?y"))),
        dl(
            Atom.of("uncle", "?x", "?y"),
            Literal(Atom.of("parent", "?x", "?z")),
            Literal(Atom.of("brother", "?z", "?y")),
        ),
    ]
    return LabelledProgram(rules, [s1, s2])


class TestLabels:
    def test_head_labels_are_source_schemas(self, appendix_b_program):
        assert appendix_b_program.head_label("parent") == {"S2"}
        assert appendix_b_program.head_label("mother") == {"S1"}
        assert appendix_b_program.head_label("uncle") == frozenset()

    def test_body_labels_are_rule_sets(self, appendix_b_program):
        assert len(appendix_b_program.body_label("parent")) == 2
        assert len(appendix_b_program.body_label("brother")) == 0


class TestEvaluation:
    def test_uncle_query_unions_local_and_derived(self, appendix_b_program):
        rows = appendix_b_program.evaluation(Atom.of("uncle", "?x", "?y"))
        assert {(r["x"], r["y"]) for r in rows} == {("John", "Bill"), ("Zoe", "Ugo")}

    def test_constants_select(self, appendix_b_program):
        rows = appendix_b_program.evaluation(Atom.of("uncle", "John", "?y"))
        assert rows == [{"y": "Bill"}]

    def test_parent_unions_rule_results_with_local_facts(self, appendix_b_program):
        rows = appendix_b_program.evaluation(Atom.of("parent", "?x", "?y"))
        pairs = {(r["x"], r["y"]) for r in rows}
        assert pairs == {("John", "Mary"), ("Ann", "Carl"), ("Zoe", "Pam")}

    def test_unknown_predicate_rejected(self, appendix_b_program):
        with pytest.raises(EvaluationError, match="unknown predicate"):
            appendix_b_program.evaluation(Atom.of("cousin", "?x", "?y"))

    def test_recursion_detected(self):
        source = source_from_facts("S", {"edge": [(1, 2)]})
        rules = [
            dl(Atom.of("path", "?x", "?y"), Literal(Atom.of("edge", "?x", "?y"))),
            dl(
                Atom.of("path", "?x", "?z"),
                Literal(Atom.of("path", "?x", "?y")),
                Literal(Atom.of("edge", "?y", "?z")),
            ),
        ]
        program = LabelledProgram(rules, [source])
        with pytest.raises(EvaluationError, match="recursive"):
            program.evaluation(Atom.of("path", "?x", "?y"))

    def test_negation_and_comparison_in_bodies(self):
        source = source_from_facts(
            "S", {"num": [(1,), (5,)], "blocked": [(5,)]}
        )
        rules = [
            dl(
                Atom.of("ok", "?x"),
                Literal(Atom.of("num", "?x")),
                Literal(Comparison.of("?x", ">", 0)),
                negated(Atom.of("blocked", "?x")),
            )
        ]
        program = LabelledProgram(rules, [source])
        assert program.evaluation(Atom.of("ok", "?x")) == [{"x": 1}]

    def test_autonomy_only_fetches_extensions(self, appendix_b_program):
        """The FSM side never pushes work down: sources only serve
        single-concept fetches (counted)."""
        s1 = appendix_b_program._sources[0]
        before = s1.fetch_count
        appendix_b_program.evaluation(Atom.of("uncle", "?x", "?y"))
        assert s1.fetch_count > before  # fetched, but only via fetch()
