"""Safety / range restriction / allowedness of rules (§5, ref [8])."""

import pytest

from repro.errors import SafetyError
from repro.logic import (
    Atom,
    Comparison,
    Literal,
    Rule,
    check_rule,
    is_safe,
    negated,
    violations,
)
from repro.logic.rules import DatalogRule


def dl(head, *body) -> DatalogRule:
    return DatalogRule(head, tuple(body))


class TestRangeRestriction:
    def test_safe_rule_passes(self):
        rule = dl(Atom.of("p", "?x"), Literal(Atom.of("q", "?x")))
        assert is_safe(rule)

    def test_unbound_head_variable_detected(self):
        rule = dl(Atom.of("p", "?x", "?y"), Literal(Atom.of("q", "?x")))
        problems = violations(rule)
        assert any("y" in p for p in problems)

    def test_check_rule_raises(self):
        rule = dl(Atom.of("p", "?y"), Literal(Atom.of("q", "?x")))
        with pytest.raises(SafetyError):
            check_rule(rule)

    def test_equality_comparison_grounds_a_variable(self):
        # p(y) ⇐ q(x), y = x   — y limited through the equality.
        rule = dl(
            Atom.of("p", "?y"),
            Literal(Atom.of("q", "?x")),
            Literal(Comparison.of("?y", "=", "?x")),
        )
        assert is_safe(rule)

    def test_equality_to_constant_grounds(self):
        rule = dl(Atom.of("p", "?y"), Literal(Comparison.of("?y", "=", 3)))
        assert is_safe(rule)

    def test_equality_chain_propagates(self):
        rule = dl(
            Atom.of("p", "?z"),
            Literal(Atom.of("q", "?x")),
            Literal(Comparison.of("?y", "=", "?x")),
            Literal(Comparison.of("?z", "=", "?y")),
        )
        assert is_safe(rule)

    def test_inequality_cannot_ground(self):
        rule = dl(Atom.of("p", "?y"), Literal(Comparison.of("?y", "<", 3)))
        assert not is_safe(rule)


class TestAllowedness:
    def test_negative_literal_with_unlimited_variable_detected(self):
        rule = dl(
            Atom.of("p", "?x"),
            Literal(Atom.of("q", "?x")),
            negated(Atom.of("r", "?z")),
        )
        problems = violations(rule)
        assert any("z" in p for p in problems)

    def test_negative_literal_over_limited_variables_allowed(self):
        rule = dl(
            Atom.of("p", "?x"),
            Literal(Atom.of("q", "?x")),
            negated(Atom.of("r", "?x")),
        )
        assert is_safe(rule)


class TestGeneratedRules:
    def test_principle3_rules_are_safe(self):
        from repro.logic import BodyItem, OTerm, check_all

        rule = Rule.of(
            OTerm.of("?x", "IS_AB"),
            [
                BodyItem(OTerm.of("?x", "A")),
                BodyItem(OTerm.of("?y", "B")),
                BodyItem(Atom.of("same_object", "?x", "?y")),
            ],
        )
        assert check_all([rule]) == []

    def test_skolemized_derivation_rule_is_safe(self):
        from repro.logic import OTerm, check_all

        head = OTerm.of("?o1", "uncle", {"Ussn#": "?x1"})
        body = OTerm.of("?o3", "brother", {"Bssn#": "?x1"})
        assert check_all([Rule.of(head, [body])]) == []
