"""Atoms, comparisons (τ set + ∈) and skolem builtins."""

import pytest

from repro.errors import LogicError
from repro.logic import Atom, Comparison, ComparisonOp, Literal, lits, negated
from repro.logic.atoms import Skolem
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable


class TestAtom:
    def test_of_lifts_arguments(self):
        atom = Atom.of("p", "?x", "John", 3)
        assert atom.args == (Variable("x"), Constant("John"), Constant(3))

    def test_variables(self):
        assert Atom.of("p", "?x", "c", "?y").variables() == {
            Variable("x"), Variable("y"),
        }

    def test_is_ground(self):
        assert Atom.of("p", 1, 2).is_ground()
        assert not Atom.of("p", "?x").is_ground()

    def test_substitute(self):
        atom = Atom.of("p", "?x")
        bound = atom.substitute(Substitution({Variable("x"): Constant(7)}))
        assert bound == Atom.of("p", 7)

    def test_empty_predicate_rejected(self):
        with pytest.raises(LogicError):
            Atom("", (Constant(1),))


class TestComparison:
    @pytest.mark.parametrize(
        "left,op,right,expected",
        [
            (1, "=", 1, True),
            (1, "!=", 2, True),
            (1, "<", 2, True),
            (2, "<=", 2, True),
            (3, ">", 2, True),
            (3, ">=", 4, False),
        ],
    )
    def test_operator_evaluation(self, left, op, right, expected):
        assert Comparison.of(left, op, right).holds() is expected

    def test_unicode_aliases(self):
        assert Comparison.of(1, "≤", 2).op is ComparisonOp.LE
        assert Comparison.of(1, "≠", 2).op is ComparisonOp.NE

    def test_membership_over_collections(self):
        assert Comparison.of("a", "in", frozenset({"a", "b"})).holds()
        assert not Comparison.of("z", "in", frozenset({"a"})).holds()

    def test_membership_degrades_to_equality_on_scalars(self):
        assert Comparison.of("a", "in", "a").holds()

    def test_non_ground_evaluation_rejected(self):
        with pytest.raises(LogicError):
            Comparison.of("?x", "=", 1).holds()

    def test_incomparable_types_fail_closed(self):
        assert not Comparison.of("abc", "<", 3).holds()


class TestSkolem:
    def test_token_is_deterministic(self):
        skolem = Skolem(Variable("o"), "uncle", (Constant("B1"), Constant("John")))
        assert skolem.token() == ("sk", "uncle", "B1", "John")

    def test_token_requires_ground_args(self):
        skolem = Skolem(Variable("o"), "uncle", (Variable("x"),))
        with pytest.raises(LogicError):
            skolem.token()

    def test_substitute_traverses_result_and_args(self):
        skolem = Skolem(Variable("o"), "t", (Variable("x"),))
        bound = skolem.substitute(Substitution({Variable("x"): Constant(1)}))
        assert bound.args == (Constant(1),)

    def test_str_form(self):
        skolem = Skolem(Variable("o"), "t", (Variable("x"),))
        assert "sk[t]" in str(skolem)


class TestLiterals:
    def test_negated_helper(self):
        literal = negated(Atom.of("p", 1))
        assert not literal.positive
        assert str(literal).startswith("¬")

    def test_lits_wraps_plain_atoms(self):
        wrapped = lits([Atom.of("p", 1), Literal(Atom.of("q", 2), positive=False)])
        assert wrapped[0].positive and not wrapped[1].positive

    def test_is_comparison_flag(self):
        assert Literal(Comparison.of(1, "=", 1)).is_comparison
        assert not Literal(Atom.of("p", 1)).is_comparison
