"""The 'interesting pair' problem (§2 — first posed in [23], cf. [16]).

"Find the pairs employee-manager such that the employee's department's
manager's name coincides with the employee's name."  The paper uses it
to show its rule form is simpler than [16] and unambiguous unlike [23];
here it exercises the whole O-term/rule/engine stack on the paper's own
Empl/Dept example, including the department-manager rule

    <o1: Empl | e_name: x, work_in: o2> ⇐ <o2: Dept | d_name: y, manager: o1>
"""

import pytest

from repro.logic import (
    Atom,
    OTerm,
    QueryEngine,
    Rule,
    facts_from_database,
)
from repro.model import ClassDef, ObjectDatabase, Schema


@pytest.fixture
def company():
    schema = Schema("S")
    schema.add_class(ClassDef("Dept").attr("d_name").agg("manager", "Empl", "[1:1]"))
    schema.add_class(ClassDef("Empl").attr("e_name").agg("work_in", "Dept", "[m:1]"))
    db = ObjectDatabase(schema, validate=False)
    # Build circular references in two passes.
    dept_rnd = db.insert("Dept", {"d_name": "R&D"})
    dept_hr = db.insert("Dept", {"d_name": "HR"})
    kim = db.insert("Empl", {"e_name": "Kim"}, {"work_in": dept_rnd.oid})
    lee = db.insert("Empl", {"e_name": "Lee"}, {"work_in": dept_rnd.oid})
    mia = db.insert("Empl", {"e_name": "Kim"}, {"work_in": dept_hr.oid})
    dept_rnd.set_aggregation("manager", kim.oid)   # Kim manages R&D
    dept_hr.set_aggregation("manager", lee.oid)    # Lee manages HR
    return db, {"kim": kim, "lee": lee, "mia": mia}


def test_department_manager_rule(company):
    """Managers work in the department they manage (the §2 rule)."""
    db, people = company
    rule = Rule.of(
        OTerm.of("?o1", "Empl", {"work_in": "?o2"}),
        [OTerm.of("?o2", "Dept", {"manager": "?o1"})],
    )
    engine = QueryEngine([rule], facts_from_database(db))
    rows = engine.ask(
        Atom.of("att$Empl$work_in", "?who", "?dept"),
        Atom.of("att$Dept$d_name", "?dept", "HR"),
    )
    workers = {row["who"] for row in rows}
    # Lee manages HR, hence works in HR (derived) though stored in R&D.
    assert people["lee"].oid in workers


def test_interesting_pairs(company):
    """pair(o1, manager(o2)) ⇐ <o1: Empl | e_name: x, work_in: o2>,
    manager(o2).e_name = x — via attribute join."""
    db, people = company
    rule = Rule.of(
        Atom.of("pair", "?o1", "?m"),
        [
            OTerm.of("?o1", "Empl", {"e_name": "?x", "work_in": "?o2"}),
            OTerm.of("?o2", "Dept", {"manager": "?m"}),
            OTerm.of("?m", "Empl", {"e_name": "?x"}),
        ],
    )
    engine = QueryEngine([rule], facts_from_database(db))
    rows = engine.ask(Atom.of("pair", "?e", "?m"))
    pairs = {(row["e"], row["m"]) for row in rows}
    # Kim works in R&D, whose manager is Kim (same name, same person) —
    # and any other employee named like their department's manager.
    assert (people["kim"].oid, people["kim"].oid) in pairs
    # Mia is also named Kim but works in HR (manager Lee) — not a pair.
    assert not any(e == people["mia"].oid for e, _ in pairs)


def test_unify_oterms_open_records(company):
    """O-term patterns match partially-specified ground objects."""
    from repro.logic import Constant, Variable, unify_oterms
    from repro.logic.oterms import oterm_from_instance

    db, people = company
    ground = oterm_from_instance(people["kim"])
    pattern = OTerm.of("?o", "Empl", {"e_name": "?n"})
    result = unify_oterms(pattern, ground)
    assert result is not None
    assert result.apply(Variable("n")) == Constant("Kim")
    # class mismatch fails
    assert unify_oterms(OTerm.of("?o", "Dept"), ground) is None
    # descriptor variables match some descriptor
    schematic = OTerm(
        Variable("o"), "Empl", ((Variable("attr"), Constant("Kim")),)
    )
    assert unify_oterms(schematic, ground) is not None
