"""Property-based tests on logic-layer invariants (hypothesis)."""

import string

from hypothesis import given, settings, strategies as st

from repro.logic import (
    Atom,
    Constant,
    FactStore,
    Literal,
    ReverseSubstitution,
    Substitution,
    Variable,
    evaluate,
    unify_atoms,
)
from repro.logic.rules import DatalogRule

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
values = st.one_of(st.integers(-50, 50), names)
terms = st.one_of(
    names.map(Variable),
    values.map(Constant),
)


@given(st.dictionaries(names.map(Variable), values.map(Constant), max_size=5), terms)
def test_substitution_apply_is_idempotent(bindings, term):
    substitution = Substitution(bindings)
    once = substitution.apply(term)
    assert substitution.apply(once) == once


@given(
    st.dictionaries(names.map(Variable), values.map(Constant), max_size=4),
    st.dictionaries(names.map(Variable), values.map(Constant), max_size=4),
    terms,
)
def test_substitution_compose_semantics(left_bindings, right_bindings, term):
    left = Substitution(left_bindings)
    right = Substitution(right_bindings)
    composed = left.compose(right)
    assert composed.apply(term) == right.apply(left.apply(term))


@st.composite
def ground_atoms(draw):
    predicate = draw(names)
    arity = draw(st.integers(1, 3))
    return Atom(predicate, tuple(Constant(draw(values)) for _ in range(arity)))


@given(ground_atoms())
def test_unify_atom_with_itself_is_identity(atom):
    result = unify_atoms(atom, atom)
    assert result is not None
    assert len(result) == 0


@given(ground_atoms(), st.data())
def test_unify_pattern_against_fact_substitutes_back(fact, data):
    # Generalize the fact by replacing some args with fresh variables.
    args = []
    for index, arg in enumerate(fact.args):
        if data.draw(st.booleans()):
            args.append(Variable(f"v{index}"))
        else:
            args.append(arg)
    pattern = Atom(fact.predicate, tuple(args))
    substitution = unify_atoms(pattern, fact)
    assert substitution is not None
    assert pattern.substitute(substitution) == fact


@given(
    st.dictionaries(
        st.one_of(values.map(Constant), names.map(Variable)),
        names.map(Variable),
        max_size=5,
    )
)
def test_reverse_substitution_application_total(bindings):
    reverse = ReverseSubstitution(bindings)
    for key in bindings:
        assert reverse.replace(key) == bindings[key]
    assert reverse.replace(Constant("__untouched__")) == Constant("__untouched__")


@given(
    st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)), min_size=1, max_size=30)
)
@settings(max_examples=40, deadline=None)
def test_transitive_closure_matches_reference(edges):
    """Engine-computed closure equals a reference Floyd-Warshall-ish set."""
    store = FactStore()
    for a, b in edges:
        store.add("edge", (a, b))
    rules = [
        DatalogRule(Atom.of("path", "?x", "?y"), (Literal(Atom.of("edge", "?x", "?y")),)),
        DatalogRule(
            Atom.of("path", "?x", "?z"),
            (
                Literal(Atom.of("path", "?x", "?y")),
                Literal(Atom.of("edge", "?y", "?z")),
            ),
        ),
    ]
    derived = evaluate(rules, store).facts("path")

    reference = set(edges)
    changed = True
    while changed:
        changed = False
        for a, b in list(reference):
            for c, d in edges:
                if b == c and (a, d) not in reference:
                    reference.add((a, d))
                    changed = True
    assert derived == reference


@given(st.lists(st.tuples(names, st.integers(0, 20)), min_size=1, max_size=25))
@settings(max_examples=40)
def test_negation_partitions_the_domain(pairs):
    """plain(x) and special(x) partition all(x) under stratified ¬."""
    store = FactStore()
    special_cutoff = 10
    for name, number in pairs:
        store.add("all", (name, number))
        if number >= special_cutoff:
            store.add("special", (name, number))
    rules = [
        DatalogRule(
            Atom.of("plain", "?x", "?n"),
            (
                Literal(Atom.of("all", "?x", "?n")),
                Literal(Atom.of("special", "?x", "?n"), positive=False),
            ),
        )
    ]
    result = evaluate(rules, store)
    plain = result.facts("plain")
    special = result.facts("special")
    assert plain | special == result.facts("all")
    assert not plain & special
