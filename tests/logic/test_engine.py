"""The bottom-up engine: stratification, semi-naive evaluation, queries."""

import pytest

from repro.errors import EvaluationError
from repro.logic import (
    Atom,
    BodyItem,
    Comparison,
    FactStore,
    Literal,
    OTerm,
    QueryEngine,
    Rule,
    evaluate,
    negated,
    stratify,
)
from repro.logic.rules import DatalogRule


def facts(**predicates) -> FactStore:
    store = FactStore()
    for predicate, tuples in predicates.items():
        for values in tuples:
            store.add(predicate, tuple(values))
    return store


def dl(head, *body) -> DatalogRule:
    return DatalogRule(head, tuple(body))


class TestStratify:
    def test_positive_program_is_one_stratum(self):
        rules = [
            dl(Atom.of("p", "?x"), Literal(Atom.of("q", "?x"))),
            dl(Atom.of("q", "?x"), Literal(Atom.of("base", "?x"))),
        ]
        assert len(stratify(rules)) == 1

    def test_negation_pushes_to_later_stratum(self):
        rules = [
            dl(Atom.of("q", "?x"), Literal(Atom.of("base", "?x"))),
            dl(
                Atom.of("p", "?x"),
                Literal(Atom.of("base", "?x")),
                negated(Atom.of("q", "?x")),
            ),
        ]
        layers = stratify(rules)
        assert len(layers) == 2
        assert layers[0][0].head.predicate == "q"

    def test_negation_through_recursion_rejected(self):
        rules = [
            dl(Atom.of("p", "?x"), negated(Atom.of("q", "?x")), Literal(Atom.of("b", "?x"))),
            dl(Atom.of("q", "?x"), negated(Atom.of("p", "?x")), Literal(Atom.of("b", "?x"))),
        ]
        with pytest.raises(EvaluationError, match="stratifiable"):
            stratify(rules)


class TestEvaluate:
    def test_uncle_join(self):
        store = facts(
            parent=[("John", "Mary")], brother=[("Mary", "Bill")]
        )
        rules = [
            dl(
                Atom.of("uncle", "?x", "?z"),
                Literal(Atom.of("parent", "?x", "?y")),
                Literal(Atom.of("brother", "?y", "?z")),
            )
        ]
        result = evaluate(rules, store)
        assert ("John", "Bill") in result.facts("uncle")

    def test_transitive_closure_semi_naive(self):
        edges = [(i, i + 1) for i in range(20)]
        store = facts(edge=edges)
        rules = [
            dl(Atom.of("path", "?x", "?y"), Literal(Atom.of("edge", "?x", "?y"))),
            dl(
                Atom.of("path", "?x", "?z"),
                Literal(Atom.of("path", "?x", "?y")),
                Literal(Atom.of("edge", "?y", "?z")),
            ),
        ]
        result = evaluate(rules, store)
        assert len(result.facts("path")) == 20 * 21 // 2

    def test_stratified_negation(self):
        store = facts(all=[("a",), ("b",), ("c",)], special=[("b",)])
        rules = [
            dl(
                Atom.of("plain", "?x"),
                Literal(Atom.of("all", "?x")),
                negated(Atom.of("special", "?x")),
            )
        ]
        result = evaluate(rules, store)
        assert result.facts("plain") == {("a",), ("c",)}

    def test_comparison_filters(self):
        store = facts(num=[(1,), (5,), (9,)])
        rules = [
            dl(
                Atom.of("big", "?x"),
                Literal(Atom.of("num", "?x")),
                Literal(Comparison.of("?x", ">", 4)),
            )
        ]
        assert evaluate(rules, store).facts("big") == {(5,), (9,)}

    def test_defining_equality_binds(self):
        store = facts(num=[(2,)])
        rules = [
            dl(
                Atom.of("pair", "?x", "?y"),
                Literal(Atom.of("num", "?x")),
                Literal(Comparison.of("?y", "=", "?x")),
            )
        ]
        assert evaluate(rules, store).facts("pair") == {(2, 2)}

    def test_incomparable_values_fail_closed(self):
        store = facts(num=[("a",), (3,)])
        rules = [
            dl(
                Atom.of("big", "?x"),
                Literal(Atom.of("num", "?x")),
                Literal(Comparison.of("?x", ">", 1)),
            )
        ]
        assert evaluate(rules, store).facts("big") == {(3,)}


class TestQueryEngine:
    def test_ask_with_oterm_rules(self):
        store = facts(**{
            "inst$person": [("p1",), ("p2",)],
            "att$person$age": [("p1", 30), ("p2", 12)],
            "att$person$name": [("p1", "Ann"), ("p2", "Bob")],
        })
        rule = Rule.of(
            Atom.of("adult", "?n"),
            [
                OTerm.of("?o", "person", {"age": "?a", "name": "?n"}),
                Comparison.of("?a", ">=", 18),
            ],
        )
        engine = QueryEngine([rule], store)
        assert engine.ask(Atom.of("adult", "?n")) == [{"n": "Ann"}]

    def test_holds_requires_ground_goal(self):
        engine = QueryEngine([], facts(p=[(1,)]))
        assert engine.holds(Atom.of("p", 1))
        assert not engine.holds(Atom.of("p", 2))
        with pytest.raises(EvaluationError):
            engine.holds(Atom.of("p", "?x"))

    def test_conjunctive_ask_joins_goals(self):
        store = facts(p=[(1, 2)], q=[(2, 3)])
        engine = QueryEngine([], store)
        rows = engine.ask(Atom.of("p", "?x", "?y"), Atom.of("q", "?y", "?z"))
        assert rows == [{"x": 1, "y": 2, "z": 3}]

    def test_invalidate_recomputes(self):
        store = facts(p=[(1,)])
        rule = DatalogRule(Atom.of("q", "?x"), (Literal(Atom.of("p", "?x")),))
        engine = QueryEngine([Rule.of(Atom.of("q", "?x"), [Atom.of("p", "?x")])], store)
        assert engine.ask(Atom.of("q", "?x")) == [{"x": 1}]
        store.add("p", (2,))
        engine.invalidate()
        assert {row["x"] for row in engine.ask(Atom.of("q", "?x"))} == {1, 2}


class TestFactsFromDatabase:
    def test_multivalued_values_become_per_element_facts(self):
        from repro.logic import facts_from_database
        from repro.model import ClassDef, ObjectDatabase, Schema

        schema = Schema("S")
        schema.add_class(ClassDef("brother").attr("brothers", multivalued=True))
        db = ObjectDatabase(schema)
        db.insert("brother", {"brothers": ["P1", "P2"]})
        store = facts_from_database(db)
        values = {v for _, v in store.facts("att$brother$brothers")}
        assert values == {"P1", "P2"}

    def test_subclass_instances_appear_in_ancestor_extensions(self):
        from repro.logic import facts_from_database, inst_predicate
        from repro.model import ClassDef, ObjectDatabase, Schema

        schema = Schema("S")
        schema.add_class(ClassDef("person").attr("name"))
        schema.add_class(ClassDef("student", parents=["person"]))
        db = ObjectDatabase(schema)
        db.insert("student", {"name": "Bob"})
        store = facts_from_database(db)
        assert len(store.facts(inst_predicate("person"))) == 1
        assert len(store.facts("att$person$name")) == 1

    def test_is_a_facts_emitted(self):
        from repro.logic import facts_from_database
        from repro.model import ClassDef, ObjectDatabase, Schema

        schema = Schema("S")
        schema.add_class(ClassDef("a"))
        schema.add_class(ClassDef("b", parents=["a"]))
        store = facts_from_database(ObjectDatabase(schema))
        assert ("b", "a") in store.facts("is_a")
