"""The engine's indexed, selectivity-ordered join machinery."""

from repro.logic import Atom, Comparison, FactStore, Literal, evaluate, negated
from repro.logic.rules import DatalogRule


def facts(**predicates) -> FactStore:
    store = FactStore()
    for predicate, tuples in predicates.items():
        for values in tuples:
            store.add(predicate, tuple(values))
    return store


def dl(head, *body) -> DatalogRule:
    return DatalogRule(head, tuple(body))


class TestFactStoreIndex:
    def test_facts_at_position(self):
        store = facts(p=[(1, "a"), (1, "b"), (2, "a")])
        assert store.facts_at("p", 0, 1) == {(1, "a"), (1, "b")}
        assert store.facts_at("p", 1, "a") == {(1, "a"), (2, "a")}
        assert store.facts_at("p", 0, 99) == set()

    def test_candidates_picks_tightest_bucket(self):
        store = facts(p=[(1, "a"), (1, "b"), (2, "a")])
        assert store.candidates("p", [(0, 1), (1, "b")]) == {(1, "b")}

    def test_candidates_without_bindings_is_full_set(self):
        store = facts(p=[(1, "a"), (2, "b")])
        assert len(store.candidates("p", [])) == 2

    def test_candidates_empty_on_impossible_binding(self):
        store = facts(p=[(1, "a")])
        assert store.candidates("p", [(0, 42)]) == set()

    def test_copy_preserves_index(self):
        store = facts(p=[(1, "a")])
        clone = store.copy()
        store.add("p", (2, "b"))
        assert clone.facts_at("p", 0, 1) == {(1, "a")}
        assert clone.facts_at("p", 0, 2) == set()

    def test_merge_rebuilds_index(self):
        left = facts(p=[(1, "a")])
        right = facts(p=[(2, "b")])
        left.merge(right)
        assert left.facts_at("p", 0, 2) == {(2, "b")}


class TestJoinOrdering:
    def test_result_independent_of_body_order(self):
        store = facts(
            big=[(i, i % 3) for i in range(60)],
            small=[(0,), (1,)],
        )
        rule_a = dl(
            Atom.of("r", "?x", "?k"),
            Literal(Atom.of("big", "?x", "?k")),
            Literal(Atom.of("small", "?k")),
        )
        rule_b = dl(
            Atom.of("r", "?x", "?k"),
            Literal(Atom.of("small", "?k")),
            Literal(Atom.of("big", "?x", "?k")),
        )
        assert evaluate([rule_a], store).facts("r") == evaluate(
            [rule_b], store
        ).facts("r")

    def test_empty_candidate_short_circuits(self):
        store = facts(a=[(1,)], b=[])
        rule = dl(
            Atom.of("r", "?x"),
            Literal(Atom.of("a", "?x")),
            Literal(Atom.of("b", "?x")),
        )
        assert evaluate([rule], store).facts("r") == set()

    def test_comparisons_defer_until_bound(self):
        store = facts(num=[(5,), (1,)])
        rule = dl(
            Atom.of("r", "?x"),
            Literal(Comparison.of("?x", ">", 2)),  # unbound at first
            Literal(Atom.of("num", "?x")),
        )
        assert evaluate([rule], store).facts("r") == {(5,)}

    def test_negation_defers_until_bound(self):
        store = facts(num=[(1,), (2,)], bad=[(2,)])
        rule = dl(
            Atom.of("r", "?x"),
            negated(Atom.of("bad", "?x")),  # unbound at first
            Literal(Atom.of("num", "?x")),
        )
        assert evaluate([rule], store).facts("r") == {(1,)}

    def test_repeated_variable_join(self):
        store = facts(p=[(1, 1), (1, 2), (3, 3)])
        rule = dl(Atom.of("diag", "?x"), Literal(Atom.of("p", "?x", "?x")))
        assert evaluate([rule], store).facts("diag") == {(1,), (3,)}


class TestScale:
    def test_large_join_completes_quickly(self):
        import time

        n = 2000
        store = facts(
            parent=[(f"k{i}", f"p{i}") for i in range(n)],
            brother=[(f"p{i}", f"u{i}") for i in range(n)],
        )
        rule = dl(
            Atom.of("uncle", "?k", "?u"),
            Literal(Atom.of("parent", "?k", "?p")),
            Literal(Atom.of("brother", "?p", "?u")),
        )
        start = time.monotonic()
        result = evaluate([rule], store)
        elapsed = time.monotonic() - start
        assert len(result.facts("uncle")) == n
        assert elapsed < 2.0, f"join took {elapsed:.2f}s — index regression?"
