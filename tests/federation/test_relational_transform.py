"""Relational stores and the §3 relational → OO transformation."""

import pytest

from repro.errors import ModelError, RegistrationError
from repro.federation import Column, ForeignKey, RelationalDatabase, transform_schema
from repro.federation.transform import materialize_view
from repro.model import Cardinality, DataType


@pytest.fixture
def patient_db() -> RelationalDatabase:
    db = RelationalDatabase("PatientDB", agent="FSMagent1", system="informix")
    db.create_relation(
        "wards", [Column("ward_id"), Column("floor", DataType.INTEGER)]
    )
    db.create_relation(
        "patient-records",
        [Column("pid"), Column("name"), Column("ward_id")],
        primary_key="pid",
        foreign_keys=[ForeignKey("ward_id", "wards", "ward_id")],
    )
    db.insert("wards", {"ward_id": "W1", "floor": 3})
    for i in range(5):
        db.insert("patient-records", {"pid": f"p{i}", "name": f"N{i}", "ward_id": "W1"})
    return db


class TestRelational:
    def test_oids_match_paper_example(self, patient_db):
        oids = [str(oid) for oid, _ in patient_db.scan("patient-records")]
        assert "FSMagent1.informix.PatientDB.patient-records.5" in oids

    def test_scan_with_predicate_and_projection(self, patient_db):
        rows = patient_db.scan(
            "patient-records", lambda r: r["name"] == "N2", columns=["pid"]
        )
        assert rows[0][1] == {"pid": "p2"}

    def test_lookup_by_value(self, patient_db):
        assert len(patient_db.lookup("patient-records", "ward_id", "W1")) == 5

    def test_type_checked_insert(self, patient_db):
        with pytest.raises(ModelError, match="conform"):
            patient_db.insert("wards", {"ward_id": "W2", "floor": "three"})

    def test_unknown_column_rejected(self, patient_db):
        with pytest.raises(ModelError, match="unknown columns"):
            patient_db.insert("wards", {"ward_id": "W2", "zzz": 1})

    def test_unknown_relation_rejected(self, patient_db):
        with pytest.raises(RegistrationError):
            patient_db.scan("ghost")

    def test_duplicate_relation_rejected(self, patient_db):
        from repro.errors import DuplicateDefinitionError

        with pytest.raises(DuplicateDefinitionError):
            patient_db.create_relation("wards", ["x"])


class TestTransform:
    def test_relations_become_classes(self, patient_db):
        schema = transform_schema(patient_db)
        assert set(schema.class_names) == {"wards", "patient-records"}

    def test_plain_columns_become_attributes(self, patient_db):
        schema = transform_schema(patient_db)
        ward = schema.cls("wards")
        assert ward.attribute("floor").value_type is DataType.INTEGER

    def test_foreign_keys_become_aggregations(self, patient_db):
        schema = transform_schema(patient_db)
        record = schema.cls("patient-records")
        agg = record.aggregation("ward_id")
        assert agg.range_class == "wards"
        assert agg.cardinality is Cardinality.M_TO_ONE

    def test_pk_foreign_key_is_one_to_one(self):
        db = RelationalDatabase("D")
        db.create_relation("a", ["id"])
        db.create_relation(
            "b", ["id"], primary_key="id",
            foreign_keys=[ForeignKey("id", "a", "id")],
        )
        schema = transform_schema(db)
        assert schema.cls("b").aggregation("id").cardinality is Cardinality.ONE_TO_ONE


class TestMaterializeView:
    def test_tuples_become_instances_under_their_oids(self, patient_db):
        _, view = materialize_view(patient_db)
        assert len(view.extent("patient-records")) == 5
        [first] = [o for o in view.extent("patient-records") if o.oid.number == 1]
        assert first["name"] == "N0"

    def test_fk_values_resolve_to_target_oids(self, patient_db):
        _, view = materialize_view(patient_db)
        [patient] = [o for o in view.extent("patient-records") if o.oid.number == 1]
        [ward] = view.follow(patient, "ward_id")
        assert ward["floor"] == 3

    def test_dangling_fk_stays_unresolved(self):
        db = RelationalDatabase("D")
        db.create_relation("a", ["id"])
        db.create_relation(
            "b", ["id", "ref"],
            foreign_keys=[ForeignKey("ref", "a", "id")],
        )
        db.insert("b", {"id": "x", "ref": "missing"})
        _, view = materialize_view(db)
        [orphan] = view.extent("b")
        assert view.follow(orphan, "ref") == []
