"""The FSM layer: registration, integration, federated queries (E-Q)."""

import pytest

from repro.errors import QueryError, RegistrationError
from repro.federation import FSM, FSMAgent, FederatedQuery, SameObjectSpec
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.workloads import genealogy


@pytest.fixture
def genealogy_fsm() -> FSM:
    s1, s2, text, databases = genealogy()
    fsm = FSM()
    agent1, agent2 = FSMAgent("agent1"), FSMAgent("agent2")
    agent1.host_object_database(databases["S1"])
    agent2.host_object_database(databases["S2"])
    fsm.register_agent(agent1)
    fsm.register_agent(agent2)
    fsm.declare(text)
    fsm.integrate("S1", "S2")
    return fsm


class TestRegistration:
    def test_duplicate_agent_rejected(self, genealogy_fsm):
        with pytest.raises(RegistrationError):
            genealogy_fsm.register_agent(FSMAgent("agent1"))

    def test_duplicate_schema_rejected(self):
        fsm = FSM()
        s = Schema("S1")
        s.add_class(ClassDef("a"))
        agent1, agent2 = FSMAgent("x"), FSMAgent("y")
        agent1.host_object_database(ObjectDatabase(s))
        other = Schema("S1")
        other.add_class(ClassDef("a"))
        agent2.host_object_database(ObjectDatabase(other))
        fsm.register_agent(agent1)
        with pytest.raises(RegistrationError, match="already hosted"):
            fsm.register_agent(agent2)

    def test_schema_export(self, genealogy_fsm):
        assert "parent" in genealogy_fsm.schema("S1").class_names


class TestAppendixBQuery:
    """The headline query: ?- uncle(John, y) answered across schemas."""

    def test_derived_uncle_found(self, genealogy_fsm):
        rows = genealogy_fsm.query("uncle(niece_nephew='John') -> Ussn#")
        assert [row["Ussn#"] for row in rows] == ["B1"]

    def test_local_and_derived_uncles_union(self, genealogy_fsm):
        rows = genealogy_fsm.query("uncle() -> Ussn#")
        assert {row["Ussn#"] for row in rows} == {"U9", "B1", "B2"}

    def test_without_derivation_assertion_s1_ignored(self):
        """The paper's motivation: drop the assertion and S1 no longer
        contributes to uncle queries."""
        s1, s2, _, databases = genealogy()
        fsm = FSM()
        agent1, agent2 = FSMAgent("agent1"), FSMAgent("agent2")
        agent1.host_object_database(databases["S1"])
        agent2.host_object_database(databases["S2"])
        fsm.register_agent(agent1)
        fsm.register_agent(agent2)
        fsm.integrate("S1", "S2")  # no assertions at all
        rows = fsm.query("uncle() -> Ussn#")
        assert {row["Ussn#"] for row in rows} == {"U9"}

    def test_appendix_b_top_down_agrees_with_bottom_up(self, genealogy_fsm):
        query = FederatedQuery.parse("uncle(niece_nephew='John') -> Ussn#")
        bottom_up = query.run(genealogy_fsm.engine())
        top_down = query.run(genealogy_fsm.appendix_b())
        assert [r["Ussn#"] for r in bottom_up] == [r["Ussn#"] for r in top_down]

    def test_appendix_b_respects_autonomy(self, genealogy_fsm):
        """Agents only ever serve single-concept fetches."""
        program = genealogy_fsm.appendix_b()
        query = FederatedQuery.parse("uncle() -> Ussn#")
        query.run(program)
        agent = genealogy_fsm.agent("agent1")
        assert agent.access_count > 0
        assert agent.accessed_classes <= {("S1", "parent"), ("S1", "brother")}


class TestQueryParsing:
    def test_textual_roundtrip(self):
        query = FederatedQuery.parse("uncle(niece_nephew='John') -> Ussn#, name")
        assert query.class_name == "uncle"
        assert dict(query.where) == {"niece_nephew": "John"}
        assert query.select == ("Ussn#", "name")

    def test_question_prefix_accepted(self):
        query = FederatedQuery.parse("?- uncle(Ussn#='B1')")
        assert dict(query.where) == {"Ussn#": "B1"}

    def test_numeric_constants(self):
        query = FederatedQuery.parse("stock(price=42)")
        assert dict(query.where) == {"price": 42}

    def test_malformed_rejected(self):
        with pytest.raises(QueryError):
            FederatedQuery.parse("not a query")

    def test_unknown_algorithm_rejected(self, genealogy_fsm):
        with pytest.raises(QueryError, match="unknown algorithm"):
            genealogy_fsm.integrate("S1", "S2", algorithm="quantum")


class TestIntersectionQueries:
    """Principle 3 rules drive real queries through same-object facts."""

    def test_virtual_intersection_class_populated(self):
        s1 = Schema("S1")
        s1.add_class(ClassDef("faculty").attr("fssn#").attr("income", "integer"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("student").attr("ssn#").attr("study_support", "integer"))
        db1 = ObjectDatabase(s1, agent="a1")
        db2 = ObjectDatabase(s2, agent="a2")
        db1.insert("faculty", {"fssn#": "1", "income": 100})
        db1.insert("faculty", {"fssn#": "2", "income": 200})
        db2.insert("student", {"ssn#": "1", "study_support": 50})
        fsm = FSM()
        a1, a2 = FSMAgent("a1"), FSMAgent("a2")
        a1.host_object_database(db1)
        a2.host_object_database(db2)
        fsm.register_agent(a1)
        fsm.register_agent(a2)
        fsm.declare(
            """
            assertion S1.faculty ^ S2.student
              attr S1.faculty.fssn# == S2.student.ssn#
              attr S1.faculty.income ^ S2.student.study_support
            end
            """
        )
        fsm.add_same_object(
            SameObjectSpec("S1", "faculty", "fssn#", "S2", "student", "ssn#")
        )
        fsm.integrate("S1", "S2")
        engine = fsm.engine()
        working_students = engine.instances_of("faculty_student")
        assert len(working_students) == 1
        only_faculty = engine.instances_of("faculty_only")
        assert len(only_faculty) == 1
