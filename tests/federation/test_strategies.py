"""Experiment E-X2: Fig 2's multi-schema integration strategies."""

import pytest

from repro.federation import FSM, FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema


def make_fsm() -> FSM:
    """Four small person-like schemas with pairwise equivalences."""
    fsm = FSM()
    for index in range(1, 5):
        schema = Schema(f"S{index}")
        schema.add_class(
            ClassDef(f"person{index}").attr("ssn#").attr(f"extra{index}")
        )
        schema.add_class(
            ClassDef(f"student{index}", parents=[f"person{index}"]).attr("gpa")
        )
        database = ObjectDatabase(schema, agent=f"a{index}")
        database.insert(f"person{index}", {"ssn#": f"p{index}", f"extra{index}": "x"})
        agent = FSMAgent(f"a{index}")
        agent.host_object_database(database)
        fsm.register_agent(agent)
    # person1 ≡ person2 ≡ person3 ≡ person4 via pairwise declarations.
    for left, right in [(1, 2), (2, 3), (3, 4), (1, 3), (1, 4), (2, 4)]:
        fsm.declare(
            f"""
            assertion S{left}.person{left} == S{right}.person{right}
              attr S{left}.person{left}.ssn# == S{right}.person{right}.ssn#
            end
            """
        )
    return fsm


class TestAccumulation:
    def test_all_four_persons_merge_into_one(self):
        fsm = make_fsm()
        result = fsm.integrate_all(strategy="accumulation")
        names = {result.is_name(f"S{i}", f"person{i}") for i in range(1, 5)}
        assert len(names) == 1

    def test_every_local_class_placed(self):
        fsm = make_fsm()
        result = fsm.integrate_all(strategy="accumulation")
        for index in range(1, 5):
            assert result.is_name(f"S{index}", f"student{index}") is not None

    def test_merged_attribute_origins_flattened_to_locals(self):
        fsm = make_fsm()
        result = fsm.integrate_all(strategy="accumulation")
        merged_name = result.is_name("S1", "person1")
        merged = result.cls(merged_name)
        ssn = merged.attributes["ssn#"]
        schemas = {origin[0] for origin in ssn.origins}
        assert schemas == {"S1", "S2", "S3", "S4"}

    def test_queries_span_all_four_databases(self):
        fsm = make_fsm()
        result = fsm.integrate_all(strategy="accumulation")
        merged_name = result.is_name("S1", "person1")
        engine = fsm.engine()
        values = engine.attribute_values(merged_name, "ssn#")
        assert values == {"p1", "p2", "p3", "p4"}


class TestPairwise:
    def test_pairwise_strategy_produces_equivalent_global_schema(self):
        accumulated = make_fsm().integrate_all(strategy="accumulation")
        pairwise = make_fsm().integrate_all(strategy="pairwise")
        acc_names = {
            accumulated.is_name(f"S{i}", f"person{i}") for i in range(1, 5)
        }
        pw_names = {pairwise.is_name(f"S{i}", f"person{i}") for i in range(1, 5)}
        assert len(acc_names) == 1 and len(pw_names) == 1
        assert len(accumulated.classes) == len(pairwise.classes)

    def test_pairwise_queries_agree_with_accumulation(self):
        fsm_a = make_fsm()
        result_a = fsm_a.integrate_all(strategy="accumulation")
        fsm_b = make_fsm()
        result_b = fsm_b.integrate_all(strategy="pairwise")
        name_a = result_a.is_name("S1", "person1")
        name_b = result_b.is_name("S1", "person1")
        assert (
            fsm_a.engine().attribute_values(name_a, "ssn#")
            == fsm_b.engine().attribute_values(name_b, "ssn#")
        )

    def test_odd_count_carries_leftover(self):
        fsm = make_fsm()
        result = fsm.integrate_all(
            order=["S1", "S2", "S3"], strategy="pairwise"
        )
        names = {result.is_name(f"S{i}", f"person{i}") for i in (1, 2, 3)}
        assert len(names) == 1


class TestGuards:
    def test_unknown_strategy_rejected(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError, match="strategy"):
            make_fsm().integrate_all(strategy="magical")

    def test_single_schema_rejected(self):
        from repro.errors import RegistrationError

        with pytest.raises(RegistrationError):
            make_fsm().integrate_all(order=["S1"])

    def test_unregistered_schema_rejected(self):
        from repro.errors import RegistrationError

        with pytest.raises(RegistrationError):
            make_fsm().integrate_all(order=["S1", "S9"])
