"""Extensional semantics: value-set specs evaluated against live data.

Closes the loop on Principle 1 (Example 6: ``value_set(IS_ab) :=
value_set(a) ∪ value_set(b)``, the intersection splits, concatenation)
and Principle 3 (Example 8's AIF-computed ``income_study_support``).
"""

import pytest

from repro.core import SchemaIntegrator
from repro.federation import SameObjectSpec, evaluate_value_set
from repro.model import ClassDef, ObjectDatabase, Schema


@pytest.fixture
def merged_setup():
    s1 = Schema("S1")
    s1.add_class(
        ClassDef("a").attr("x").attr("p").attr("city")
    )
    s2 = Schema("S2")
    s2.add_class(
        ClassDef("b").attr("y").attr("q").attr("street")
    )
    integrated = SchemaIntegrator(
        s1, s2,
        """
        assertion S1.a == S2.b
          attr S1.a.x == S2.b.y
          attr S1.a.p ^ S2.b.q
          attr S1.a.city alpha(address) S2.b.street
        end
        """,
    ).run()
    db1 = ObjectDatabase(s1, agent="a1")
    db1.insert("a", {"x": "1", "p": "red", "city": "Bonn"})
    db1.insert("a", {"x": "2", "p": "blue"})
    db2 = ObjectDatabase(s2, agent="a2")
    db2.insert("b", {"y": "2", "q": "blue", "street": "Hauptstr"})
    db2.insert("b", {"y": "3", "q": "green"})
    return integrated, {"S1": db1, "S2": db2}


class TestPrinciple1Specs:
    def test_union_value_set(self, merged_setup):
        integrated, databases = merged_setup
        values = evaluate_value_set(integrated, "a", "x", databases)
        assert values == {"1", "2", "3"}

    def test_intersection_splits(self, merged_setup):
        integrated, databases = merged_setup
        assert evaluate_value_set(integrated, "a", "p_only", databases) == {"red"}
        assert evaluate_value_set(integrated, "a", "q_only", databases) == {"green"}
        assert evaluate_value_set(integrated, "a", "p_q", databases) == {"blue"}

    def test_concatenation_needs_same_object_pairs(self, merged_setup):
        integrated, databases = merged_setup
        # Without identity specs no pairs exist:
        assert evaluate_value_set(integrated, "a", "address", databases) == set()
        specs = [SameObjectSpec("S1", "a", "x", "S2", "b", "y")]
        # The only key-matched pair (x=2 / y=2) has no city on the a
        # side, so cancatenation yields Null for it:
        assert evaluate_value_set(integrated, "a", "address", databases, specs) == set()
        # A pair with both halves present concatenates (Principle 1 α):
        databases["S1"].insert("a", {"x": "9", "city": "Ulm"})
        databases["S2"].insert("b", {"y": "9", "street": "Ringstr"})
        values = evaluate_value_set(integrated, "a", "address", databases, specs)
        assert values == {"Ulm Ringstr"}


class TestPrinciple3AIF:
    def test_example8_average(self):
        s1 = Schema("S1")
        s1.add_class(ClassDef("faculty").attr("fssn#").attr("income", "integer"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("student").attr("ssn#").attr("study_support", "integer"))
        integrated = SchemaIntegrator(
            s1, s2,
            """
            assertion S1.faculty ^ S2.student
              attr S1.faculty.fssn# == S2.student.ssn#
              attr S1.faculty.income ^ S2.student.study_support
            end
            """,
        ).run()
        db1 = ObjectDatabase(s1, agent="a1")
        db1.insert("faculty", {"fssn#": "7", "income": 100})
        db2 = ObjectDatabase(s2, agent="a2")
        db2.insert("student", {"ssn#": "7", "study_support": 50})
        specs = [SameObjectSpec("S1", "faculty", "fssn#", "S2", "student", "ssn#")]
        values = evaluate_value_set(
            integrated, "faculty_student", "income_study_support",
            {"S1": db1, "S2": db2}, specs,
        )
        assert values == {75.0}

    def test_custom_aif_changes_result(self):
        s1 = Schema("S1")
        s1.add_class(ClassDef("faculty").attr("fssn#").attr("income", "integer"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("student").attr("ssn#").attr("study_support", "integer"))
        integrated = SchemaIntegrator(
            s1, s2,
            """
            assertion S1.faculty ^ S2.student
              attr S1.faculty.fssn# == S2.student.ssn#
              attr S1.faculty.income ^ S2.student.study_support
            end
            """,
        ).run()
        integrated.aifs.register("income_study_support", "sum", lambda x, y: x + y)
        db1 = ObjectDatabase(s1, agent="a1")
        db1.insert("faculty", {"fssn#": "7", "income": 100})
        db2 = ObjectDatabase(s2, agent="a2")
        db2.insert("student", {"ssn#": "7", "study_support": 50})
        specs = [SameObjectSpec("S1", "faculty", "fssn#", "S2", "student", "ssn#")]
        values = evaluate_value_set(
            integrated, "faculty_student", "income_study_support",
            {"S1": db1, "S2": db2}, specs,
        )
        assert values == {150}


class TestErrors:
    def test_unknown_attribute_rejected(self, merged_setup):
        from repro.errors import IntegrationError

        integrated, databases = merged_setup
        with pytest.raises(IntegrationError):
            evaluate_value_set(integrated, "a", "ghost", databases)
