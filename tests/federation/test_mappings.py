"""Data mappings F^A_{DB_i,B} and same-object resolution (§3)."""

import pytest

from repro.errors import MappingError
from repro.federation import (
    DefaultMapping,
    FunctionMapping,
    MappingRegistry,
    SameObjectSpec,
    TripleMapping,
    same_object_facts,
)
from repro.integration import SAME_OBJECT
from repro.model import ClassDef, ObjectDatabase, Schema


class TestDefaultMapping:
    def test_identity(self):
        assert DefaultMapping().translate("x") == "x"

    def test_translate_set_drops_none(self):
        assert DefaultMapping().translate_set(["a", None]) == {"a"}


class TestTripleMapping:
    def test_best_degree_wins(self):
        mapping = TripleMapping.of(("It", "Italy", 0.9), ("Ita", "Italy", 0.5))
        assert mapping.translate("Italy") == "It"

    def test_threshold_filters(self):
        mapping = TripleMapping.of(("It", "Italy", 0.4), threshold=0.5)
        assert mapping.translate("Italy") is None

    def test_degree_lookup(self):
        mapping = TripleMapping.of(("It", "Italy", 0.9))
        assert mapping.degree("It", "Italy") == 0.9
        assert mapping.degree("It", "France") == 0.0

    def test_degree_out_of_range_rejected(self):
        with pytest.raises(MappingError):
            TripleMapping.of(("a", "b", 1.5))


class TestFunctionMapping:
    def test_paper_example_inch_to_cm(self):
        mapping = FunctionMapping(lambda x: 2.54 * x, "y = 2.54 * x")
        assert mapping.translate(10) == 25.4

    def test_none_passes_through(self):
        assert FunctionMapping(lambda x: x + 1).translate(None) is None


class TestRegistry:
    def test_resolve_falls_back_to_default(self):
        registry = MappingRegistry()
        assert isinstance(registry.resolve("a", "S1", "b"), DefaultMapping)

    def test_registered_mapping_wins(self):
        registry = MappingRegistry()
        registry.register("height", "S1", "height_in", FunctionMapping(lambda x: 2.54 * x))
        assert registry.resolve("height", "S1", "height_in").translate(1) == 2.54
        assert len(registry) == 1


class TestSameObject:
    @pytest.fixture
    def databases(self):
        s1 = Schema("S1")
        s1.add_class(ClassDef("faculty").attr("fssn#"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("student").attr("ssn#"))
        db1 = ObjectDatabase(s1, agent="a1")
        db2 = ObjectDatabase(s2, agent="a2")
        f = db1.insert("faculty", {"fssn#": "123"})
        s = db2.insert("student", {"ssn#": "123"})
        db2.insert("student", {"ssn#": "999"})
        return {"S1": db1, "S2": db2}, f.oid, s.oid

    def test_matching_keys_produce_symmetric_facts(self, databases):
        dbs, f_oid, s_oid = databases
        spec = SameObjectSpec("S1", "faculty", "fssn#", "S2", "student", "ssn#")
        store = same_object_facts([spec], dbs)
        assert (f_oid, s_oid) in store.facts(SAME_OBJECT)
        assert (s_oid, f_oid) in store.facts(SAME_OBJECT)
        assert len(store.facts(SAME_OBJECT)) == 2

    def test_translation_applied_to_right_key(self, databases):
        dbs, f_oid, s_oid = databases
        mapping = FunctionMapping(lambda v: v.lstrip("0"))
        dbs["S2"].insert("student", {"ssn#": "00123"})
        spec = SameObjectSpec(
            "S1", "faculty", "fssn#", "S2", "student", "ssn#", mapping=mapping
        )
        store = same_object_facts([spec], dbs)
        assert len(store.facts(SAME_OBJECT)) == 4  # two partners, both ways

    def test_unregistered_schema_rejected(self, databases):
        dbs, _, _ = databases
        spec = SameObjectSpec("S9", "x", "k", "S2", "student", "ssn#")
        with pytest.raises(MappingError):
            same_object_facts([spec], dbs)
