"""Fact lifting, inheritance rules and the value-context machinery."""

import pytest

from repro.core import SchemaIntegrator
from repro.federation import FSMAgent, lift_facts, inheritance_rules
from repro.federation.evaluation import AgentSource
from repro.federation.mappings import FunctionMapping, MappingRegistry
from repro.logic import att_predicate, inst_predicate
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.workloads import appendix_a


@pytest.fixture
def integrated_with_dbs():
    s1, s2, text = appendix_a()
    integrated = SchemaIntegrator(s1, s2, text).run()
    db1 = ObjectDatabase(s1, agent="a1")
    db1.insert("person", {"ssn#": "1", "name": "Ann"})
    db1.insert("lecturer", {"ssn#": "2", "name": "Lee", "salary": "high"})
    db2 = ObjectDatabase(s2, agent="a2")
    db2.insert("human", {"ssn#": "3", "name": "Hugo"})
    db2.insert("professor", {"ssn#": "4", "name": "Paula", "rank": "W3"})
    return integrated, {"S1": db1, "S2": db2}


class TestLiftFacts:
    def test_merged_class_collects_both_extents(self, integrated_with_dbs):
        integrated, databases = integrated_with_dbs
        store = lift_facts(integrated, databases)
        persons = store.facts(inst_predicate("person"))
        # Ann + Lee (S1, lecturer ⊑ person) + Hugo + Paula (S2 side).
        assert len(persons) == 4

    def test_attribute_values_land_on_ancestors(self, integrated_with_dbs):
        integrated, databases = integrated_with_dbs
        store = lift_facts(integrated, databases)
        names = {v for _, v in store.facts(att_predicate("person", "name"))}
        assert names == {"Ann", "Lee", "Hugo", "Paula"}

    def test_subclass_specific_attributes_stay_on_subclass(
        self, integrated_with_dbs
    ):
        integrated, databases = integrated_with_dbs
        store = lift_facts(integrated, databases)
        assert len(store.facts(att_predicate("lecturer", "salary"))) == 1
        assert not store.facts(att_predicate("person", "salary"))

    def test_virtual_classes_get_no_base_facts(self, integrated_with_dbs):
        integrated, databases = integrated_with_dbs
        store = lift_facts(integrated, databases)
        assert not store.facts(inst_predicate("student_faculty"))

    def test_data_mapping_translates_values(self):
        s1 = Schema("S1")
        s1.add_class(ClassDef("m").attr("height_in", "integer"))
        s2 = Schema("S2")
        s2.add_class(ClassDef("n").attr("height_cm", "integer"))
        integrated = SchemaIntegrator(
            s1, s2,
            "assertion S1.m == S2.n\n  attr S1.m.height_in == S2.n.height_cm\nend",
        ).run()
        db1 = ObjectDatabase(s1, agent="a1")
        db1.insert("m", {"height_in": 10})
        db2 = ObjectDatabase(s2, agent="a2")
        db2.insert("n", {"height_cm": 100})
        registry = MappingRegistry()
        merged_attr = next(iter(integrated.cls("m").attributes))
        registry.register(
            merged_attr, "S1", "height_in",
            FunctionMapping(lambda x: round(x * 2.54), "y = 2.54x"),
        )
        store = lift_facts(integrated, {"S1": db1, "S2": db2}, registry)
        values = {v for _, v in store.facts(att_predicate("m", merged_attr))}
        assert values == {25, 100}  # inches converted, cm passed through


class TestInheritanceRules:
    def test_one_rule_per_integrated_link(self, integrated_with_dbs):
        integrated, _ = integrated_with_dbs
        rules = inheritance_rules(integrated)
        assert len(rules) == len(integrated.is_a_links())

    def test_rules_propagate_membership_upward(self, integrated_with_dbs):
        from repro.logic import Atom, QueryEngine

        integrated, databases = integrated_with_dbs
        store = lift_facts(integrated, databases)
        engine = QueryEngine(
            integrated.evaluable_rules() + inheritance_rules(integrated), store
        )
        employees = engine.ask(Atom.of(inst_predicate("employee"), "?o"))
        # Paula (professor → faculty → employee) and Lee
        # (lecturer → faculty via the single Fig 18(c) link → employee).
        assert len(employees) == 2


class TestAgentSource:
    def test_fetch_serves_only_own_schema(self, integrated_with_dbs):
        integrated, databases = integrated_with_dbs
        agent = FSMAgent("a1")
        agent.host_object_database(databases["S1"])
        source = AgentSource("S1", agent, integrated)
        tuples = source.fetch(inst_predicate("person"))
        assert len(tuples) == 2  # Ann + Lee; S2's objects are invisible

    def test_fetch_unknown_predicate_empty(self, integrated_with_dbs):
        integrated, databases = integrated_with_dbs
        agent = FSMAgent("a1")
        agent.host_object_database(databases["S1"])
        source = AgentSource("S1", agent, integrated)
        assert source.fetch("not$a$real$predicate") == set()
        assert source.fetch("plain") == set()

    def test_concepts_enumerates_own_members(self, integrated_with_dbs):
        integrated, databases = integrated_with_dbs
        agent = FSMAgent("a1")
        agent.host_object_database(databases["S1"])
        source = AgentSource("S1", agent, integrated)
        concepts = source.concepts()
        assert inst_predicate("lecturer") in concepts
        assert att_predicate("lecturer", "salary") in concepts
        # professor is purely S2-owned:
        assert inst_predicate("professor") not in concepts


class TestAgentAccounting:
    def test_access_counting(self, integrated_with_dbs):
        _, databases = integrated_with_dbs
        agent = FSMAgent("a9")
        agent.host_object_database(databases["S1"])
        agent.fetch_extent("S1", "person")
        agent.fetch_value_set("S1", "lecturer", "salary")
        assert agent.access_count == 2
        assert ("S1", "person") in agent.accessed_classes

    def test_unknown_schema_rejected(self):
        from repro.errors import RegistrationError

        with pytest.raises(RegistrationError):
            FSMAgent("a").fetch_extent("ghost", "c")

    def test_duplicate_schema_rejected(self, integrated_with_dbs):
        from repro.errors import RegistrationError

        _, databases = integrated_with_dbs
        agent = FSMAgent("a")
        agent.host_object_database(databases["S1"])
        with pytest.raises(RegistrationError):
            agent.host_object_database(databases["S1"])
