"""Property-based federation invariants (hypothesis).

Completeness of fact lifting: every non-null attribute value stored in
any component database must be visible through the integrated schema —
no data is lost by integration, regardless of the assertion mix.
"""

from hypothesis import given, settings, strategies as st

from repro.federation.evaluation import lift_facts
from repro.integration import schema_integration
from repro.logic import att_predicate, inst_predicate
from repro.workloads import mirrored_pair, populate


@st.composite
def populated_workloads(draw):
    size = draw(st.integers(min_value=3, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=500))
    eq = draw(st.sampled_from([0.0, 0.4, 1.0]))
    inc = draw(st.sampled_from([0.0, 0.3]))
    left, right, assertions = mirrored_pair(
        size, seed=seed, equivalence_fraction=eq, inclusion_fraction=inc
    )
    db_left = populate(left, per_class=2, seed=seed + 1)
    db_right = populate(right, per_class=2, seed=seed + 2)
    return left, right, assertions, {"S1": db_left, "S2": db_right}


@given(populated_workloads())
@settings(max_examples=20, deadline=None)
def test_every_instance_visible_through_integrated_schema(workload):
    left, right, assertions, databases = workload
    integrated, _ = schema_integration(left, right, assertions)
    store = lift_facts(integrated, databases)
    for schema_name, database in databases.items():
        schema = databases[schema_name].schema
        for class_name in schema.class_names:
            integrated_name = integrated.is_name(schema_name, class_name)
            assert integrated_name is not None
            members = store.facts(inst_predicate(integrated_name))
            for instance in database.direct_extent(class_name):
                assert (instance.oid,) in members


@given(populated_workloads())
@settings(max_examples=20, deadline=None)
def test_every_attribute_value_visible(workload):
    left, right, assertions, databases = workload
    integrated, _ = schema_integration(left, right, assertions)
    store = lift_facts(integrated, databases)
    for schema_name, database in databases.items():
        schema = database.schema
        for class_name in schema.class_names:
            integrated_name = integrated.is_name(schema_name, class_name)
            integrated_class = integrated.cls(integrated_name)
            for instance in database.direct_extent(class_name):
                for local_attr, value in instance.attributes.items():
                    if value is None:
                        continue
                    # find the integrated attribute fed by this local one
                    carriers = [
                        attribute.name
                        for attribute in integrated_class.attributes.values()
                        if any(
                            s == schema_name and a == local_attr
                            for s, c, a in attribute.origins
                        )
                    ]
                    assert carriers, (
                        f"{schema_name}.{class_name}.{local_attr} feeds no "
                        f"integrated attribute of {integrated_name}"
                    )
                    found = any(
                        (instance.oid, value)
                        in store.facts(att_predicate(integrated_name, carrier))
                        for carrier in carriers
                    )
                    assert found
