"""Query decomposition over the integrated schema (conclusion's future work)."""

import pytest

from repro.core import SchemaIntegrator
from repro.errors import QueryError
from repro.federation import FederatedQuery, decompose_query, explain
from repro.workloads import appendix_a, genealogy


@pytest.fixture(scope="module")
def integrated():
    s1, s2, text = appendix_a()
    return SchemaIntegrator(s1, s2, text).run()


class TestMergedClassPlans:
    def test_merged_class_scans_both_schemas(self, integrated):
        query = FederatedQuery.parse("person(ssn#='1') -> name")
        plan = decompose_query(query, integrated)
        schemas = {sub.schema for sub in plan.sub_queries}
        assert schemas == {"S1", "S2"}

    def test_attribute_names_translated_back(self, integrated):
        query = FederatedQuery.parse("person() -> name")
        plan = decompose_query(query, integrated)
        by_schema = {sub.schema: sub for sub in plan.sub_queries}
        # Both locals call it 'name' in Appendix A; the local class names
        # differ though:
        assert by_schema["S1"].class_name == "person"
        assert by_schema["S2"].class_name == "human"

    def test_missing_local_attribute_dropped_from_subquery(self, integrated):
        # 'gpa' exists only on S1.student.
        query = FederatedQuery.parse("student(gpa=4.0)")
        plan = decompose_query(query, integrated)
        [sub] = plan.sub_queries
        assert sub.schema == "S1"
        assert dict(sub.where) == {"gpa": 4.0}

    def test_unknown_class_rejected(self, integrated):
        with pytest.raises(QueryError):
            decompose_query(FederatedQuery.parse("ghost()"), integrated)


class TestVirtualAndRulePlans:
    def test_virtual_class_flagged(self, integrated):
        plan = decompose_query(
            FederatedQuery.parse("student_faculty()"), integrated
        )
        assert plan.virtual
        assert plan.sub_queries == ()
        assert plan.rules  # defined by the P3 membership rule

    def test_derivation_rules_reported(self):
        s1, s2, text, _ = genealogy(populated=False)
        integrated = SchemaIntegrator(s1, s2, text).run()
        plan = decompose_query(FederatedQuery.parse("uncle()"), integrated)
        assert len(plan.rules) == 1
        assert "parent" in plan.rules[0]

    def test_explain_renders(self, integrated):
        text = explain("person(ssn#='1') -> name", integrated)
        assert "plan for:" in text
        assert "S1: scan person" in text
        assert "S2: scan human" in text
