"""FSMAgent access accounting must stay exact under concurrent scans.

The autonomy property of the paper (§3) is *verified* through
``access_count`` — a lost update would silently corrupt the evidence,
so the counter is hammered from many threads here.
"""

from concurrent.futures import ThreadPoolExecutor

from repro.federation import FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema

THREADS = 16
SCANS_PER_THREAD = 200


def _agent():
    schema = Schema("S1")
    schema.add_class(ClassDef("person").attr("ssn#"))
    database = ObjectDatabase(schema, agent="h1")
    database.insert("person", {"ssn#": "1"})
    agent = FSMAgent("a1")
    agent.host_object_database(database)
    return agent


def test_access_count_is_exact_under_contention():
    agent = _agent()

    def hammer(_worker):
        for _ in range(SCANS_PER_THREAD):
            agent.fetch_direct_extent("S1", "person")

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        list(pool.map(hammer, range(THREADS)))
    assert agent.access_count == THREADS * SCANS_PER_THREAD
    assert agent.accessed_classes == {("S1", "person")}


def test_mixed_scan_kinds_all_counted():
    agent = _agent()

    def hammer(worker):
        for _ in range(SCANS_PER_THREAD):
            if worker % 2:
                agent.fetch_extent("S1", "person")
            else:
                agent.fetch_value_set("S1", "person", "ssn#")

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        list(pool.map(hammer, range(THREADS)))
    assert agent.access_count == THREADS * SCANS_PER_THREAD
