"""Rules generated in one integration round must survive later rounds.

Three-schema accumulation: round 1 integrates parent/brother (S1) with
uncle (S2) and generates the Example 9 derivation rule; round 2 folds in
S3 (another uncle vocabulary, equivalent to S2's).  The carried rule —
re-homed onto round-2 class names — must still answer federated queries,
and S3's local uncles must join the same merged class.
"""

import pytest

from repro.federation import FSM, FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema


@pytest.fixture
def three_schema_fsm() -> FSM:
    s1 = Schema("S1")
    s1.add_class(
        ClassDef("parent").attr("Pssn#").attr("children", multivalued=True)
    )
    s1.add_class(
        ClassDef("brother").attr("Bssn#").attr("brothers", multivalued=True)
    )
    s2 = Schema("S2")
    s2.add_class(
        ClassDef("uncle").attr("Ussn#").attr("niece_nephew", multivalued=True)
    )
    s3 = Schema("S3")
    s3.add_class(
        ClassDef("oncle").attr("ssn").attr("neveu", multivalued=True)
    )

    db1 = ObjectDatabase(s1, agent="a1")
    db1.insert("parent", {"Pssn#": "P1", "children": ["John"]})
    db1.insert("brother", {"Bssn#": "B1", "brothers": ["P1"]})
    db2 = ObjectDatabase(s2, agent="a2")
    db2.insert("uncle", {"Ussn#": "U1", "niece_nephew": ["Alice"]})
    db3 = ObjectDatabase(s3, agent="a3")
    db3.insert("oncle", {"ssn": "O1", "neveu": ["Marcel"]})

    fsm = FSM()
    for name, db in (("a1", db1), ("a2", db2), ("a3", db3)):
        agent = FSMAgent(name)
        agent.host_object_database(db)
        fsm.register_agent(agent)
    fsm.declare(
        """
        assertion S1(parent, brother) -> S2.uncle
          value S1.parent.Pssn# in S1.brother.brothers
          attr S1.brother.Bssn# == S2.uncle.Ussn#
          attr S1.parent.children >= S2.uncle.niece_nephew
        end
        assertion S2.uncle == S3.oncle
          attr S2.uncle.Ussn# == S3.oncle.ssn
          attr S2.uncle.niece_nephew == S3.oncle.neveu
        end
        """
    )
    return fsm


class TestCarriedRules:
    def test_rule_survives_accumulation(self, three_schema_fsm):
        result = three_schema_fsm.integrate_all(
            order=["S1", "S2", "S3"], strategy="accumulation"
        )
        derivation_rules = result.rules_by_principle("P5")
        assert derivation_rules, "Example 9 rule lost in round 2"

    def test_carried_rule_references_current_class_names(self, three_schema_fsm):
        result = three_schema_fsm.integrate_all(
            order=["S1", "S2", "S3"], strategy="accumulation"
        )
        merged_uncle = result.is_name("S2", "uncle")
        [rule] = [r.rule for r in result.rules_by_principle("P5")]
        head = rule.heads[0]
        assert head.class_name == merged_uncle

    def test_query_spans_all_three_sources(self, three_schema_fsm):
        result = three_schema_fsm.integrate_all(
            order=["S1", "S2", "S3"], strategy="accumulation"
        )
        merged_uncle = result.is_name("S2", "uncle")
        assert result.is_name("S3", "oncle") == merged_uncle
        engine = three_schema_fsm.engine()
        ussns = engine.attribute_values(merged_uncle, "Ussn#")
        # U1 (local S2), O1 (S3 through the merge), B1 (derived from S1).
        assert ussns == {"U1", "O1", "B1"}

    def test_uncle_first_order_also_works(self, three_schema_fsm):
        """Integration order must not change the answer set."""
        result = three_schema_fsm.integrate_all(
            order=["S2", "S3", "S1"], strategy="accumulation"
        )
        merged_uncle = result.is_name("S2", "uncle")
        engine = three_schema_fsm.engine()
        assert engine.attribute_values(merged_uncle, "Ussn#") == {"U1", "O1", "B1"}
