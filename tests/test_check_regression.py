"""The CI perf-regression gate: floors, fan-out parity, baseline drift."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def _healthy():
    return {
        "concurrent_speedup": 5.5,
        "warm_agent_scans": 0,
        "fanout": [
            {"agents": 4, "threaded_scans_per_s": 370.0, "async_scans_per_s": 375.0},
            {
                "agents": 256,
                "threaded_scans_per_s": 780.0,
                "async_scans_per_s": 15000.0,
            },
        ],
        "sharding": [
            {
                "shards": 1,
                "threaded_ms": 105.0,
                "async_ms": 108.0,
                "threaded_speedup_vs_1": 1.0,
                "async_speedup_vs_1": 1.0,
            },
            {
                "shards": 8,
                "threaded_ms": 30.0,
                "async_ms": 33.0,
                "threaded_speedup_vs_1": 3.5,
                "async_speedup_vs_1": 3.2,
            },
        ],
        "restart": {
            "cold_ms": 23.0,
            "cold_agent_scans": 8,
            "warm_restart_ms": 3.6,
            "warm_restart_agent_scans": 0,
            "cache_restores": 40,
            "answers_match": True,
        },
        "service": {
            "clients": 8,
            "requests_per_client": 25,
            "cold_ms": 45.0,
            "req_per_s": 150.0,
            "p50_ms": 40.0,
            "p99_ms": 95.0,
            "warm_agent_scans": 0,
            "status_errors": 0,
            "completed": 200,
        },
        "sources": {
            "experiment": "E-R7 heterogeneous source adapters at 1e5 instances",
            "backend": "sqlite",
            "seed": 41,
            "schemas": 3,
            "total_instances": 108060,
            "write_ms": 400.0,
            "load_integrate_ms": 2.0,
            "cold_ms": 950.0,
            "warm_ms": 850.0,
            "cold_agent_scans": 3,
            "warm_agent_scans": 0,
            "answers": 2354,
            "answers_match_memory": True,
            "scan_extent": 32000,
            "scan_instances_per_s": 80000.0,
        },
        "deltas": {
            "experiment": "E-R8 incremental invalidation under mixed load",
            "operations": 200,
            "reads": 180,
            "writes": 20,
            "injected_latency_ms": 5.0,
            "patched_agent_scans": 0,
            "bump_agent_scans": 19,
            "patched_scans_per_query": 0.0,
            "bump_scans_per_query": 0.1056,
            "granules_patched": 19,
            "deltas_applied": 19,
            "fallback_invalidations": 0,
            "baseline_granules_patched": 0,
            "patched_read_ms": 8.4,
            "bump_read_ms": 8.8,
            "answers": 170,
            "answers_match": True,
        },
        "mp": {
            "experiment": "E-R9 multiprocess data plane vs the GIL plateau",
            "cpus": 16,
            "workers": 8,
            "shards": 8,
            "rounds": 3,
            "total_instances": 6009,
            "answers": 1500,
            "threaded_ms": 210.0,
            "multiprocess_ms": 60.0,
            "threaded_instances_per_s": 28614.3,
            "multiprocess_instances_per_s": 100150.0,
            "mp_speedup": 3.5,
            "answers_identical": True,
        },
        "planner": [
            {
                "federation": "genealogy",
                "unplanned_round_trips": 3,
                "planned_round_trips": 2,
                "round_trip_reduction": 1.5,
                "answers_match": True,
            },
            {
                "federation": "cluster",
                "unplanned_round_trips": 8,
                "planned_round_trips": 4,
                "round_trip_reduction": 2.0,
                "answers_match": True,
            },
        ],
    }


class TestCheck:
    def test_healthy_numbers_pass(self):
        assert check_regression.check(_healthy()) == []

    def test_speedup_floor(self):
        doc = _healthy()
        doc["concurrent_speedup"] = 2.4
        problems = check_regression.check(doc)
        assert any("below the 3.0 floor" in p for p in problems)

    def test_warm_scans_must_be_zero(self):
        doc = _healthy()
        doc["warm_agent_scans"] = 7
        problems = check_regression.check(doc)
        assert any("warm_agent_scans is 7" in p for p in problems)

    def test_missing_fanout_series_fails(self):
        doc = _healthy()
        del doc["fanout"]
        assert any("fanout" in p for p in check_regression.check(doc))

    def test_async_must_match_threaded_at_largest_scale(self):
        doc = _healthy()
        doc["fanout"][-1]["async_scans_per_s"] = 500.0
        problems = check_regression.check(doc)
        assert any("trails threaded" in p for p in problems)

    def test_missing_sharding_series_fails(self):
        doc = _healthy()
        del doc["sharding"]
        assert any(
            "sharding series is missing" in p for p in check_regression.check(doc)
        )

    def test_sharding_without_a_multi_shard_entry_fails(self):
        doc = _healthy()
        doc["sharding"] = doc["sharding"][:1]  # only the N=1 baseline ran
        problems = check_regression.check(doc)
        assert any("no multi-shard entry" in p for p in problems)

    def test_shard_speedup_floor_gates_both_modes(self):
        doc = _healthy()
        doc["sharding"][-1]["async_speedup_vs_1"] = 1.1
        problems = check_regression.check(doc)
        assert any(
            "async_speedup_vs_1 1.1 at 8 shards is below the 1.5 floor" in p
            for p in problems
        )
        doc["sharding"][-1]["threaded_speedup_vs_1"] = 0.9
        problems = check_regression.check(doc)
        assert any("threaded_speedup_vs_1 0.9" in p for p in problems)

    def test_shard_speedup_floor_is_configurable(self):
        doc = _healthy()  # 3.5x / 3.2x at 8 shards
        assert check_regression.check(doc, min_shard_speedup=3.0) == []
        problems = check_regression.check(doc, min_shard_speedup=4.0)
        assert len([p for p in problems if "below the 4.0 floor" in p]) == 2

    def test_missing_restart_section_fails(self):
        doc = _healthy()
        del doc["restart"]
        assert any(
            "restart section is missing" in p for p in check_regression.check(doc)
        )

    def test_warm_restart_scans_must_be_zero(self):
        doc = _healthy()
        doc["restart"]["warm_restart_agent_scans"] = 4
        problems = check_regression.check(doc)
        assert any("warm_restart_agent_scans is 4" in p for p in problems)

    def test_restart_answers_must_match_cold_run(self):
        doc = _healthy()
        doc["restart"]["answers_match"] = False
        problems = check_regression.check(doc)
        assert any("diverged from the cold run" in p for p in problems)

    def test_warm_restart_must_beat_cold_start(self):
        doc = _healthy()
        doc["restart"]["warm_restart_ms"] = 25.0  # slower than cold 23.0
        problems = check_regression.check(doc)
        assert any("not below cold_ms" in p for p in problems)

    def test_restart_must_restore_something(self):
        doc = _healthy()
        doc["restart"]["cache_restores"] = 0
        problems = check_regression.check(doc)
        assert any("restored nothing" in p for p in problems)

    def test_missing_service_section_fails(self):
        doc = _healthy()
        del doc["service"]
        assert any(
            "service section is missing" in p for p in check_regression.check(doc)
        )

    def test_service_needs_eight_clients(self):
        doc = _healthy()
        doc["service"]["clients"] = 4
        problems = check_regression.check(doc)
        assert any("expected >= 8" in p for p in problems)

    def test_service_errors_fail_the_gate(self):
        doc = _healthy()
        doc["service"]["status_errors"] = 3
        problems = check_regression.check(doc)
        assert any("status_errors is 3" in p for p in problems)

    def test_service_warm_scans_must_be_zero(self):
        doc = _healthy()
        doc["service"]["warm_agent_scans"] = 2
        problems = check_regression.check(doc)
        assert any("service warm_agent_scans is 2" in p for p in problems)

    def test_service_throughput_floor(self):
        doc = _healthy()
        doc["service"]["req_per_s"] = 5.0
        problems = check_regression.check(doc)
        assert any("below the 20.0" in p for p in problems)
        assert check_regression.check(_healthy(), min_service_rps=100.0) == []
        problems = check_regression.check(_healthy(), min_service_rps=200.0)
        assert any("below the 200.0" in p for p in problems)

    def test_service_latency_consistency(self):
        doc = _healthy()
        doc["service"]["p99_ms"] = 10.0  # below the p50
        problems = check_regression.check(doc)
        assert any("latencies are inconsistent" in p for p in problems)

    def test_missing_planner_section_fails(self):
        doc = _healthy()
        del doc["planner"]
        problems = check_regression.check(doc)
        assert any("genealogy, cluster" in p for p in problems)

    def test_planner_must_cover_both_federations(self):
        doc = _healthy()
        doc["planner"] = doc["planner"][:1]  # only genealogy ran
        problems = check_regression.check(doc)
        assert any("missing cluster" in p for p in problems)

    def test_planned_round_trips_must_be_strictly_fewer(self):
        doc = _healthy()
        doc["planner"][1]["planned_round_trips"] = 8  # equal, not fewer
        problems = check_regression.check(doc)
        assert any(
            "8 planned vs 8 unplanned" in p and "cluster" in p
            for p in problems
        )
        doc["planner"][1]["planned_round_trips"] = 0  # no traffic at all
        problems = check_regression.check(doc)
        assert any("0 planned" in p for p in problems)

    def test_planner_answers_must_match(self):
        doc = _healthy()
        doc["planner"][0]["answers_match"] = False
        problems = check_regression.check(doc)
        assert any(
            "answers_match on genealogy" in p for p in problems
        )

    def test_missing_sources_section_fails(self):
        doc = _healthy()
        del doc["sources"]
        assert any(
            "sources section is missing" in p for p in check_regression.check(doc)
        )

    def test_sources_need_a_large_extent(self):
        doc = _healthy()
        doc["sources"]["total_instances"] = 9000
        problems = check_regression.check(doc)
        assert any("expected >= 100000" in p for p in problems)

    def test_sources_warm_scans_must_be_zero(self):
        doc = _healthy()
        doc["sources"]["warm_agent_scans"] = 3
        problems = check_regression.check(doc)
        assert any("sources warm_agent_scans is 3" in p for p in problems)

    def test_sources_cold_run_must_scan(self):
        doc = _healthy()
        doc["sources"]["cold_agent_scans"] = 0
        problems = check_regression.check(doc)
        assert any("cold run scanned no adapter" in p for p in problems)

    def test_sources_query_must_select_something(self):
        doc = _healthy()
        doc["sources"]["answers"] = 0
        problems = check_regression.check(doc)
        assert any("selected nothing" in p for p in problems)

    def test_sources_answers_must_match_memory(self):
        doc = _healthy()
        doc["sources"]["answers_match_memory"] = False
        problems = check_regression.check(doc)
        assert any(
            "diverged from the in-memory baseline" in p for p in problems
        )

    def test_missing_deltas_section_fails(self):
        doc = _healthy()
        del doc["deltas"]
        assert any(
            "deltas section is missing" in p for p in check_regression.check(doc)
        )

    def test_deltas_mixed_load_must_write(self):
        doc = _healthy()
        doc["deltas"]["writes"] = 0
        problems = check_regression.check(doc)
        assert any("mixed load never wrote" in p for p in problems)

    def test_patched_scans_must_be_strictly_fewer(self):
        doc = _healthy()
        doc["deltas"]["patched_agent_scans"] = 19  # equal, not fewer
        problems = check_regression.check(doc)
        assert any(
            "19 patched vs 19 bumped" in p for p in problems
        )
        doc["deltas"]["patched_agent_scans"] = -1  # section malformed
        problems = check_regression.check(doc)
        assert any("expected strictly fewer patched" in p for p in problems)

    def test_delta_side_must_patch_something(self):
        doc = _healthy()
        doc["deltas"]["granules_patched"] = 0
        problems = check_regression.check(doc)
        assert any("patched nothing" in p for p in problems)

    def test_baseline_side_must_not_patch(self):
        doc = _healthy()
        doc["deltas"]["baseline_granules_patched"] = 3
        problems = check_regression.check(doc)
        assert any(
            "baseline_granules_patched is nonzero" in p for p in problems
        )

    def test_deltas_answers_must_match(self):
        doc = _healthy()
        doc["deltas"]["answers_match"] = False
        problems = check_regression.check(doc)
        assert any(
            "diverged from the rescan baseline" in p for p in problems
        )

    def test_missing_mp_section_fails(self):
        doc = _healthy()
        del doc["mp"]
        assert any(
            "mp section is missing" in p for p in check_regression.check(doc)
        )

    def test_mp_answers_must_be_identical_on_any_machine(self):
        doc = _healthy()
        doc["mp"]["cpus"] = 1  # even where the speedup floor is waived...
        doc["mp"]["answers_identical"] = False
        problems = check_regression.check(doc)
        assert any("answers_identical is false" in p for p in problems)

    def test_mp_must_have_measured_both_modes(self):
        doc = _healthy()
        doc["mp"]["multiprocess_ms"] = 0.0
        problems = check_regression.check(doc)
        assert any("measured nothing" in p for p in problems)

    def test_mp_speedup_floor_binds_at_eight_cpus(self):
        doc = _healthy()
        doc["mp"]["mp_speedup"] = 1.4
        problems = check_regression.check(doc)  # cpus=16 in the fixture
        assert any(
            "mp_speedup 1.4 on 16 CPUs is below the 2.0 floor" in p
            for p in problems
        )
        assert check_regression.check(doc, min_mp_speedup=1.3) == []

    def test_mp_speedup_floor_relaxes_on_four_cpus(self):
        doc = _healthy()
        doc["mp"]["cpus"] = 4
        doc["mp"]["mp_speedup"] = 1.4  # clears the reduced 1.2 floor
        assert check_regression.check(doc) == []
        doc["mp"]["mp_speedup"] = 1.1
        problems = check_regression.check(doc)
        assert any("below the 1.2 floor" in p for p in problems)

    def test_mp_speedup_is_informational_below_four_cpus(self):
        # a 1-CPU box cannot show a process pool beating the GIL; the
        # committed baseline from such a machine must still pass
        doc = _healthy()
        doc["mp"]["cpus"] = 1
        doc["mp"]["mp_speedup"] = 0.7
        assert check_regression.check(doc) == []

    def test_mp_speedup_drift_fails_between_big_machines(self):
        fresh = _healthy()
        fresh["mp"]["mp_speedup"] = 1.6  # above the 1.3 floor passed below
        problems = check_regression.check(
            fresh, _healthy(), min_mp_speedup=1.3
        )
        assert any(
            "mp_speedup 1.6 fell below 50%" in p for p in problems
        )

    def test_mp_speedup_drift_is_skipped_across_small_machines(self):
        fresh = _healthy()
        fresh["mp"]["cpus"] = 2
        fresh["mp"]["mp_speedup"] = 0.8  # half the baseline's 3.5, but 2 CPUs
        assert check_regression.check(fresh, _healthy()) == []

    def test_sources_scan_throughput_drift_fails(self):
        fresh = _healthy()
        fresh["sources"]["scan_instances_per_s"] = 30000.0  # < 50% of 80000
        problems = check_regression.check(fresh, _healthy())
        assert any(
            "scan_instances_per_s 30000.0 fell below 50%" in p
            for p in problems
        )

    def test_planner_round_trip_drift_fails(self):
        fresh = _healthy()
        # still strictly fewer than unplanned, but more than the baseline
        fresh["planner"][1]["planned_round_trips"] = 6
        problems = check_regression.check(fresh, _healthy())
        assert any(
            "rose to 6 from the committed baseline (4)" in p
            for p in problems
        )

    def test_planner_reduction_ratio_drift_fails(self):
        fresh = _healthy()
        fresh["planner"][1]["round_trip_reduction"] = 0.9
        problems = check_regression.check(fresh, _healthy())
        assert any(
            "round_trip_reduction on cluster (0.9) fell below 50%" in p
            for p in problems
        )

    def test_service_throughput_drift_fails(self):
        fresh = _healthy()
        fresh["service"]["req_per_s"] = 60.0  # above floor, < 50% of 150
        problems = check_regression.check(fresh, _healthy())
        assert any(
            "service req_per_s 60.0 fell below 50%" in p for p in problems
        )

    def test_baseline_drift_fails_even_above_floors(self):
        fresh = _healthy()
        fresh["concurrent_speedup"] = 3.5  # above the 3.0 floor...
        baseline = _healthy()
        baseline["concurrent_speedup"] = 12.0  # ...but < 50% of the baseline
        problems = check_regression.check(fresh, baseline)
        assert any("fell below 50%" in p for p in problems)

    def test_fanout_throughput_drift_fails(self):
        fresh = _healthy()
        fresh["fanout"][-1]["async_scans_per_s"] = 2000.0  # still > threaded
        problems = check_regression.check(fresh, _healthy())
        assert any("256 agents" in p for p in problems)

    def test_shard_speedup_drift_fails(self):
        fresh = _healthy()
        # above the 1.5 floor, but less than 50% of the committed 3.5x
        fresh["sharding"][-1]["threaded_speedup_vs_1"] = 1.6
        problems = check_regression.check(fresh, _healthy())
        assert any(
            "threaded_speedup_vs_1 at 8 shards (1.6) fell below 50%" in p
            for p in problems
        )

    def test_tolerance_is_configurable(self):
        fresh = _healthy()
        fresh["concurrent_speedup"] = 3.1
        baseline = _healthy()  # 5.5; 3.1 is ~56% of it
        assert check_regression.check(fresh, baseline, tolerance=0.5) == []
        problems = check_regression.check(fresh, baseline, tolerance=0.9)
        assert any("fell below 90%" in p for p in problems)


class TestMain:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_zero_on_healthy_run(self, tmp_path, capsys):
        fresh = self._write(tmp_path, "fresh.json", _healthy())
        assert check_regression.main([fresh]) == 0
        assert "regression gate passed" in capsys.readouterr().out

    def test_exit_one_on_artificial_slowdown(self, tmp_path, capsys):
        doc = _healthy()
        doc["concurrent_speedup"] = 1.1  # the documented artificial slowdown
        fresh = self._write(tmp_path, "fresh.json", doc)
        baseline = self._write(tmp_path, "baseline.json", _healthy())
        assert check_regression.main([fresh, "--baseline", baseline]) == 1
        out = capsys.readouterr().out
        assert "regression gate FAILED" in out
        assert "below the 3.0 floor" in out

    def test_unreadable_fresh_file_fails(self, tmp_path):
        assert check_regression.main([str(tmp_path / "missing.json")]) == 1

    def test_real_committed_baseline_passes_the_gate(self):
        committed = (
            Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
        )
        doc = json.loads(committed.read_text())
        assert check_regression.check(doc, doc) == []
