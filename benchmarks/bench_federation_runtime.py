"""Experiment E-R1 — federation runtime latency under injected delay.

A 4-agent federation with 10ms of simulated per-call network latency
answers the same global query three ways: sequentially with the cache
off (the pre-runtime behaviour), through the concurrent fan-out, and
from a warm extent cache.  The fan-out should collapse the 8 serial
round-trips towards a single one, and the warm run should touch no
agent at all.

Runs standalone (``python benchmarks/bench_federation_runtime.py``)
or under pytest; both emit ``BENCH_runtime.json``.
"""

import json
import statistics
import time
from pathlib import Path

from repro.federation import FSM, FSMAgent
from repro.runtime import (
    FaultProfile,
    FederationRuntime,
    InProcessTransport,
    RuntimePolicy,
    SimulatedNetworkTransport,
)
from repro.workloads import federated_cluster

QUERY = "person0() -> ssn#"
LATENCY = 0.010  # 10ms per agent call
ROUNDS = 5
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"


def _cluster_fsm():
    built, text, databases = federated_cluster(schemas=4, per_class=8)
    fsm = FSM()
    for index, schema in enumerate(built):
        agent = FSMAgent(f"agent{index + 1}")
        agent.host_object_database(databases[schema.name])
        fsm.register_agent(agent)
    fsm.declare(text)
    fsm.integrate_all()
    return fsm


def _attach(fsm, policy):
    transport = SimulatedNetworkTransport(
        InProcessTransport(fsm._agents, fsm._schema_host),
        FaultProfile(latency=LATENCY),
    )
    return fsm.use_runtime(
        runtime=FederationRuntime(transport=transport, policy=policy)
    )


def _timed_query(fsm):
    started = time.perf_counter()
    rows = fsm.query(QUERY)
    return (time.perf_counter() - started) * 1000.0, rows


def _median_cold(policy):
    """Median cold-query latency (fresh cache each round)."""
    samples = []
    for _ in range(ROUNDS):
        fsm = _cluster_fsm()
        _attach(fsm, policy)
        elapsed, rows = _timed_query(fsm)
        samples.append(elapsed)
    return statistics.median(samples), len(rows)


def run_experiment():
    sequential_ms, answers = _median_cold(
        RuntimePolicy.sequential(cache_enabled=False)
    )
    concurrent_ms, _ = _median_cold(
        RuntimePolicy(max_workers=8, cache_enabled=False)
    )

    fsm = _cluster_fsm()
    _attach(fsm, RuntimePolicy(max_workers=8))
    fsm.query(QUERY)  # populate the cache
    warm_samples = []
    warm_scans = 0
    for _ in range(ROUNDS):
        elapsed, _ = _timed_query(fsm)
        warm_samples.append(elapsed)
        warm_scans += fsm.last_query_stats.counter("agent_scans")
    cached_ms = statistics.median(warm_samples)

    return {
        "experiment": "E-R1 federation runtime latency",
        "agents": 4,
        "injected_latency_ms": LATENCY * 1000.0,
        "answers": answers,
        "sequential_cold_ms": round(sequential_ms, 3),
        "concurrent_cold_ms": round(concurrent_ms, 3),
        "cached_warm_ms": round(cached_ms, 3),
        "concurrent_speedup": round(sequential_ms / concurrent_ms, 2),
        "warm_agent_scans": warm_scans,
    }


def _emit(results):
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    return results


def test_runtime_latency(benchmark, report):
    """Cold sequential vs cold concurrent vs warm cached latency."""
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    _emit(results)
    report(
        "E-R1  federated query latency, 4 agents x 10ms per call",
        ("mode", "median ms"),
        [
            ("sequential cold", results["sequential_cold_ms"]),
            ("concurrent cold", results["concurrent_cold_ms"]),
            ("cached warm", results["cached_warm_ms"]),
            ("speedup", f'{results["concurrent_speedup"]}x'),
        ],
    )
    assert results["concurrent_cold_ms"] < results["sequential_cold_ms"]
    assert results["warm_agent_scans"] == 0


if __name__ == "__main__":
    emitted = _emit(run_experiment())
    print(json.dumps(emitted, indent=2))
    print(f"wrote {OUTPUT}")
