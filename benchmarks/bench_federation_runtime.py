"""Experiments E-R1 – E-R8 — latency, fan-out, sharding, restart, planning, sources, deltas.

**E-R1** (4 agents, 10ms injected per-call latency): the same global
query answered sequentially with the cache off (the pre-runtime
behaviour), through the concurrent fan-out, and from a warm extent
cache.  The fan-out should collapse the 8 serial round-trips towards a
single one, and the warm run should touch no agent at all.

**E-R2** (4 / 32 / 256 simulated agents, 10ms latency each): one scan
per agent fanned out by the threaded executor (default 8-thread pool)
versus the asyncio executor (coroutines on one event loop).  At 4
agents the two are equivalent; at 256 the thread pool pays
``ceil(256/8)`` serial waves while the event loop multiplexes every
sleep concurrently — the fan-out a thread-per-scan design cannot match
without 256 workers.

**E-R3** (one 2048-instance extent, 2ms call latency + 50µs per
transferred item): the same scatter/merge scan under 1 / 2 / 8-way
shard plans, threaded and async.  An unsharded scan pays the whole
~102ms transfer serially; N concurrent shards each carry ~1/N of the
extent, so the wall-clock follows the largest slice — the data-volume
scaling the sharded-agent design exists for.

**E-R4** (same 4-agent cluster, 10ms latency, ``--cache-path``-style
persistence): one cold run populating a sqlite-backed extent cache,
then the federation is torn down and rebuilt — a process restart — and
the first query after each restart is answered from the restored cache.
The warm-restart run must touch zero agents and return byte-identical
answers; a cold start pays every scan's round-trip again.

**E-R5** (federation query service, 4-agent cluster tenant, 5ms
injected per-call latency): the multi-tenant HTTP service under load —
one cold request populating the tenant's extent cache, then 8
concurrent keep-alive clients issuing 25 warm queries each against the
bundled asyncio server.  Reports req/s and p50/p99 latency; the warm
phase must serve every request from cache (zero agent scans) with zero
HTTP errors — the service layering (routes → repository → shared-loop
runtime) priced end to end.

**E-R6** (the genealogy 2-agent and cluster 4-agent federations, 10ms
injected per-call latency): the same cold query answered with the query
planner off (one round-trip per scan granule — the pre-planner traffic)
and on (assertion-graph pruning + per-endpoint batch coalescing +
pushdown hints).  The planned run must pay strictly fewer agent
round-trips per query on **both** federations and return byte-identical
answers — the planner's whole contract.

**E-R7** (3 heterogeneous component schemas, ≥10⁵ instances, sqlite
backing): the large-extent scenario generator materializes a seeded
federation to sqlite files, the manifest loads it back through the
source-adapter layer, and the same filtered query is answered cold
(every scan hits sqlite and re-runs the §3 transformation + data
mappings) and warm (every granule served from the extent cache — zero
agent scans).  The answers must match an in-memory federation built
from the identical dataset, and the largest relation's raw scan
throughput (rows → instances per second, FK resolution included) is
reported as the adapter layer's unit price.

**E-R8** (3 heterogeneous component schemas, memory-backed, 5ms
injected per-call latency): a 90/10 read/write mixed load — every
tenth operation inserts a fresh person into one component store, the
rest re-issue the same global query — answered by two runtimes sharing
the component stores: one patching stale granules in place from the
delta feed (``deltas=True``), one on the version-mismatch full-rescan
baseline (``deltas=False``).  The patched side must pay strictly fewer
agent scans per query than the baseline while returning byte-identical
answers — the incremental-invalidation subsystem's whole contract.

**E-R9** (3 heterogeneous component schemas, memory-backed, **no**
injected latency, cache disabled, 8-way shard plan): the CPU-bound
data plane — every query round re-runs the real per-item §3 work
(row deserialization, type coercion, data mappings, shard-ownership
filtering) for every shard granule plus the Appendix-B rule-body join,
threaded pool vs ``mode="multiprocess"`` at 8 workers.  The threaded
executor serializes all of it on the GIL no matter how many threads it
owns; the process pool spreads it across cores, exchanging columnar
extents.  Answers must be byte-identical; the speedup is recorded
together with the machine's CPU count, because on few-core boxes (CI
containers, this very benchmark under ``nproc=1``) there is no
parallelism for the pool to win and only the parity claim is
hardware-independent — ``check_regression.py`` gates accordingly.

Runs standalone (``python benchmarks/bench_federation_runtime.py``)
or under pytest; both emit ``BENCH_runtime.json``.
"""

import http.client
import json
import os
import statistics
import tempfile
import threading
import time
from pathlib import Path

from repro.federation import FSM, FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema
from repro.runtime import (
    AsyncFederationExecutor,
    AsyncInProcessTransport,
    AsyncSimulatedNetworkTransport,
    FaultProfile,
    FederationExecutor,
    FederationRuntime,
    InProcessTransport,
    RuntimePolicy,
    ScanRequest,
    ShardPlan,
    SimulatedNetworkTransport,
)
from repro.sources import load_source_federation
from repro.workloads import (
    build_memory_databases,
    federated_cluster,
    genealogy,
    generate_source_federation,
    source_fsm,
    write_source_directory,
)

QUERY = "person0() -> ssn#"
GENEALOGY_QUERY = "uncle(niece_nephew='John') -> Ussn#"
PLANNER_ROUNDS = 3
LATENCY = 0.010  # 10ms per agent call
ROUNDS = 5
FLEET_SIZES = (4, 32, 256)
FLEET_ROUNDS = 3
SHARD_COUNTS = (1, 2, 8)
SHARD_EXTENT = 2048
SHARD_LATENCY = 0.002  # 2ms per shard call
SHARD_PER_ITEM = 0.00005  # 50us of transfer per result item
SHARD_ROUNDS = 3
SERVICE_CLIENTS = 8
SERVICE_REQUESTS = 25  # warm requests per client
SERVICE_LATENCY_MS = 5.0  # injected per-agent-call latency for the tenant
SOURCE_PEOPLE = 4000  # per schema; 3 x (4000 + 32000 + 20) = 108060 instances
SOURCE_RECORDS = 8
SOURCE_SEED = 41
SOURCE_QUERY = "person(level=3) -> ssn"
SOURCE_WARM_ROUNDS = 3
DELTA_QUERY = "person() -> ssn"
DELTA_OPS = 200  # total operations in the mixed load
DELTA_WRITE_EVERY = 10  # every 10th operation writes: a 90/10 mix
DELTA_LATENCY = 0.005  # 5ms per agent call
DELTA_PEOPLE = 50  # per schema
DELTA_SEED = 23
MP_QUERY = "person() -> ssn"
MP_WORKERS = 8  # pool size for both modes — the acceptance point
MP_SHARDS = 8
MP_PEOPLE = 500  # per schema; 3 x (500 + 1500 + 20) = 6060 instances
MP_RECORDS = 3
MP_SEED = 47
MP_ROUNDS = 3
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

#: fresh component rows for E-R8 — the level column differs per schema
#: (plain, triple-mapped, linearly-mapped) so patched instances must
#: come out of the data mappings identically to rescanned ones
DELTA_ROW_OF = {
    "university": lambda i: {
        "ssn": f"d8-u{i}", "name": f"du{i}",
        "level": i % 5 + 1, "dept": "d0",
    },
    "hospital": lambda i: {
        "ssn": f"d8-h{i}", "name": f"dh{i}",
        "lvl": f"L{i % 5 + 1}", "ward": "w0",
    },
    "market": lambda i: {
        "ssn": f"d8-m{i}", "name": f"dm{i}",
        "level_bp": (i % 5 + 1) * 100, "sector": "s0",
    },
}


def _cluster_fsm():
    built, text, databases = federated_cluster(schemas=4, per_class=8)
    fsm = FSM()
    for index, schema in enumerate(built):
        agent = FSMAgent(f"agent{index + 1}")
        agent.host_object_database(databases[schema.name])
        fsm.register_agent(agent)
    fsm.declare(text)
    fsm.integrate_all()
    return fsm


def _genealogy_fsm():
    _, _, text, databases = genealogy()
    fsm = FSM()
    for name, database in databases.items():
        agent = FSMAgent(f"agent-{name}")
        agent.host_object_database(database)
        fsm.register_agent(agent)
    fsm.declare(text)
    names = list(fsm.schema_names())
    fsm.integrate(names[0], names[1])
    return fsm


def _attach(fsm, policy, cache_path=None, plan=True):
    transport = SimulatedNetworkTransport(
        InProcessTransport(fsm._agents, fsm._schema_host),
        FaultProfile(latency=LATENCY),
    )
    return fsm.use_runtime(
        runtime=FederationRuntime(
            transport=transport, policy=policy, cache_path=cache_path,
            plan=plan,
        )
    )


def _timed_query(fsm):
    started = time.perf_counter()
    rows = fsm.query(QUERY)
    return (time.perf_counter() - started) * 1000.0, rows


def _median_cold(policy):
    """Median cold-query latency (fresh cache each round).

    Planner off: E-R1 prices the executor fan-out on the pre-planner
    one-round-trip-per-granule traffic; E-R6 prices the planner.
    """
    samples = []
    for _ in range(ROUNDS):
        fsm = _cluster_fsm()
        _attach(fsm, policy, plan=False)
        elapsed, rows = _timed_query(fsm)
        samples.append(elapsed)
    return statistics.median(samples), len(rows)


def _fleet(size):
    """*size* agents, each hosting one tiny single-class schema."""
    agents = {}
    requests = []
    for index in range(size):
        schema = Schema(f"F{index}")
        schema.add_class(ClassDef("item").attr("id"))
        database = ObjectDatabase(schema, agent=f"fleet-host{index}")
        database.insert("item", {"id": str(index)})
        agent = FSMAgent(f"fleet{index}")
        agent.host_object_database(database)
        agents[agent.name] = agent
        requests.append(ScanRequest(agent.name, schema.name, "item"))
    return agents, requests


def _timed_fanout(executor, requests, rounds=FLEET_ROUNDS):
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        outcome = executor.run(requests)
        samples.append((time.perf_counter() - started) * 1000.0)
        assert not outcome.failures
        assert len(outcome.results) == len(requests)
    return statistics.median(samples)


def run_fanout_scale():
    """E-R2: one scan per agent, threaded pool vs asyncio event loop."""
    profile = FaultProfile(latency=LATENCY)
    scales = []
    for size in FLEET_SIZES:
        agents, requests = _fleet(size)
        policy = RuntimePolicy(max_inflight=size)

        threaded = FederationExecutor(
            SimulatedNetworkTransport(InProcessTransport(agents), profile),
            policy,
        )
        threaded_ms = _timed_fanout(threaded, requests)

        async_executor = AsyncFederationExecutor(
            AsyncSimulatedNetworkTransport(
                AsyncInProcessTransport(agents), profile
            ),
            policy,
        )
        try:
            async_ms = _timed_fanout(async_executor, requests)
        finally:
            async_executor.close()

        scales.append(
            {
                "agents": size,
                "threaded_ms": round(threaded_ms, 3),
                "async_ms": round(async_ms, 3),
                "threaded_scans_per_s": round(size / (threaded_ms / 1000.0), 1),
                "async_scans_per_s": round(size / (async_ms / 1000.0), 1),
                "async_speedup": round(threaded_ms / async_ms, 2),
            }
        )
    return scales


def _big_extent_agents(size=SHARD_EXTENT):
    """One agent hosting one large single-class extent."""
    schema = Schema("BIG")
    schema.add_class(ClassDef("fact").attr("id"))
    database = ObjectDatabase(schema, agent="big-host")
    database.insert_many("fact", [{"id": str(index)} for index in range(size)])
    agent = FSMAgent("big")
    agent.host_object_database(database)
    return {"big": agent}


def _timed_sharded(executor, request, plan, rounds=SHARD_ROUNDS):
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        outcome = executor.run_sharded([request], plan)
        samples.append((time.perf_counter() - started) * 1000.0)
        assert not outcome.missing
        assert len(outcome.results[request]) == SHARD_EXTENT
    return statistics.median(samples)


def run_shard_scale():
    """E-R3: scatter/merge one large extent across 1 / 2 / 8 shards."""
    profile = FaultProfile(latency=SHARD_LATENCY, per_item=SHARD_PER_ITEM)
    request = ScanRequest("big", "BIG", "fact")
    series = []
    for count in SHARD_COUNTS:
        plan = ShardPlan(count)
        agents = _big_extent_agents()
        policy = RuntimePolicy(
            max_workers=max(8, count), max_inflight=max(64, count)
        )

        threaded = FederationExecutor(
            SimulatedNetworkTransport(InProcessTransport(agents), profile),
            policy,
        )
        threaded_ms = _timed_sharded(threaded, request, plan)

        async_executor = AsyncFederationExecutor(
            AsyncSimulatedNetworkTransport(
                AsyncInProcessTransport(agents), profile
            ),
            policy,
        )
        try:
            async_ms = _timed_sharded(async_executor, request, plan)
        finally:
            async_executor.close()

        series.append(
            {
                "shards": count,
                "extent": SHARD_EXTENT,
                "threaded_ms": round(threaded_ms, 3),
                "async_ms": round(async_ms, 3),
            }
        )
    base_threaded = series[0]["threaded_ms"]
    base_async = series[0]["async_ms"]
    for entry in series:
        entry["threaded_speedup_vs_1"] = round(
            base_threaded / entry["threaded_ms"], 2
        )
        entry["async_speedup_vs_1"] = round(base_async / entry["async_ms"], 2)
    return series


def _rows_key(rows):
    return sorted(tuple(sorted(row.items())) for row in rows)


def run_restart():
    """E-R4: cold start vs warm restart from a persisted extent cache."""
    with tempfile.TemporaryDirectory() as scratch:
        cache_path = str(Path(scratch) / "extents.db")

        cold_fsm = _cluster_fsm()
        cold_runtime = _attach(cold_fsm, RuntimePolicy(max_workers=8), cache_path)
        try:
            cold_ms, cold_rows = _timed_query(cold_fsm)
            cold_scans = cold_fsm.last_query_stats.counter("agent_scans")
        finally:
            cold_runtime.close()

        warm_samples = []
        warm_scans = 0
        restores = 0
        warm_rows = []
        for _ in range(ROUNDS):
            # deterministic rebuild of the whole federation = a restart
            fsm = _cluster_fsm()
            runtime = _attach(fsm, RuntimePolicy(max_workers=8), cache_path)
            try:
                elapsed, warm_rows = _timed_query(fsm)
                warm_samples.append(elapsed)
                warm_scans += fsm.last_query_stats.counter("agent_scans")
                restores += runtime.stats().counter("cache_restores")
            finally:
                runtime.close()

    return {
        "experiment": "E-R4 warm restart from persisted extent cache",
        "injected_latency_ms": LATENCY * 1000.0,
        "cold_ms": round(cold_ms, 3),
        "cold_agent_scans": cold_scans,
        "warm_restart_ms": round(statistics.median(warm_samples), 3),
        "warm_restart_agent_scans": warm_scans,
        "cache_restores": restores,
        "answers_match": _rows_key(cold_rows) == _rows_key(warm_rows),
    }


def run_experiment():
    sequential_ms, answers = _median_cold(
        RuntimePolicy.sequential(cache_enabled=False)
    )
    concurrent_ms, _ = _median_cold(
        RuntimePolicy(max_workers=8, cache_enabled=False)
    )

    fsm = _cluster_fsm()
    _attach(fsm, RuntimePolicy(max_workers=8))
    fsm.query(QUERY)  # populate the cache
    warm_samples = []
    warm_scans = 0
    for _ in range(ROUNDS):
        elapsed, _ = _timed_query(fsm)
        warm_samples.append(elapsed)
        warm_scans += fsm.last_query_stats.counter("agent_scans")
    cached_ms = statistics.median(warm_samples)

    return {
        "experiment": "E-R1 federation runtime latency",
        "agents": 4,
        "injected_latency_ms": LATENCY * 1000.0,
        "answers": answers,
        "sequential_cold_ms": round(sequential_ms, 3),
        "concurrent_cold_ms": round(concurrent_ms, 3),
        "cached_warm_ms": round(cached_ms, 3),
        "concurrent_speedup": round(sequential_ms / concurrent_ms, 2),
        "warm_agent_scans": warm_scans,
    }


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[int(fraction * (len(ordered) - 1))]


def run_service_load():
    """E-R5: the HTTP service under 8 concurrent keep-alive clients."""
    from repro.service import (
        FederationRepository,
        ServerThread,
        TenantConfig,
        create_app,
    )

    repository = FederationRepository(drain_timeout=10.0)
    repository.add_tenant(
        TenantConfig(
            name="bench",
            demo="cluster",
            mode="async",
            latency_ms=SERVICE_LATENCY_MS,
            max_inflight=SERVICE_CLIENTS,
        )
    )
    app = create_app(repository)
    body = json.dumps({"query": QUERY})

    def request(conn, method, path, payload=None):
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read())

    try:
        with ServerThread(app, port=0) as server:
            conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
            # cold: the one request that pays every agent round-trip
            started = time.perf_counter()
            status, answer = request(conn, "POST", "/tenants/bench/query", body)
            cold_ms = (time.perf_counter() - started) * 1000.0
            assert status == 200 and answer["count"] > 0
            _, before = request(conn, "GET", "/tenants/bench/stats")
            conn.close()

            latencies = []
            errors = []
            barrier = threading.Barrier(SERVICE_CLIENTS)

            def client():
                try:
                    barrier.wait(timeout=60)
                    peer = http.client.HTTPConnection(
                        server.host, server.port, timeout=60
                    )
                    for _ in range(SERVICE_REQUESTS):
                        begin = time.perf_counter()
                        status, answer = request(
                            peer, "POST", "/tenants/bench/query", body
                        )
                        latencies.append(
                            (time.perf_counter() - begin) * 1000.0
                        )
                        if status != 200 or answer["count"] == 0:
                            errors.append(status)
                    peer.close()
                except Exception as error:  # noqa: BLE001 - recorded below
                    errors.append(repr(error))

            workers = [
                threading.Thread(target=client) for _ in range(SERVICE_CLIENTS)
            ]
            wall_start = time.perf_counter()
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=300)
            wall_s = time.perf_counter() - wall_start

            conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
            _, after = request(conn, "GET", "/tenants/bench/stats")
            conn.close()
    finally:
        repository.close()

    def scans(doc):
        return doc["stats"]["counters"].get("agent_scans", 0)

    total = SERVICE_CLIENTS * SERVICE_REQUESTS
    return {
        "experiment": "E-R5 federation query service load",
        "clients": SERVICE_CLIENTS,
        "requests_per_client": SERVICE_REQUESTS,
        "injected_latency_ms": SERVICE_LATENCY_MS,
        "cold_ms": round(cold_ms, 3),
        "req_per_s": round(total / wall_s, 1),
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p99_ms": round(_percentile(latencies, 0.99), 3),
        "warm_agent_scans": scans(after) - scans(before),
        "status_errors": len(errors),
        "completed": len(latencies),
    }


def _planner_case(label, builder, query):
    """One E-R6 entry: the same cold query, planner off vs on."""

    def run(plan):
        samples = []
        trips = scans = pruned = 0
        rows = []
        for _ in range(PLANNER_ROUNDS):
            fsm = builder()
            runtime = _attach(fsm, RuntimePolicy(max_workers=8), plan=plan)
            try:
                started = time.perf_counter()
                rows = fsm.query(query)
                samples.append((time.perf_counter() - started) * 1000.0)
                delta = fsm.last_query_stats
                trips = delta.counter("round_trips")
                scans = delta.counter("agent_scans")
                query_plan = runtime.last_plan
                pruned = len(query_plan.pruned) if query_plan is not None else 0
            finally:
                runtime.close()
        return statistics.median(samples), trips, scans, pruned, rows

    unplanned_ms, unplanned_trips, unplanned_scans, _, unplanned_rows = run(False)
    planned_ms, planned_trips, planned_scans, pruned, planned_rows = run(True)
    return {
        "federation": label,
        "answers": len(planned_rows),
        "unplanned_round_trips": unplanned_trips,
        "planned_round_trips": planned_trips,
        "unplanned_agent_scans": unplanned_scans,
        "planned_agent_scans": planned_scans,
        "pruned_classes": pruned,
        "unplanned_ms": round(unplanned_ms, 3),
        "planned_ms": round(planned_ms, 3),
        "round_trip_reduction": round(unplanned_trips / planned_trips, 2)
        if planned_trips
        else 0.0,
        "answers_match": _rows_key(planned_rows) == _rows_key(unplanned_rows),
    }


def run_planner():
    """E-R6: round-trips per query and latency, planned vs unplanned."""
    return [
        _planner_case("genealogy", _genealogy_fsm, GENEALOGY_QUERY),
        _planner_case("cluster", _cluster_fsm, QUERY),
    ]


def run_sources():
    """E-R7: a ≥10⁵-instance sqlite-backed federation vs in-memory."""
    dataset = generate_source_federation(
        people_per_schema=SOURCE_PEOPLE,
        records_per_person=SOURCE_RECORDS,
        seed=SOURCE_SEED,
    )

    memory = source_fsm(build_memory_databases(dataset), dataset.assertions)
    memory.integrate_all()
    expected = _rows_key(memory.query(SOURCE_QUERY))

    with tempfile.TemporaryDirectory() as scratch:
        started = time.perf_counter()
        root = write_source_directory(dataset, scratch, kinds="sqlite")
        write_ms = (time.perf_counter() - started) * 1000.0

        started = time.perf_counter()
        _, databases = load_source_federation(root)
        fsm = source_fsm(databases, dataset.assertions)
        fsm.integrate_all()
        load_integrate_ms = (time.perf_counter() - started) * 1000.0

        runtime = fsm.use_runtime(RuntimePolicy(max_workers=8))
        try:
            started = time.perf_counter()
            rows = fsm.query(SOURCE_QUERY)
            cold_ms = (time.perf_counter() - started) * 1000.0
            cold_scans = fsm.last_query_stats.counter("agent_scans")

            warm_samples = []
            warm_scans = 0
            for _ in range(SOURCE_WARM_ROUNDS):
                started = time.perf_counter()
                rows = fsm.query(SOURCE_QUERY)
                warm_samples.append((time.perf_counter() - started) * 1000.0)
                warm_scans += fsm.last_query_stats.counter("agent_scans")
        finally:
            runtime.close()

        # the adapter layer's unit price: one full scan of the largest
        # relation straight off sqlite — row fetch, §3 transformation,
        # data mappings and FK → OID resolution included
        store = databases["university"]
        started = time.perf_counter()
        scanned = len(store.extent("enrollment"))
        scan_s = time.perf_counter() - started

    return {
        "experiment": "E-R7 heterogeneous source adapters at 1e5 instances",
        "backend": "sqlite",
        "seed": SOURCE_SEED,
        "schemas": len(dataset.schemas),
        "total_instances": dataset.total_instances,
        "write_ms": round(write_ms, 3),
        "load_integrate_ms": round(load_integrate_ms, 3),
        "cold_ms": round(cold_ms, 3),
        "warm_ms": round(statistics.median(warm_samples), 3),
        "cold_agent_scans": cold_scans,
        "warm_agent_scans": warm_scans,
        "answers": len(rows),
        "answers_match_memory": _rows_key(rows) == expected,
        "scan_extent": scanned,
        "scan_instances_per_s": round(scanned / scan_s, 1),
    }


def run_deltas():
    """E-R8: 90/10 mixed load — delta patching vs generation bumps."""
    dataset = generate_source_federation(
        people_per_schema=DELTA_PEOPLE, records_per_person=2, seed=DELTA_SEED
    )
    databases = build_memory_databases(dataset)
    schemas = sorted(databases)

    def attach(deltas):
        fsm = source_fsm(databases, dataset.assertions)
        fsm.integrate_all()
        transport = SimulatedNetworkTransport(
            InProcessTransport(fsm._agents, fsm._schema_host),
            FaultProfile(latency=DELTA_LATENCY),
        )
        runtime = FederationRuntime(
            transport=transport,
            policy=RuntimePolicy(max_workers=8),
            deltas=deltas,
        )
        fsm.use_runtime(runtime=runtime)
        return fsm, runtime

    fsm_on, runtime_on = attach(True)
    fsm_off, runtime_off = attach(False)
    try:
        # both sides pay the same cold scans; price only the mixed load
        fsm_on.query(DELTA_QUERY)
        fsm_off.query(DELTA_QUERY)
        base_on = runtime_on.stats().counter("agent_scans")
        base_off = runtime_off.stats().counter("agent_scans")

        reads = writes = 0
        on_ms = off_ms = 0.0
        for step in range(DELTA_OPS):
            if step % DELTA_WRITE_EVERY == DELTA_WRITE_EVERY - 1:
                schema = schemas[writes % len(schemas)]
                databases[schema].adapter.insert(
                    "person", DELTA_ROW_OF[schema](writes)
                )
                writes += 1
            else:
                reads += 1
                started = time.perf_counter()
                fsm_on.query(DELTA_QUERY)
                on_ms += (time.perf_counter() - started) * 1000.0
                started = time.perf_counter()
                fsm_off.query(DELTA_QUERY)
                off_ms += (time.perf_counter() - started) * 1000.0

        stats_on = runtime_on.stats()
        stats_off = runtime_off.stats()
        patched_scans = stats_on.counter("agent_scans") - base_on
        bump_scans = stats_off.counter("agent_scans") - base_off

        # final convergence check, outside the priced window
        rows_on = fsm_on.query(DELTA_QUERY)
        rows_off = fsm_off.query(DELTA_QUERY)
    finally:
        runtime_on.close()
        runtime_off.close()

    return {
        "experiment": "E-R8 incremental invalidation under mixed load",
        "operations": DELTA_OPS,
        "reads": reads,
        "writes": writes,
        "injected_latency_ms": DELTA_LATENCY * 1000.0,
        "patched_agent_scans": patched_scans,
        "bump_agent_scans": bump_scans,
        "patched_scans_per_query": round(patched_scans / reads, 4),
        "bump_scans_per_query": round(bump_scans / reads, 4),
        "granules_patched": stats_on.counter("granules_patched"),
        "deltas_applied": stats_on.counter("deltas_applied"),
        "fallback_invalidations": stats_on.counter("fallback_invalidations"),
        "baseline_granules_patched": stats_off.counter("granules_patched"),
        "patched_read_ms": round(on_ms / reads, 3),
        "bump_read_ms": round(off_ms / reads, 3),
        "answers": len(rows_on),
        "answers_match": _rows_key(rows_on) == _rows_key(rows_off),
    }


def _cpu_count():
    """CPUs actually usable by this process (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def run_multiprocess():
    """E-R9: the GIL plateau — threaded vs multiprocess, no fake latency.

    The per-item cost here is entirely real: memory source adapters
    re-run the §3 pipeline (deserialization, coercion, TripleMapping /
    LinearMapping translation, FK → OID resolution) on every scan, the
    8-way shard plan multiplies that work per query, the cache is off so
    every round pays it again, and the query's rule-body join runs on
    top.  Both modes get the same 8-worker budget; only the multiprocess
    pool can spend it on more than one core.
    """
    cpus = _cpu_count()
    dataset = generate_source_federation(
        people_per_schema=MP_PEOPLE,
        records_per_person=MP_RECORDS,
        seed=MP_SEED,
    )
    databases = build_memory_databases(dataset)

    timings = {}
    answers = {}
    for mode in ("threaded", "multiprocess"):
        fsm = source_fsm(databases, dataset.assertions)
        fsm.integrate_all()
        runtime = fsm.use_runtime(
            RuntimePolicy(max_workers=MP_WORKERS, cache_enabled=False),
            mode=mode,
            shard_plan=ShardPlan(MP_SHARDS),
        )
        try:
            # first query outside the priced window: multiprocess pays
            # its one-time worker spawn + bootstrap here
            answers[mode] = _rows_key(fsm.query(MP_QUERY))
            samples = []
            for _ in range(MP_ROUNDS):
                started = time.perf_counter()
                rows = fsm.query(MP_QUERY)
                samples.append((time.perf_counter() - started) * 1000.0)
            assert _rows_key(rows) == answers[mode]
            timings[mode] = statistics.median(samples)
        finally:
            runtime.close()

    threaded_ms = timings["threaded"]
    multiprocess_ms = timings["multiprocess"]
    return {
        "experiment": "E-R9 multiprocess data plane vs the GIL plateau",
        "cpus": cpus,
        "workers": MP_WORKERS,
        "shards": MP_SHARDS,
        "rounds": MP_ROUNDS,
        "total_instances": dataset.total_instances,
        "answers": len(answers["threaded"]),
        "threaded_ms": round(threaded_ms, 3),
        "multiprocess_ms": round(multiprocess_ms, 3),
        "threaded_instances_per_s": round(
            dataset.total_instances / (threaded_ms / 1000.0), 1
        ),
        "multiprocess_instances_per_s": round(
            dataset.total_instances / (multiprocess_ms / 1000.0), 1
        ),
        "mp_speedup": round(threaded_ms / multiprocess_ms, 2),
        "answers_identical": answers["threaded"] == answers["multiprocess"],
    }


def run_all():
    results = run_experiment()
    results["fanout"] = run_fanout_scale()
    results["sharding"] = run_shard_scale()
    results["restart"] = run_restart()
    results["service"] = run_service_load()
    results["planner"] = run_planner()
    results["sources"] = run_sources()
    results["deltas"] = run_deltas()
    results["mp"] = run_multiprocess()
    return results


def _emit(results):
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    return results


def test_runtime_latency(benchmark, report):
    """Cold sequential vs cold concurrent vs warm cached latency."""
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _emit(results)
    report(
        "E-R1  federated query latency, 4 agents x 10ms per call",
        ("mode", "median ms"),
        [
            ("sequential cold", results["sequential_cold_ms"]),
            ("concurrent cold", results["concurrent_cold_ms"]),
            ("cached warm", results["cached_warm_ms"]),
            ("speedup", f'{results["concurrent_speedup"]}x'),
        ],
    )
    report(
        "E-R2  fan-out scale, threaded (8 threads) vs async, 10ms/scan",
        ("agents", "threaded ms", "async ms", "async speedup"),
        [
            (s["agents"], s["threaded_ms"], s["async_ms"], f'{s["async_speedup"]}x')
            for s in results["fanout"]
        ],
    )
    report(
        "E-R3  shard scale, 2048-instance extent, 2ms/call + 50us/item",
        ("shards", "threaded ms", "async ms", "speedup vs 1 (thr/async)"),
        [
            (
                s["shards"],
                s["threaded_ms"],
                s["async_ms"],
                f'{s["threaded_speedup_vs_1"]}x / {s["async_speedup_vs_1"]}x',
            )
            for s in results["sharding"]
        ],
    )
    restart = results["restart"]
    report(
        "E-R4  warm restart from persisted cache, 4 agents x 10ms per call",
        ("metric", "value"),
        [
            ("cold start ms", restart["cold_ms"]),
            ("warm restart ms", restart["warm_restart_ms"]),
            ("cold agent scans", restart["cold_agent_scans"]),
            ("warm restart agent scans", restart["warm_restart_agent_scans"]),
            ("granules restored", restart["cache_restores"]),
            ("answers byte-identical", restart["answers_match"]),
        ],
    )
    report(
        "E-R6  query planner, round-trips per cold query, 10ms per call",
        (
            "federation",
            "unplanned trips",
            "planned trips",
            "pruned",
            "unplanned ms",
            "planned ms",
        ),
        [
            (
                entry["federation"],
                entry["unplanned_round_trips"],
                entry["planned_round_trips"],
                entry["pruned_classes"],
                entry["unplanned_ms"],
                entry["planned_ms"],
            )
            for entry in results["planner"]
        ],
    )
    sources = results["sources"]
    report(
        "E-R7  source adapters, sqlite federation at >= 1e5 instances",
        ("metric", "value"),
        [
            ("total instances", sources["total_instances"]),
            ("materialize ms", sources["write_ms"]),
            ("load + integrate ms", sources["load_integrate_ms"]),
            ("cold query ms", sources["cold_ms"]),
            ("warm query ms", sources["warm_ms"]),
            ("warm agent scans", sources["warm_agent_scans"]),
            ("scan instances/s", sources["scan_instances_per_s"]),
            ("answers match memory", sources["answers_match_memory"]),
        ],
    )
    deltas = results["deltas"]
    report(
        "E-R8  incremental invalidation, 90/10 mixed load, 3 schemas x 5ms",
        ("metric", "patched (deltas on)", "bump baseline"),
        [
            ("reads / writes", deltas["reads"], deltas["writes"]),
            (
                "agent scans (warm window)",
                deltas["patched_agent_scans"],
                deltas["bump_agent_scans"],
            ),
            (
                "scans per query",
                deltas["patched_scans_per_query"],
                deltas["bump_scans_per_query"],
            ),
            (
                "mean read ms",
                deltas["patched_read_ms"],
                deltas["bump_read_ms"],
            ),
            ("granules patched", deltas["granules_patched"], 0),
            ("answers byte-identical", deltas["answers_match"], ""),
        ],
    )
    mp = results["mp"]
    report(
        "E-R9  multiprocess data plane, 8-way shards, real per-item cost",
        ("metric", "value"),
        [
            ("cpus (affinity)", mp["cpus"]),
            ("workers / shards", f'{mp["workers"]} / {mp["shards"]}'),
            ("instances", mp["total_instances"]),
            ("threaded ms", mp["threaded_ms"]),
            ("multiprocess ms", mp["multiprocess_ms"]),
            ("threaded instances/s", mp["threaded_instances_per_s"]),
            ("multiprocess instances/s", mp["multiprocess_instances_per_s"]),
            ("mp speedup", f'{mp["mp_speedup"]}x'),
            ("answers byte-identical", mp["answers_identical"]),
        ],
    )
    service = results["service"]
    report(
        "E-R5  query service load, 8 keep-alive clients, 4 agents x 5ms",
        ("metric", "value"),
        [
            ("cold request ms", service["cold_ms"]),
            ("warm req/s", service["req_per_s"]),
            ("warm p50 ms", service["p50_ms"]),
            ("warm p99 ms", service["p99_ms"]),
            ("warm agent scans", service["warm_agent_scans"]),
            ("HTTP errors", service["status_errors"]),
        ],
    )
    assert results["concurrent_cold_ms"] < results["sequential_cold_ms"]
    assert results["warm_agent_scans"] == 0
    assert restart["warm_restart_agent_scans"] == 0
    assert restart["answers_match"]
    assert restart["cache_restores"] > 0
    assert restart["warm_restart_ms"] < restart["cold_ms"]
    at_256 = next(s for s in results["fanout"] if s["agents"] == 256)
    assert at_256["async_scans_per_s"] >= at_256["threaded_scans_per_s"]
    one_shard = next(s for s in results["sharding"] if s["shards"] == 1)
    eight_shards = next(s for s in results["sharding"] if s["shards"] == 8)
    assert eight_shards["threaded_ms"] < one_shard["threaded_ms"]
    assert eight_shards["async_ms"] < one_shard["async_ms"]
    assert service["status_errors"] == 0
    assert service["warm_agent_scans"] == 0
    assert service["completed"] == service["clients"] * service["requests_per_client"]
    assert service["p99_ms"] >= service["p50_ms"] > 0
    assert sources["total_instances"] >= 100_000
    assert sources["warm_agent_scans"] == 0
    assert sources["cold_agent_scans"] > 0
    assert sources["answers"] > 0
    assert sources["answers_match_memory"]
    assert deltas["answers_match"]
    assert deltas["patched_agent_scans"] < deltas["bump_agent_scans"]
    assert deltas["granules_patched"] > 0
    assert deltas["baseline_granules_patched"] == 0
    assert len(results["planner"]) == 2  # both example federations
    for entry in results["planner"]:
        assert entry["answers_match"], entry["federation"]
        assert (
            0
            < entry["planned_round_trips"]
            < entry["unplanned_round_trips"]
        ), entry["federation"]
    assert mp["answers_identical"]
    assert mp["threaded_ms"] > 0 and mp["multiprocess_ms"] > 0
    # the scaling claim only holds where there are cores to scale onto;
    # below 8 CPUs the speedup stays informational (see check_regression)
    if mp["cpus"] >= 8:
        assert mp["mp_speedup"] >= 2.0


if __name__ == "__main__":
    emitted = _emit(run_all())
    print(json.dumps(emitted, indent=2))
    print(f"wrote {OUTPUT}")
