"""Perf-regression gate over ``BENCH_runtime.json`` (CI's last word).

Reads a freshly generated benchmark file and fails (exit 1) when the
federation runtime's load-bearing numbers regress:

* ``concurrent_speedup`` below the absolute floor (default 3.0) — the
  fan-out no longer beats the sequential baseline;
* ``warm_agent_scans`` nonzero — the extent cache leaks scans to agents
  on warm queries (the paper's autonomy accounting breaks);
* in the E-R2 fan-out series, async throughput below threaded
  throughput at the largest scale — the event-loop path lost the very
  property it exists for;
* in the E-R3 sharding series, the widest plan's speedup over the
  1-shard baseline below the floor (default 1.5, both modes) — the
  scatter/merge stopped paying for itself on large extents;
* in the E-R4 restart section, any warm-restart agent scan, a warm
  restart slower than the cold start, or answers diverging from the
  cold run — the persistent extent cache stopped delivering scan-free
  byte-identical warm restarts;
* in the E-R5 service section, fewer than 8 concurrent clients, any
  HTTP error, any warm agent scan, throughput below the req/s floor
  (default 20.0) or a p99 below the p50 — the multi-tenant query
  service stopped serving concurrent warm load from cache;
* in the E-R6 planner section, a missing example federation, planned
  round-trips not strictly below unplanned, or answers diverging — the
  query planner stopped reducing traffic or (worse) changed an answer;
* in the E-R7 sources section, fewer than 100 000 instances, any warm
  agent scan, a scan-free cold run, zero answers, or answers diverging
  from the in-memory federation — the source-adapter layer stopped
  being a transparent ComponentStore over disk-backed components;
* in the E-R8 deltas section, no writes in the mixed load, patched
  agent scans not strictly below the generation-bump baseline's, any
  granule patched on the baseline side, zero granules patched on the
  delta side, or answers diverging — incremental invalidation stopped
  beating rescans or (worse) stopped matching them;
* in the E-R9 multiprocess section, answers not byte-identical to the
  threaded run (always fatal), or — CPU-gated, since process pools
  cannot beat the GIL without cores to scale onto — the multiprocess
  speedup below the floor (default 2.0) on 8+ CPU machines, below a
  reduced 1.2 floor on 4–7 CPU machines; under 4 CPUs the speedup is
  informational only;
* optionally, drift against a committed baseline file: any gated metric
  worse than ``tolerance`` × baseline fails even above absolute floors.

Usage::

    python benchmarks/check_regression.py BENCH_runtime.json \
        --baseline BENCH_baseline.json --min-speedup 3.0 \
        --min-shard-speedup 1.5 --min-service-rps 20.0 \
        --min-mp-speedup 2.0 --tolerance 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional


def _load(path: str) -> dict:
    return json.loads(Path(path).read_text())


def check(
    fresh: dict,
    baseline: Optional[dict] = None,
    min_speedup: float = 3.0,
    tolerance: float = 0.5,
    min_shard_speedup: float = 1.5,
    min_service_rps: float = 20.0,
    min_mp_speedup: float = 2.0,
) -> List[str]:
    """Return the list of regression messages (empty = gate passes)."""
    problems: List[str] = []

    speedup = fresh.get("concurrent_speedup", 0.0)
    if speedup < min_speedup:
        problems.append(
            f"concurrent_speedup {speedup} is below the {min_speedup} floor "
            "(fan-out no longer beats sequential)"
        )

    warm = fresh.get("warm_agent_scans", -1)
    if warm != 0:
        problems.append(
            f"warm_agent_scans is {warm}, expected 0 "
            "(extent cache leaks scans to agents on warm queries)"
        )

    fanout = fresh.get("fanout", [])
    if not fanout:
        problems.append("fanout series is missing (E-R2 did not run)")
    else:
        largest = max(fanout, key=lambda s: s.get("agents", 0))
        threaded = largest.get("threaded_scans_per_s", 0.0)
        asynchronous = largest.get("async_scans_per_s", 0.0)
        if asynchronous < threaded:
            problems.append(
                f"async throughput {asynchronous} scans/s trails threaded "
                f"{threaded} scans/s at {largest.get('agents')} agents"
            )

    sharding = fresh.get("sharding", [])
    if not sharding:
        problems.append("sharding series is missing (E-R3 did not run)")
    else:
        widest = max(sharding, key=lambda s: s.get("shards", 0))
        if widest.get("shards", 0) <= 1:
            problems.append(
                "sharding series has no multi-shard entry (E-R3 only ran N=1)"
            )
        else:
            for key in ("threaded_speedup_vs_1", "async_speedup_vs_1"):
                ratio = widest.get(key, 0.0)
                if ratio < min_shard_speedup:
                    problems.append(
                        f"{key} {ratio} at {widest.get('shards')} shards is "
                        f"below the {min_shard_speedup} floor "
                        "(scatter/merge no longer beats the unsharded scan)"
                    )

    restart = fresh.get("restart", {})
    if not restart:
        problems.append("restart section is missing (E-R4 did not run)")
    else:
        warm_restart = restart.get("warm_restart_agent_scans", -1)
        if warm_restart != 0:
            problems.append(
                f"warm_restart_agent_scans is {warm_restart}, expected 0 "
                "(persisted cache no longer restores scan-free)"
            )
        if not restart.get("answers_match", False):
            problems.append(
                "restart answers_match is false "
                "(warm restart diverged from the cold run's answers)"
            )
        warm_ms = restart.get("warm_restart_ms", float("inf"))
        cold_ms = restart.get("cold_ms", 0.0)
        if warm_ms >= cold_ms:
            problems.append(
                f"warm_restart_ms {warm_ms} is not below cold_ms {cold_ms} "
                "(restoring the cache no longer beats rescanning)"
            )
        if restart.get("cache_restores", 0) <= 0:
            problems.append(
                "cache_restores is 0 (the warm restart restored nothing, so "
                "its numbers measure an ordinary cold run)"
            )

    service = fresh.get("service", {})
    if not service:
        problems.append("service section is missing (E-R5 did not run)")
    else:
        clients = service.get("clients", 0)
        if clients < 8:
            problems.append(
                f"service ran {clients} concurrent clients, expected >= 8 "
                "(the load test no longer exercises concurrency)"
            )
        errors = service.get("status_errors", -1)
        if errors != 0:
            problems.append(
                f"service status_errors is {errors}, expected 0 "
                "(the query service failed requests under load)"
            )
        service_warm = service.get("warm_agent_scans", -1)
        if service_warm != 0:
            problems.append(
                f"service warm_agent_scans is {service_warm}, expected 0 "
                "(warm service load leaked scans to the tenant's agents)"
            )
        rps = service.get("req_per_s", 0.0)
        if rps < min_service_rps:
            problems.append(
                f"service req_per_s {rps} is below the {min_service_rps} "
                "floor (the HTTP path lost its throughput)"
            )
        p50 = service.get("p50_ms", 0.0)
        p99 = service.get("p99_ms", 0.0)
        if not 0 < p50 <= p99:
            problems.append(
                f"service latencies are inconsistent (p50={p50}, p99={p99})"
            )

    planner = fresh.get("planner", [])
    planner_by_federation = {
        entry.get("federation"): entry for entry in planner
    }
    expected_federations = ("genealogy", "cluster")
    missing = [
        name for name in expected_federations
        if name not in planner_by_federation
    ]
    if missing:
        problems.append(
            f"planner section is missing {', '.join(missing)} "
            "(E-R6 did not cover both example federations)"
        )
    for name in expected_federations:
        entry = planner_by_federation.get(name)
        if entry is None:
            continue
        planned = entry.get("planned_round_trips", 0)
        unplanned = entry.get("unplanned_round_trips", 0)
        if not 0 < planned < unplanned:
            problems.append(
                f"planner round-trips on {name} are {planned} planned vs "
                f"{unplanned} unplanned, expected strictly fewer planned "
                "(scan coalescing stopped reducing traffic)"
            )
        if not entry.get("answers_match", False):
            problems.append(
                f"planner answers_match on {name} is false "
                "(the planned query diverged from the unplanned answers)"
            )

    sources = fresh.get("sources", {})
    if not sources:
        problems.append("sources section is missing (E-R7 did not run)")
    else:
        total = sources.get("total_instances", 0)
        if total < 100_000:
            problems.append(
                f"sources total_instances is {total}, expected >= 100000 "
                "(E-R7 no longer exercises a large-extent federation)"
            )
        sources_warm = sources.get("warm_agent_scans", -1)
        if sources_warm != 0:
            problems.append(
                f"sources warm_agent_scans is {sources_warm}, expected 0 "
                "(warm queries leak scans to the disk-backed adapters)"
            )
        if sources.get("cold_agent_scans", 0) <= 0:
            problems.append(
                "sources cold_agent_scans is 0 (the cold run scanned no "
                "adapter, so E-R7 measured nothing)"
            )
        if sources.get("answers", 0) <= 0:
            problems.append(
                "sources answers is 0 (the benchmark query selected nothing)"
            )
        if not sources.get("answers_match_memory", False):
            problems.append(
                "sources answers_match_memory is false (the sqlite-backed "
                "federation diverged from the in-memory baseline)"
            )

    deltas = fresh.get("deltas", {})
    if not deltas:
        problems.append("deltas section is missing (E-R8 did not run)")
    else:
        if deltas.get("writes", 0) <= 0:
            problems.append(
                "deltas writes is 0 (the mixed load never wrote, so E-R8 "
                "measured an ordinary warm-cache run)"
            )
        patched = deltas.get("patched_agent_scans", -1)
        bump = deltas.get("bump_agent_scans", 0)
        if not 0 <= patched < bump:
            problems.append(
                f"deltas agent scans are {patched} patched vs {bump} bumped, "
                "expected strictly fewer patched "
                "(delta patching no longer beats rescan-on-write)"
            )
        if deltas.get("granules_patched", 0) <= 0:
            problems.append(
                "deltas granules_patched is 0 (the delta side patched "
                "nothing, so E-R8 compared two rescan baselines)"
            )
        if deltas.get("baseline_granules_patched", 0) != 0:
            problems.append(
                "deltas baseline_granules_patched is nonzero "
                "(the deltas=false baseline patched granules, so the "
                "comparison no longer isolates the feature)"
            )
        if not deltas.get("answers_match", False):
            problems.append(
                "deltas answers_match is false (the patched run diverged "
                "from the rescan baseline's answers)"
            )

    mp = fresh.get("mp", {})
    if not mp:
        problems.append("mp section is missing (E-R9 did not run)")
    else:
        if not mp.get("answers_identical", False):
            problems.append(
                "mp answers_identical is false (the multiprocess data "
                "plane changed an answer — the columnar codec or shard "
                "merge lost data)"
            )
        mp_threaded = mp.get("threaded_ms", 0.0)
        mp_process = mp.get("multiprocess_ms", 0.0)
        if not (mp_threaded > 0 and mp_process > 0):
            problems.append(
                f"mp timings are threaded={mp_threaded}ms "
                f"multiprocess={mp_process}ms (E-R9 measured nothing)"
            )
        # the scaling floor only binds where there are cores to scale
        # onto: a 1-CPU box *cannot* show a process pool beating the
        # GIL, and 4-vCPU CI runners only clear a reduced bar
        cpus = mp.get("cpus", 0)
        if cpus >= 8:
            floor = min_mp_speedup
        elif cpus >= 4:
            floor = min(1.2, min_mp_speedup)
        else:
            floor = None
        mp_speedup = mp.get("mp_speedup", 0.0)
        if floor is not None and mp_speedup < floor:
            problems.append(
                f"mp_speedup {mp_speedup} on {cpus} CPUs is below the "
                f"{floor} floor (the multiprocess data plane no longer "
                "escapes the GIL plateau)"
            )

    if baseline is not None:
        base_speedup = baseline.get("concurrent_speedup", 0.0)
        if base_speedup > 0 and speedup < base_speedup * tolerance:
            problems.append(
                f"concurrent_speedup {speedup} fell below {tolerance:.0%} of "
                f"the committed baseline ({base_speedup})"
            )
        base_fanout = {
            s["agents"]: s for s in baseline.get("fanout", []) if "agents" in s
        }
        for series in fanout:
            base = base_fanout.get(series.get("agents"))
            if base is None:
                continue
            fresh_tp = series.get("async_scans_per_s", 0.0)
            base_tp = base.get("async_scans_per_s", 0.0)
            if base_tp > 0 and fresh_tp < base_tp * tolerance:
                problems.append(
                    f"async throughput at {series['agents']} agents "
                    f"({fresh_tp} scans/s) fell below {tolerance:.0%} of the "
                    f"committed baseline ({base_tp} scans/s)"
                )
        base_sharding = {
            s["shards"]: s for s in baseline.get("sharding", []) if "shards" in s
        }
        for series in sharding:
            base = base_sharding.get(series.get("shards"))
            if base is None or series.get("shards", 0) <= 1:
                continue
            for key in ("threaded_speedup_vs_1", "async_speedup_vs_1"):
                fresh_ratio = series.get(key, 0.0)
                base_ratio = base.get(key, 0.0)
                if base_ratio > 0 and fresh_ratio < base_ratio * tolerance:
                    problems.append(
                        f"{key} at {series['shards']} shards ({fresh_ratio}) "
                        f"fell below {tolerance:.0%} of the committed "
                        f"baseline ({base_ratio})"
                    )
        base_service = baseline.get("service", {})
        base_rps = base_service.get("req_per_s", 0.0)
        fresh_rps = service.get("req_per_s", 0.0) if service else 0.0
        if base_rps > 0 and fresh_rps < base_rps * tolerance:
            problems.append(
                f"service req_per_s {fresh_rps} fell below {tolerance:.0%} of "
                f"the committed baseline ({base_rps})"
            )
        base_sources = baseline.get("sources", {})
        base_scan = base_sources.get("scan_instances_per_s", 0.0)
        fresh_scan = sources.get("scan_instances_per_s", 0.0) if sources else 0.0
        if base_scan > 0 and fresh_scan < base_scan * tolerance:
            problems.append(
                f"sources scan_instances_per_s {fresh_scan} fell below "
                f"{tolerance:.0%} of the committed baseline ({base_scan}) "
                "— the adapter scan path lost its throughput"
            )
        base_planner = {
            entry.get("federation"): entry
            for entry in baseline.get("planner", [])
        }
        for entry in planner:
            base = base_planner.get(entry.get("federation"))
            if base is None:
                continue
            # round-trip counts are deterministic — any increase is drift
            fresh_trips = entry.get("planned_round_trips", 0)
            base_trips = base.get("planned_round_trips", 0)
            if base_trips > 0 and fresh_trips > base_trips:
                problems.append(
                    f"planner round-trips on {entry.get('federation')} rose "
                    f"to {fresh_trips} from the committed baseline "
                    f"({base_trips}) — coalescing or pruning regressed"
                )
            fresh_ratio = entry.get("round_trip_reduction", 0.0)
            base_ratio = base.get("round_trip_reduction", 0.0)
            if base_ratio > 0 and fresh_ratio < base_ratio * tolerance:
                problems.append(
                    f"planner round_trip_reduction on "
                    f"{entry.get('federation')} ({fresh_ratio}) fell below "
                    f"{tolerance:.0%} of the committed baseline ({base_ratio})"
                )
        base_mp = baseline.get("mp", {})
        # speedups are only comparable machine-to-machine when both runs
        # had cores to scale onto
        if mp and base_mp.get("cpus", 0) >= 8 and mp.get("cpus", 0) >= 8:
            base_mp_speedup = base_mp.get("mp_speedup", 0.0)
            fresh_mp_speedup = mp.get("mp_speedup", 0.0)
            if (
                base_mp_speedup > 0
                and fresh_mp_speedup < base_mp_speedup * tolerance
            ):
                problems.append(
                    f"mp_speedup {fresh_mp_speedup} fell below "
                    f"{tolerance:.0%} of the committed baseline "
                    f"({base_mp_speedup})"
                )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail CI when BENCH_runtime.json regresses"
    )
    parser.add_argument(
        "fresh",
        nargs="?",
        default="BENCH_runtime.json",
        help="freshly generated benchmark file (default: BENCH_runtime.json)",
    )
    parser.add_argument(
        "--baseline",
        help="committed baseline benchmark file to diff against (optional)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="absolute concurrent_speedup floor (default: 3.0)",
    )
    parser.add_argument(
        "--min-shard-speedup",
        type=float,
        default=1.5,
        help="absolute shard speedup-vs-1 floor at the widest plan "
        "(default: 1.5)",
    )
    parser.add_argument(
        "--min-service-rps",
        type=float,
        default=20.0,
        help="absolute warm service throughput floor in req/s (default: 20.0)",
    )
    parser.add_argument(
        "--min-mp-speedup",
        type=float,
        default=2.0,
        help="absolute multiprocess-over-threaded speedup floor, enforced "
        "on 8+ CPU machines (reduced to 1.2 on 4-7 CPUs, informational "
        "below 4; default: 2.0)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="fraction of the baseline a metric may drop to (default: 0.5)",
    )
    arguments = parser.parse_args(argv)

    try:
        fresh = _load(arguments.fresh)
    except (OSError, json.JSONDecodeError) as error:
        print(f"regression gate: cannot read {arguments.fresh}: {error}")
        return 1
    baseline = None
    if arguments.baseline:
        try:
            baseline = _load(arguments.baseline)
        except (OSError, json.JSONDecodeError) as error:
            print(f"regression gate: cannot read baseline: {error}")
            return 1

    problems = check(
        fresh,
        baseline,
        arguments.min_speedup,
        arguments.tolerance,
        arguments.min_shard_speedup,
        arguments.min_service_rps,
        arguments.min_mp_speedup,
    )
    if problems:
        print("regression gate FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    fanout = fresh.get("fanout", [])
    largest = max(fanout, key=lambda s: s.get("agents", 0)) if fanout else {}
    sharding = fresh.get("sharding", [])
    widest = max(sharding, key=lambda s: s.get("shards", 0)) if sharding else {}
    restart = fresh.get("restart", {})
    service = fresh.get("service", {})
    planner = fresh.get("planner", [])
    sources = fresh.get("sources", {})
    deltas = fresh.get("deltas", {})
    mp = fresh.get("mp", {})
    planner_summary = " ".join(
        f"planner[{entry.get('federation', '?')}]="
        f"{entry.get('planned_round_trips', '?')}/"
        f"{entry.get('unplanned_round_trips', '?')} trips"
        for entry in planner
    )
    print(
        "regression gate passed: "
        f"concurrent_speedup={fresh.get('concurrent_speedup')} "
        f"warm_agent_scans={fresh.get('warm_agent_scans')} "
        f"async@{largest.get('agents', '?')}="
        f"{largest.get('async_scans_per_s', '?')} scans/s "
        f"shard@{widest.get('shards', '?')}="
        f"{widest.get('threaded_speedup_vs_1', '?')}x/"
        f"{widest.get('async_speedup_vs_1', '?')}x "
        f"restart={restart.get('warm_restart_ms', '?')}ms/"
        f"{restart.get('warm_restart_agent_scans', '?')} scans "
        f"service={service.get('req_per_s', '?')} req/s "
        f"p99={service.get('p99_ms', '?')}ms "
        f"sources={sources.get('total_instances', '?')} instances/"
        f"{sources.get('scan_instances_per_s', '?')} scan-rows/s "
        f"deltas={deltas.get('patched_agent_scans', '?')}/"
        f"{deltas.get('bump_agent_scans', '?')} scans "
        f"mp={mp.get('mp_speedup', '?')}x@{mp.get('cpus', '?')}cpu "
        + planner_summary
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
