"""Perf-regression gate over ``BENCH_runtime.json`` (CI's last word).

Reads a freshly generated benchmark file and fails (exit 1) when the
federation runtime's load-bearing numbers regress:

* ``concurrent_speedup`` below the absolute floor (default 3.0) — the
  fan-out no longer beats the sequential baseline;
* ``warm_agent_scans`` nonzero — the extent cache leaks scans to agents
  on warm queries (the paper's autonomy accounting breaks);
* in the E-R2 fan-out series, async throughput below threaded
  throughput at the largest scale — the event-loop path lost the very
  property it exists for;
* optionally, drift against a committed baseline file: any gated metric
  worse than ``tolerance`` × baseline fails even above absolute floors.

Usage::

    python benchmarks/check_regression.py BENCH_runtime.json \
        --baseline BENCH_baseline.json --min-speedup 3.0 --tolerance 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional


def _load(path: str) -> dict:
    return json.loads(Path(path).read_text())


def check(
    fresh: dict,
    baseline: Optional[dict] = None,
    min_speedup: float = 3.0,
    tolerance: float = 0.5,
) -> List[str]:
    """Return the list of regression messages (empty = gate passes)."""
    problems: List[str] = []

    speedup = fresh.get("concurrent_speedup", 0.0)
    if speedup < min_speedup:
        problems.append(
            f"concurrent_speedup {speedup} is below the {min_speedup} floor "
            "(fan-out no longer beats sequential)"
        )

    warm = fresh.get("warm_agent_scans", -1)
    if warm != 0:
        problems.append(
            f"warm_agent_scans is {warm}, expected 0 "
            "(extent cache leaks scans to agents on warm queries)"
        )

    fanout = fresh.get("fanout", [])
    if not fanout:
        problems.append("fanout series is missing (E-R2 did not run)")
    else:
        largest = max(fanout, key=lambda s: s.get("agents", 0))
        threaded = largest.get("threaded_scans_per_s", 0.0)
        asynchronous = largest.get("async_scans_per_s", 0.0)
        if asynchronous < threaded:
            problems.append(
                f"async throughput {asynchronous} scans/s trails threaded "
                f"{threaded} scans/s at {largest.get('agents')} agents"
            )

    if baseline is not None:
        base_speedup = baseline.get("concurrent_speedup", 0.0)
        if base_speedup > 0 and speedup < base_speedup * tolerance:
            problems.append(
                f"concurrent_speedup {speedup} fell below {tolerance:.0%} of "
                f"the committed baseline ({base_speedup})"
            )
        base_fanout = {
            s["agents"]: s for s in baseline.get("fanout", []) if "agents" in s
        }
        for series in fanout:
            base = base_fanout.get(series.get("agents"))
            if base is None:
                continue
            fresh_tp = series.get("async_scans_per_s", 0.0)
            base_tp = base.get("async_scans_per_s", 0.0)
            if base_tp > 0 and fresh_tp < base_tp * tolerance:
                problems.append(
                    f"async throughput at {series['agents']} agents "
                    f"({fresh_tp} scans/s) fell below {tolerance:.0%} of the "
                    f"committed baseline ({base_tp} scans/s)"
                )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail CI when BENCH_runtime.json regresses"
    )
    parser.add_argument(
        "fresh",
        nargs="?",
        default="BENCH_runtime.json",
        help="freshly generated benchmark file (default: BENCH_runtime.json)",
    )
    parser.add_argument(
        "--baseline",
        help="committed baseline benchmark file to diff against (optional)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="absolute concurrent_speedup floor (default: 3.0)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="fraction of the baseline a metric may drop to (default: 0.5)",
    )
    arguments = parser.parse_args(argv)

    try:
        fresh = _load(arguments.fresh)
    except (OSError, json.JSONDecodeError) as error:
        print(f"regression gate: cannot read {arguments.fresh}: {error}")
        return 1
    baseline = None
    if arguments.baseline:
        try:
            baseline = _load(arguments.baseline)
        except (OSError, json.JSONDecodeError) as error:
            print(f"regression gate: cannot read baseline: {error}")
            return 1

    problems = check(
        fresh, baseline, arguments.min_speedup, arguments.tolerance
    )
    if problems:
        print("regression gate FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    fanout = fresh.get("fanout", [])
    largest = max(fanout, key=lambda s: s.get("agents", 0)) if fanout else {}
    print(
        "regression gate passed: "
        f"concurrent_speedup={fresh.get('concurrent_speedup')} "
        f"warm_agent_scans={fresh.get('warm_agent_scans')} "
        f"async@{largest.get('agents', '?')}="
        f"{largest.get('async_scans_per_s', '?')} scans/s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
