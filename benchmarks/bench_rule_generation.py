"""Experiment E-R — derivation-assertion rule generation (Principle 5).

Throughput of the full pipeline — decomposition, assertion-graph
construction, reverse substitutions, rule assembly, safety check — on
the paper's own derivation scenarios plus a widening schematic
discrepancy (Example 5 with n car-name attributes, which decomposes
into n assertions and yields n rules).
"""

import pytest

from repro.assertions import parse
from repro.integration import IntegratedSchema, apply_derivation
from repro.workloads import bibliography, car_prices, genealogy

CAR_COUNTS = (2, 8, 32)


def _generate(s1, s2, text):
    result = IntegratedSchema("IS")
    rules = []
    for assertion in parse(text):
        if assertion.left_schema == s1.name:
            rules += apply_derivation(result, assertion, s1, s2)
        else:
            rules += apply_derivation(result, assertion, s2, s1)
    return rules


def test_rule_count_series(benchmark, report):
    def sweep():
        rows = []
        s1, s2, text, _ = genealogy(populated=False)
        rows.append(("uncle (Ex. 9)", len(_generate(s1, s2, text))))
        s1, s2, text = bibliography()
        rows.append(("Book/Author (Ex. 11)", len(_generate(s1, s2, text))))
        for count in CAR_COUNTS:
            s1, s2, text = car_prices(tuple(f"car{i}" for i in range(count)))
            rows.append((f"cars n={count} (Ex. 10)", len(_generate(s1, s2, text))))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("E-R  generated derivation rules per scenario", ("scenario", "rules"), rows)
    by_name = dict(rows)
    assert by_name["uncle (Ex. 9)"] == 1
    assert by_name["Book/Author (Ex. 11)"] == 2
    for count in CAR_COUNTS:
        assert by_name[f"cars n={count} (Ex. 10)"] == count


def test_uncle_rule_wall_clock(benchmark):
    s1, s2, text, _ = genealogy(populated=False)
    rules = benchmark(_generate, s1, s2, text)
    assert len(rules) == 1


@pytest.mark.parametrize("count", CAR_COUNTS)
def test_car_rules_wall_clock(benchmark, count):
    s1, s2, text = car_prices(tuple(f"car{i}" for i in range(count)))
    rules = benchmark(_generate, s1, s2, text)
    assert len(rules) == count
