"""Experiment E-Q — federated evaluation of virtual rules (Appendix B).

Scales the genealogy federation and times the ``?- uncle(John, y)``
query on both evaluation paths: the production bottom-up engine and the
faithful Appendix B top-down evaluator.  Both must return the same
answers; the printed series reports answers per family count and the
agents' local access counts (the autonomy cost).
"""

import pytest

from repro.federation import FSM, FSMAgent, FederatedQuery
from repro.model import ClassDef, ObjectDatabase, Schema

FAMILIES = (10, 50, 200)


def build_fsm(families: int) -> FSM:
    s1 = Schema("S1")
    s1.add_class(
        ClassDef("parent").attr("Pssn#").attr("children", multivalued=True)
    )
    s1.add_class(
        ClassDef("brother").attr("Bssn#").attr("brothers", multivalued=True)
    )
    s2 = Schema("S2")
    s2.add_class(
        ClassDef("uncle").attr("Ussn#").attr("niece_nephew", multivalued=True)
    )
    db1 = ObjectDatabase(s1, agent="a1")
    db2 = ObjectDatabase(s2, agent="a2")
    for index in range(families):
        db1.insert(
            "parent",
            {"Pssn#": f"P{index}", "children": [f"kid{index}a", f"kid{index}b"]},
        )
        db1.insert("brother", {"Bssn#": f"B{index}", "brothers": [f"P{index}"]})
    db2.insert("uncle", {"Ussn#": "U0", "niece_nephew": ["someone"]})
    fsm = FSM()
    agent1, agent2 = FSMAgent("a1"), FSMAgent("a2")
    agent1.host_object_database(db1)
    agent2.host_object_database(db2)
    fsm.register_agent(agent1)
    fsm.register_agent(agent2)
    fsm.declare(
        """
        assertion S1(parent, brother) -> S2.uncle
          value S1.parent.Pssn# in S1.brother.brothers
          attr S1.brother.Bssn# == S2.uncle.Ussn#
          attr S1.parent.children >= S2.uncle.niece_nephew
        end
        """
    )
    fsm.integrate("S1", "S2")
    return fsm


def test_answer_series(benchmark, report):
    def sweep():
        rows = []
        for families in FAMILIES:
            fsm = build_fsm(families)
            bottom_up = fsm.query("uncle() -> Ussn#")
            program = fsm.appendix_b()
            top_down = FederatedQuery.parse("uncle() -> Ussn#").run(program)
            accesses = sum(
                fsm.agent(name).access_count for name in ("a1", "a2")
            )
            rows.append(
                (families, len(bottom_up), len(top_down), accesses)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E-Q  uncle answers per family count (both evaluators agree)",
        ("families", "bottom-up", "top-down(AppB)", "local fetches"),
        rows,
    )
    for families, bottom_up, top_down, _ in rows:
        # two derived virtual uncles per family (one per niece/nephew)
        # plus the one local uncle; both paths agree.
        assert bottom_up == top_down
        assert bottom_up == 2 * families + 1


@pytest.mark.parametrize("families", FAMILIES)
def test_bottom_up_wall_clock(benchmark, families):
    fsm = build_fsm(families)
    query = FederatedQuery.parse("uncle() -> Ussn#")

    def run():
        return query.run(fsm.engine())

    rows = benchmark(run)
    assert len(rows) == 2 * families + 1


@pytest.mark.parametrize("families", FAMILIES[:2])
def test_appendix_b_wall_clock(benchmark, families):
    fsm = build_fsm(families)
    query = FederatedQuery.parse("uncle() -> Ussn#")

    def run():
        return query.run(fsm.appendix_b())

    rows = benchmark(run)
    assert len(rows) == 2 * families + 1
