"""Experiment E-X1 — cardinality-constraint resolution (Fig 13).

Times lcs resolution over both lattices and prints the full lcs matrix
of the simple lattice (regenerating Fig 13(a)'s behaviour), plus an
ablation: the lattice-lcs strategy vs the trivial "always loosen to
[m:n]" alternative — counting how often lcs preserves a *tighter*
constraint than the trivial strategy would (the paper's "least
loosened" claim).
"""

import itertools

import pytest

from repro.integration import EXTENDED_LATTICE, SIMPLE_LATTICE
from repro.model import Cardinality as C

SIMPLE = (C.ONE_TO_ONE, C.ONE_TO_N, C.M_TO_ONE, C.M_TO_N)


def test_lcs_matrix(benchmark, report):
    def compute():
        return {
            (a, b): SIMPLE_LATTICE.lcs(a, b)
            for a, b in itertools.product(SIMPLE, repeat=2)
        }

    matrix = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        (str(a),) + tuple(str(matrix[(a, b)]) for b in SIMPLE) for a in SIMPLE
    ]
    report(
        "E-X1  lcs matrix, simple lattice (Fig 13a)",
        ("lcs", *[str(b) for b in SIMPLE]),
        rows,
    )
    assert matrix[(C.ONE_TO_N, C.M_TO_ONE)] is C.M_TO_N


def test_least_loosened_ablation(benchmark, report):
    """How often lattice-lcs beats 'always [m:n]' on the extended lattice."""

    def compute():
        pairs = list(itertools.product(list(C), repeat=2))
        tighter = sum(
            1 for a, b in pairs if EXTENDED_LATTICE.lcs(a, b) is not C.M_TO_N
        )
        return len(pairs), tighter

    total, tighter = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "E-X1  ablation: lattice lcs vs always-[m:n]",
        ("constraint pairs", "lcs tighter than [m:n]", "share"),
        [(total, tighter, f"{tighter / total:.0%}")],
    )
    assert tighter > total / 2  # the lattice usually preserves information


@pytest.mark.parametrize("lattice_name", ["simple", "extended"])
def test_lcs_wall_clock(benchmark, lattice_name):
    lattice = SIMPLE_LATTICE if lattice_name == "simple" else EXTENDED_LATTICE
    members = lattice.members()

    def resolve_all():
        return [lattice.lcs(a, b) for a in members for b in members]

    results = benchmark(resolve_all)
    assert len(results) == len(members) ** 2
