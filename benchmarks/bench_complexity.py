"""Experiment E-C1 — the §6.3 complexity analysis.

Regenerates the paper's central quantitative claim: the naive algorithm
checks O(n²) class pairs while ``schema_integration`` averages O(n) on
tree-shaped schemas where every S1 concept has an equivalent S2
counterpart (the §6.3 setting).  The printed series shows pair checks
per n for both algorithms and the fitted growth exponents; wall-clock
timings come from pytest-benchmark.
"""

import math

import pytest

from repro.integration import naive_schema_integration, schema_integration
from repro.workloads import mirrored_pair

SIZES = (32, 64, 128, 256)


def _checks(algorithm, size):
    left, right, assertions = mirrored_pair(size, equivalence_fraction=1.0)
    _, stats = algorithm(left, right, assertions)
    return stats.pairs_checked


def _growth_exponent(sizes, checks):
    """Least-squares slope of log(checks) vs log(n)."""
    xs = [math.log(n) for n in sizes]
    ys = [math.log(max(c, 1)) for c in checks]
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den


def test_pair_check_series(benchmark, report):
    """The §6.3 table: checks per n, with growth exponents."""

    def sweep():
        return (
            [_checks(schema_integration, n) for n in SIZES],
            [_checks(naive_schema_integration, n) for n in SIZES],
        )

    optimized, naive = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (n, o, nv, f"{nv / o:.1f}x")
        for n, o, nv in zip(SIZES, optimized, naive)
    ]
    exponent_opt = _growth_exponent(SIZES, optimized)
    exponent_naive = _growth_exponent(SIZES, naive)
    rows.append(("exponent", f"{exponent_opt:.2f}", f"{exponent_naive:.2f}", ""))
    report(
        "E-C1  pair checks: optimized (§6) vs naive — expect O(n) vs O(n²)",
        ("n", "optimized", "naive", "speedup"),
        rows,
    )
    # The paper's claim, as assertions:
    assert exponent_opt < 1.2, "optimized algorithm should be ~linear"
    assert exponent_naive > 1.8, "naive algorithm should be ~quadratic"
    for o, nv in zip(optimized, naive):
        assert o < nv


@pytest.mark.parametrize("size", SIZES)
def test_optimized_wall_clock(benchmark, size):
    left, right, assertions = mirrored_pair(size, equivalence_fraction=1.0)
    result, stats = benchmark(schema_integration, left, right, assertions)
    benchmark.extra_info["pairs_checked"] = stats.pairs_checked
    assert stats.pairs_checked == size


@pytest.mark.parametrize("size", SIZES[:3])
def test_naive_wall_clock(benchmark, size):
    left, right, assertions = mirrored_pair(size, equivalence_fraction=1.0)
    result, stats = benchmark(naive_schema_integration, left, right, assertions)
    benchmark.extra_info["pairs_checked"] = stats.pairs_checked
    assert stats.pairs_checked == size * size
