"""Experiment E-C2 — the Ω_h recurrence's two extreme cases (§6.3).

The recurrence averages two extremes: (a) the roots of S1 and S2 match —
with every concept equivalently matched the optimized algorithm checks
exactly n pairs; (b) S1's concepts match a subtree *deep inside* S2.
This bench hangs a mirror of S1 at increasing depths below a filler
chain in S2 and reports pair checks per depth, against the naive count.

Measured shape (recorded in EXPERIMENTS.md): aligned roots reproduce the
pure O(n); an offset match keeps the optimized count **below** naive but
no longer linear, because the no-assertion default (the paper's own line
33) seeds misaligned one-sided pairs during the descent — the §6.3
average-case O(n) result leans on the "each concept has exactly one
counterpart *and positions align*" assumption.
"""

import pytest

from repro.integration import naive_schema_integration, schema_integration
from repro.workloads import match_at_depth

SIZE = 63
DEPTHS = (0, 1, 2, 4, 8)


def _checks(depth: int):
    left, right, assertions = match_at_depth(SIZE, depth=depth)
    _, optimized = schema_integration(left, right, assertions)
    _, naive = naive_schema_integration(left, right, assertions)
    return optimized.pairs_checked, naive.pairs_checked


def test_match_depth_series(benchmark, report):
    rows = benchmark.pedantic(
        lambda: [(d, *_checks(d)) for d in DEPTHS], rounds=1, iterations=1
    )
    report(
        f"E-C2  pair checks vs match depth (n={SIZE}, mirror at depth d)",
        ("depth", "optimized", "naive"),
        rows,
    )
    by_depth = {d: (o, n) for d, o, n in rows}
    # Extreme (a): aligned roots — exactly n checks.
    assert by_depth[0][0] == SIZE
    # Offset matches stay strictly below naive at every depth.
    for depth, (optimized, naive) in by_depth.items():
        assert optimized < naive


@pytest.mark.parametrize("depth", (0, 4, 8))
def test_match_depth_wall_clock(benchmark, depth):
    left, right, assertions = match_at_depth(SIZE, depth=depth)
    _, stats = benchmark(schema_integration, left, right, assertions)
    benchmark.extra_info["pairs_checked"] = stats.pairs_checked
