"""Experiment E-P — what each pruning device contributes (§6.1, App. A).

Sweeps assertion mixes over mirrored trees and reports, per mix, the
pairs actually checked, the pairs removed by equivalence
brother-cancellation (feature 1/Observation 1) and the pairs skipped by
the label mechanism (feature 3/Observation 2) — an ablation-style view
of the optimized algorithm's three devices.
"""

import pytest

from repro.integration import naive_schema_integration, schema_integration
from repro.workloads import mirrored_pair

SIZE = 64

MIXES = {
    "all-equivalent": dict(equivalence_fraction=1.0),
    "eq+inclusion": dict(equivalence_fraction=0.6, inclusion_fraction=0.4),
    "eq+intersect": dict(equivalence_fraction=0.6, intersection_fraction=0.4),
    "eq+disjoint": dict(equivalence_fraction=0.6, exclusion_fraction=0.4),
    "sparse (30% eq)": dict(equivalence_fraction=0.3),
}


def test_pruning_series(benchmark, report):
    def sweep():
        rows = []
        for name, mix in MIXES.items():
            left, right, assertions = mirrored_pair(SIZE, **mix)
            _, optimized = schema_integration(left, right, assertions)
            _, naive = naive_schema_integration(left, right, assertions)
            rows.append(
                (
                    name,
                    optimized.pairs_checked,
                    optimized.pairs_skipped_equivalence,
                    optimized.pairs_skipped_labels,
                    naive.pairs_checked,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        f"E-P  pruning contributions per assertion mix (n={SIZE})",
        ("mix", "checked", "skip≡", "skip-label", "naive"),
        rows,
    )
    for _, checked, _, _, naive_checked in rows:
        assert checked <= naive_checked


@pytest.mark.parametrize("mix_name", sorted(MIXES))
def test_mix_wall_clock(benchmark, mix_name):
    left, right, assertions = mirrored_pair(SIZE, **MIXES[mix_name])
    _, stats = benchmark(schema_integration, left, right, assertions)
    benchmark.extra_info["pairs_checked"] = stats.pairs_checked
