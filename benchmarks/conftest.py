"""Shared helpers for the benchmark harness.

Every benchmark prints its paper-shape series through
:func:`report` so the regenerated "tables" land in the terminal (and in
``bench_output.txt``) even under pytest's output capture.
"""

from typing import Iterable, Sequence

import pytest


def render_series(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    widths = [max(len(str(h)), 10) for h in header]
    lines = [f"\n── {title} " + "─" * max(0, 60 - len(title))]
    lines.append("  " + "  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append(
            "  " + "  ".join(str(value).rjust(w) for value, w in zip(row, widths))
        )
    return "\n".join(lines)


@pytest.fixture
def report(capsys):
    """Print a series table past pytest's capture."""

    def _report(title, header, rows):
        with capsys.disabled():
            print(render_series(title, header, rows))

    return _report
