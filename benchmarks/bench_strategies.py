"""Experiment E-X2 — multi-schema integration strategies (Fig 2).

Integrates k mirrored schemas with the accumulation strategy (Fig 2(a))
and the pairwise-tree strategy (Fig 2(b)), verifying both produce the
same global schema shape and timing the two folds.
"""

import pytest

from repro.federation import FSM, FSMAgent
from repro.model import ClassDef, ObjectDatabase, Schema

COUNTS = (3, 5, 8)


def build_fsm(count: int, classes_per_schema: int = 6) -> FSM:
    fsm = FSM()
    for index in range(1, count + 1):
        schema = Schema(f"S{index}")
        for c in range(classes_per_schema):
            parents = [f"c{c - 1}_{index}"] if c else []
            schema.add_class(
                ClassDef(f"c{c}_{index}", parents=parents).attr("key").attr(f"x{index}")
            )
        agent = FSMAgent(f"a{index}")
        agent.host_object_database(ObjectDatabase(schema, agent=f"a{index}"))
        fsm.register_agent(agent)
    # Chain equivalences: every schema's classes match schema 1's.
    for index in range(2, count + 1):
        for c in range(classes_per_schema):
            fsm.declare(
                f"""
                assertion S1.c{c}_1 == S{index}.c{c}_{index}
                  attr S1.c{c}_1.key == S{index}.c{c}_{index}.key
                end
                """
            )
    return fsm


def test_strategy_equivalence_series(benchmark, report):
    def sweep():
        rows = []
        for count in COUNTS:
            accumulated = build_fsm(count).integrate_all(strategy="accumulation")
            pairwise = build_fsm(count).integrate_all(strategy="pairwise")
            rows.append(
                (
                    count,
                    len(accumulated.classes),
                    len(pairwise.classes),
                    len(accumulated.is_a_links()),
                    len(pairwise.is_a_links()),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E-X2  global schema size: accumulation (Fig 2a) vs pairwise (Fig 2b)",
        ("schemas", "classes(acc)", "classes(pw)", "links(acc)", "links(pw)"),
        rows,
    )
    for _, classes_acc, classes_pw, links_acc, links_pw in rows:
        assert classes_acc == classes_pw
        assert links_acc == links_pw


@pytest.mark.parametrize("strategy", ["accumulation", "pairwise"])
@pytest.mark.parametrize("count", COUNTS)
def test_strategy_wall_clock(benchmark, strategy, count):
    def run():
        return build_fsm(count).integrate_all(strategy=strategy)

    result = benchmark(run)
    # All k copies of class c0 merged into one.
    names = {result.is_name(f"S{i}", f"c0_{i}") for i in range(1, count + 1)}
    assert len(names) == 1
