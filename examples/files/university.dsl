# Appendix A, Fig 18(b): the assertion set of the sample integration
assertion S1.person == S2.human
  attr S1.person.ssn# == S2.human.ssn#
  attr S1.person.name == S2.human.name
end
assertion S1.lecturer <= S2.employee
assertion S1.lecturer <= S2.faculty
assertion S1.teaching_assistant <= S2.employee
assertion S1.teaching_assistant <= S2.faculty
assertion S1.student ^ S2.faculty
