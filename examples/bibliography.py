#!/usr/bin/env python3
"""Path correspondences: Book/Author (Examples 1, 4, 11).

``S1.Book`` nests an ``author`` record; ``S2.Author`` nests a ``book``
record — the same world, inverted.  The path-correspondence problem of
[35] is handled here *formally* (the paper's claim): the equivalence of
paths ``S1(Book·author) ≡ S2(Author·book)`` is declared as two
derivation assertions (Fig 6(b)/(c)), from which the integrator
constructs the two inference rules of Example 11.  Queries against
either class then see both databases' contents.

Run:  python examples/bibliography.py
"""

from repro import FederationSession
from repro.model import ObjectDatabase
from repro.workloads import bibliography


def main() -> None:
    s1, s2, assertion_text = bibliography()
    print("=== the two class types (cf. §4.1) ===")
    print(s1.cls("Book").type_signature())
    print(s2.cls("Author").type_signature())

    print("\n=== path equivalence as two derivation assertions (Fig 6) ===")
    print(assertion_text.strip())

    import datetime

    db1 = ObjectDatabase(s1, agent="a1")
    db1.insert(
        "Book",
        {
            "ISBN": "3-540-1",
            "title": "Improving Path-Consistency",
            "author": {"name": "John", "birthday": datetime.date(1950, 5, 1)},
        },
    )
    db2 = ObjectDatabase(s2, agent="a2")
    db2.insert(
        "Author",
        {
            "name": "Ada",
            "birthday": datetime.date(1815, 12, 10),
            "book": {"ISBN": "0-19-2", "title": "Notes on the Engine"},
        },
    )

    session = FederationSession()
    session.add_database(db1)
    session.add_database(db2)
    session.declare(assertion_text)
    integrated = session.integrate()

    print("\n=== generated rules (Example 11) ===")
    for rule in integrated.rules:
        print("  ", rule)

    # Note: the two rules derive in both directions, so an object that
    # round-trips (Book → virtual Author → virtual Book) appears under a
    # fresh virtual OID as well; distinct value combinations are printed.
    # Fusing such duplicates needs data-level identity (§3 data mappings).
    print("\n?- Book() -> ISBN, title        (Ada's book appears via the rule)")
    books = {(r["ISBN"], r["title"]) for r in session.query("Book() -> ISBN, title")}
    for isbn, title in sorted(books):
        print(f"    ISBN={isbn!r}  title={title!r}")

    print("\n?- Author() -> name             (John appears via the reverse rule)")
    authors = {r["name"] for r in session.query("Author() -> name")}
    for name in sorted(authors):
        print(f"    name={name!r}")


if __name__ == "__main__":
    main()
