#!/usr/bin/env python3
"""A four-database enterprise federation (§3, Fig 1 and Fig 2).

The fullest tour of the architecture:

* **four component databases** on separate FSM-agents — two native
  object databases, one *relational* personnel database that enters
  through the §3 relational→OO transformation (tuples get
  ``<agent>.<system>.<db>.<relation>.<n>`` OIDs), and a fourth with a
  conflicting salary representation handled by a ``y = f(x)`` data
  mapping;
* **assertions of several kinds** — equivalence with composed-into and
  inclusion members, plain inclusion, intersection with an AIF;
* **multi-schema integration** with the Fig 2(a) accumulation strategy;
* **global queries** spanning everything.

Run:  python examples/university_federation.py
"""

from repro import FederationSession
from repro.federation import Column, FunctionMapping, RelationalDatabase, SameObjectSpec
from repro.model import ClassDef, DataType, ObjectDatabase, Schema


def build_sources():
    # S1: an OO database about people.
    s1 = Schema("S1")
    s1.add_class(
        ClassDef("person").attr("ssn#").attr("full_name").attr("city")
    )
    s1.add_class(
        ClassDef("professor", parents=["person"]).attr("chair")
    )
    db1 = ObjectDatabase(s1, agent="agent1")
    db1.insert("person", {"ssn#": "100", "full_name": "Ada L", "city": "London"})
    db1.insert("professor", {"ssn#": "101", "full_name": "Kurt G", "chair": "Logic"})

    # S2: another OO database, different vocabulary.
    s2 = Schema("S2")
    s2.add_class(ClassDef("human").attr("ssn#").attr("name").attr("street"))
    s2.add_class(ClassDef("employee", parents=["human"]).attr("dept"))
    db2 = ObjectDatabase(s2, agent="agent2")
    db2.insert("human", {"ssn#": "200", "name": "Alan T", "street": "Bletchley 1"})
    db2.insert("employee", {"ssn#": "201", "name": "Grace H", "dept": "Navy"})

    # S3: a *relational* personnel database (Informix, per the paper).
    rdb = RelationalDatabase("StaffDB", agent="agent3", system="informix")
    rdb.create_relation(
        "staff",
        [Column("ssn"), Column("staff_name"), Column("salary", DataType.INTEGER)],
    )
    rdb.insert("staff", {"ssn": "101", "staff_name": "Kurt G", "salary": 90})
    rdb.insert("staff", {"ssn": "300", "staff_name": "Emmy N", "salary": 80})

    # S4: grants, salaries stored in cents — fixed by a data mapping.
    s4 = Schema("S4")
    s4.add_class(
        ClassDef("grant_holder").attr("ssn#").attr("grant_cents", "integer")
    )
    db4 = ObjectDatabase(s4, agent="agent4")
    db4.insert("grant_holder", {"ssn#": "101", "grant_cents": 500000})

    return (s1, db1), (s2, db2), rdb, (s4, db4)


ASSERTIONS = """
# people across S1/S2 are the same concept
assertion S1.person == S2.human
  attr S1.person.ssn# == S2.human.ssn#
  attr S1.person.full_name == S2.human.name
  attr S1.person.city alpha(address) S2.human.street
end
assertion S1.professor <= S2.employee

# the relational staff are employees too (S3 entered as OO view)
assertion S3.staff <= S2.employee
  attr S3.staff.ssn == S2.employee.ssn#
end

# grant holders intersect the staff: shared people, merged money
assertion S3.staff ^ S4.grant_holder
  attr S3.staff.ssn == S4.grant_holder.ssn#
  attr S3.staff.salary ^ S4.grant_holder.grant_cents
end
"""


def main() -> None:
    (s1, db1), (s2, db2), rdb, (s4, db4) = build_sources()

    session = FederationSession()
    session.add_database(db1, agent_name="agent1")
    session.add_database(db2, agent_name="agent2")
    session.add_relational(rdb, schema_name="S3", agent_name="agent3")
    session.add_database(db4, agent_name="agent4")

    session.declare(ASSERTIONS)
    session.identify("S3.staff.ssn", "S4.grant_holder.ssn#")
    # grant_cents → currency units before integration sees them:
    session.fsm.mappings.register(
        "salary_grant_cents", "S4", "grant_cents",
        FunctionMapping(lambda cents: cents // 100, "y = x / 100"),
    )

    integrated = session.integrate(strategy="accumulation")

    # Route agent access through the federation runtime: concurrent
    # fan-out over the four agents, each extent split across 2 shard
    # endpoints, with the extent cache keeping warm queries local.
    session.enable_runtime(shard_plan=2)

    print("=== integrated global schema ===")
    print(integrated.describe())

    engine = session.engine()
    merged_person = integrated.is_name("S1", "person")

    print(f"\n?- {merged_person}() -> ssn#   (people from S1 and S2)")
    values = engine.attribute_values(merged_person, "ssn#")
    print("   ", sorted(values))

    staff_name = integrated.is_name("S3", "staff")
    print(f"\n?- {staff_name}() -> staff_name   (from the relational DB)")
    for row in session.query(f"{staff_name}() -> staff_name"):
        print("   ", {k: v for k, v in row.items() if k != "oid"})
        print("      OID:", row["oid"], " <- the §3 five-part scheme")

    # The virtual intersection class staff ∩ grant_holder:
    common = next(
        (name for name in integrated.classes if "grant_holder" in name and "_" in name),
        None,
    )
    if common and integrated.cls(common).virtual:
        members = engine.instances_of(common)
        print(f"\nvirtual class {common} (Principle 3): {len(members)} member(s)")

    print("\n=== federation bookkeeping ===")
    for agent_name in ("agent1", "agent2", "agent3", "agent4"):
        agent = session.fsm.agent(agent_name)
        print(f"  {agent_name}: {agent.access_count} local accesses")

    # The runtime's own account of the same autonomy story: every
    # remote touch is an agent_scan (keyed per shard endpoint), warm
    # queries are cache_hits, and nothing went missing.
    stats = session.runtime_stats()
    print("\n=== runtime stats (cumulative) ===")
    print(stats.describe())
    session.runtime.close()


if __name__ == "__main__":
    main()
