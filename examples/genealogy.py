#!/usr/bin/env python3
"""Genealogy federation: the paper's motivating example (Intro, Ex. 3, 9, App. B).

``S1`` knows *parents* and *brothers*; ``S2`` knows *uncles*.  Without
the paper's new **derivation assertion** a global query about uncles
would silently ignore everything S1 knows.  With the assertion::

    S1(parent, brother) → S2.uncle

the integrator generates the rule (Example 9)::

    <o1: uncle | Ussn#: x1, niece_nephew: x3> ⇐
        <o2: parent | Pssn#: x2, children: x3>,
        <o3: brother | Bssn#: x1, brothers: x2>

and the federated query ``?- uncle(niece_nephew='John')`` derives Bill —
Mary's brother — as John's uncle, by joining two S1 classes, while also
returning S2's locally stored uncles.  Both evaluation paths are shown:
the production bottom-up engine and the faithful Appendix B top-down
evaluator (which provably touches agents only through single-concept
fetches — local autonomy).

Run:  python examples/genealogy.py
"""

from repro import FederationSession
from repro.federation import FederatedQuery
from repro.workloads import genealogy


def main() -> None:
    s1, s2, assertion_text, databases = genealogy()

    session = FederationSession()
    session.add_database(databases["S1"], agent_name="FSM-agent1")
    session.add_database(databases["S2"], agent_name="FSM-agent2")
    session.declare(assertion_text)

    print("=== assertions ===")
    print(assertion_text.strip())

    integrated = session.integrate()
    print("\n=== generated derivation rules ===")
    for rule in integrated.rules:
        print(" ", rule)

    print("\n=== bottom-up evaluation ===")
    for query_text in (
        "uncle(niece_nephew='John') -> Ussn#, name",
        "uncle() -> Ussn#, name",
    ):
        rows = session.query(query_text)
        print(f"?- {query_text}")
        for row in rows:
            print("   ", row)

    print("\n=== Appendix B top-down evaluation (autonomy-preserving) ===")
    program = session.fsm.appendix_b()
    query = FederatedQuery.parse("uncle(niece_nephew='John') -> Ussn#")
    for row in query.run(program):
        print("   ", row)
    agent = session.fsm.agent("FSM-agent1")
    print(
        f"\nFSM-agent1 was asked {agent.access_count} single-concept "
        f"fetches and nothing else: {sorted(agent.accessed_classes)}"
    )

    print("\n=== the motivation check: drop the assertion ===")
    bare = FederationSession()
    s1b, s2b, _, dbs = genealogy()
    bare.add_database(dbs["S1"])
    bare.add_database(dbs["S2"])
    bare.integrate()
    rows = bare.query("uncle() -> Ussn#")
    print(f"without the derivation assertion, uncles = {[r['Ussn#'] for r in rows]}")
    print("(S1's knowledge is invisible — 'the answers ... will not be")
    print(" correctly computed in the sense of cooperations')")


if __name__ == "__main__":
    main()
