#!/usr/bin/env python3
"""Quickstart: integrate two university schemas (Appendix A, Fig 18).

Two independently developed databases describe the same campus:

* ``S1`` models people as person / student / lecturer / teaching_assistant;
* ``S2`` models them as human / employee / faculty / professor.

A DBA writes five correspondence assertions in the DSL; the optimized
§6 algorithm merges the schemas, generating exactly the integrated
schema of Fig 18(c): one merged ``person`` class, a single
``is_a(lecturer, faculty)`` link (the redundant links to ``employee``
are never created) and three rules defining the virtual
``student ∩ faculty`` classes.

Run:  python examples/quickstart.py
"""

from repro import SchemaIntegrator
from repro.workloads import appendix_a


def main() -> None:
    s1, s2, assertion_text = appendix_a()

    print("=== local schema S1 ===")
    print(s1.describe())
    print("\n=== local schema S2 ===")
    print(s2.describe())
    print("\n=== correspondence assertions ===")
    print(assertion_text.strip())

    integrator = SchemaIntegrator(s1, s2, assertion_text)
    integrated = integrator.run()

    print("\n=== integrated schema (cf. Fig 18(c)) ===")
    print(integrated.describe())

    print("\n=== how the optimized algorithm worked ===")
    print(integrator.stats.describe())

    naive = SchemaIntegrator(s1, s2, assertion_text, algorithm="naive")
    naive.run()
    print(
        f"\npair checks: optimized={integrator.stats.pairs_checked} "
        f"vs naive={naive.stats.pairs_checked} "
        f"(the paper's §6 optimization at work)"
    )


if __name__ == "__main__":
    main()
