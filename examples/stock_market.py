#!/usr/bin/env python3
"""Schematic discrepancies: car prices (Ex. 5/10) and stocks (§4.1).

Two hard heterogeneities the derivation assertion untangles:

1. **Attribute names as data** (Example 5): ``S2.car2`` has one *column
   per car model* (``vw``, ``bmw``...) holding its price; ``S1.car1``
   stores (time, car-name, price) rows.  The decomposed derivation
   assertions of Fig 10 generate one rule per model (Example 10), and a
   ``car1``-style federated query then reads ``car2``'s columns as rows.

2. **With-conditions** (§4.1): ``stock.price`` splits into
   ``price-in-March`` / ``price-in-April`` via ``with time = 'March'``
   qualifiers, each becoming a hyperedge predicate in the assertion
   graph.

Run:  python examples/stock_market.py
"""

from repro import FederationSession
from repro.model import ObjectDatabase
from repro.workloads import car_prices, stock_market


def car_example() -> None:
    print("=" * 64)
    print("Example 5/10: one attribute per car name")
    print("=" * 64)
    s1, s2, assertion_text = car_prices(("vw", "bmw", "opel"))
    print(s2.describe())
    print()
    print(assertion_text.strip())

    db1 = ObjectDatabase(s1, agent="a1")
    db2 = ObjectDatabase(s2, agent="a2")
    db2.insert("car2", {"time": "1998-03", "vw": 17000, "bmw": 52000, "opel": 21000})
    db2.insert("car2", {"time": "1998-04", "vw": 17500, "bmw": 51000, "opel": 20500})
    # S1 has one genuine row of its own:
    db1.insert("car1", {"time": "1998-03", "car-name": "fiat", "price": 15000})

    session = FederationSession()
    session.add_database(db1)
    session.add_database(db2)
    session.declare(assertion_text)
    integrated = session.integrate()

    print("\ngenerated rules (one per decomposed assertion, Example 10):")
    for rule in integrated.rules:
        print("  ", rule)

    print("\n?- car1(car-name='bmw') -> time, price")
    for row in session.query("car1(car-name='bmw') -> time, price"):
        print("   ", {k: v for k, v in row.items() if k != "oid"})

    print("\n?- car1(time='1998-03') -> car-name, price   (rows from both DBs)")
    for row in session.query("car1(time='1998-03') -> car-name, price"):
        print("   ", {k: v for k, v in row.items() if k != "oid"})


def stock_example() -> None:
    print()
    print("=" * 64)
    print("§4.1: month-qualified price attributes (with-conditions)")
    print("=" * 64)
    s1, s2, assertion_text = stock_market()
    print(assertion_text.strip())

    db1 = ObjectDatabase(s1, agent="a1")
    db2 = ObjectDatabase(s2, agent="a2")
    db2.insert("stock", {"time": "March", "stock-name": "ACME", "price": 120})
    db2.insert("stock", {"time": "April", "stock-name": "ACME", "price": 135})
    db2.insert("stock", {"time": "March", "stock-name": "GLOBEX", "price": 80})
    db1.insert(
        "stock-in-March-April",
        {"stock-name": "INITECH", "price-in-March": 55, "price-in-April": 60},
    )

    session = FederationSession()
    session.add_database(db1)
    session.add_database(db2)
    session.declare(assertion_text)
    integrated = session.integrate()
    session.enable_runtime()  # fan-out + extent cache + per-query stats

    print("\ngenerated rules:")
    for rule in integrated.rules:
        print("  ", rule)

    print("\n?- stock(time='March') -> stock-name, price")
    for row in session.query("stock(time='March') -> stock-name, price"):
        print("   ", {k: v for k, v in row.items() if k != "oid"})

    stats = session.last_query_stats
    print("\nlast query runtime stats:")
    print(
        "   agent_scans:", stats.counter("agent_scans"),
        " cache_hits:", stats.counter("cache_hits"),
        " retries:", stats.counter("retries"),
        " missing_shards:", stats.counter("missing_shards"),
    )
    session.runtime.close()


if __name__ == "__main__":
    car_example()
    stock_example()
