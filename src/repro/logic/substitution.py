"""Forward substitutions: variable -> term maps (standard, ref [29]).

Used by unification and by the evaluation engine.  The *reverse*
substitutions of Definition 5.1 — which replace constants/variables *by*
variables during rule construction — are the separate
:mod:`repro.logic.reverse_substitution` module; keeping the two apart
mirrors the paper's own distinction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from ..errors import LogicError
from .terms import Constant, Term, Variable


class Substitution:
    """An immutable map from variables to terms.

    Supports application to terms (:meth:`apply`), composition
    (:meth:`compose`) and consistent extension (:meth:`bind`), which
    returns ``None`` on conflict instead of raising — the convenient
    shape for unification loops.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Mapping[Variable, Term]] = None) -> None:
        checked: Dict[Variable, Term] = {}
        for variable, term in (bindings or {}).items():
            if not isinstance(variable, Variable):
                raise LogicError(f"substitution keys must be variables: {variable!r}")
            if not isinstance(term, (Variable, Constant)):
                raise LogicError(f"substitution values must be terms: {term!r}")
            if variable != term:
                checked[variable] = term
        self._bindings = checked

    # ------------------------------------------------------------------
    def apply(self, term: Term) -> Term:
        """Resolve *term* through the bindings (follows variable chains)."""
        seen = set()
        while isinstance(term, Variable) and term in self._bindings:
            if term in seen:
                raise LogicError(f"cyclic substitution through {term}")
            seen.add(term)
            term = self._bindings[term]
        return term

    def apply_all(self, terms: Iterable[Term]) -> Tuple[Term, ...]:
        return tuple(self.apply(term) for term in terms)

    def bind(self, variable: Variable, term: Term) -> Optional["Substitution"]:
        """This substitution extended with ``variable -> term``.

        Returns ``None`` when the variable is already bound to a
        conflicting value.
        """
        current = self.apply(variable)
        term = self.apply(term)
        if current == term:
            return self
        if isinstance(current, Constant):
            if isinstance(term, Constant):
                return None
            # current is a constant, term a variable: bind the variable.
            variable, term = term, current
        else:
            variable = current  # an unbound variable
        new_bindings = dict(self._bindings)
        new_bindings[variable] = term
        return Substitution(new_bindings)

    def compose(self, other: "Substitution") -> "Substitution":
        """``self`` then ``other``: apply(x) == other.apply(self.apply(x))."""
        combined: Dict[Variable, Term] = {
            variable: other.apply(term) for variable, term in self._bindings.items()
        }
        for variable, term in other.items():
            combined.setdefault(variable, term)
        return Substitution(combined)

    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Variable, Term]]:
        return iter(self._bindings.items())

    def domain(self) -> Tuple[Variable, ...]:
        return tuple(self._bindings)

    def __contains__(self, variable: Variable) -> bool:
        return variable in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self) -> int:
        return hash(frozenset(self._bindings.items()))

    def __repr__(self) -> str:
        inside = ", ".join(f"{v}/{t}" for v, t in self._bindings.items())
        return "{" + inside + "}"


EMPTY = Substitution()
