"""Reverse substitutions — Definitions 5.1, 5.2 and 5.3 of the paper.

A reverse substitution ``θ = {c1/x1, ..., cn/xn}`` replaces constants *or
variables* ``ci`` by variables ``xi``; it is "just the reverse of rule
evaluation in logic programming" and is the core device of the
derivation-integration principle (Principle 5): connected subgraphs of an
assertion graph each yield one reverse substitution, which is then applied
to the O-terms of the classes involved to thread shared variables through
the generated rule (Examples 9-10).

Faithfulness notes:

* **Definition 5.1** — keys may be constants or variables and must be
  pairwise distinct; both are enforced.
* **Definition 5.2** — application replaces *each occurrence* of ``ci``
  simultaneously; application to structured objects (O-terms, atoms) is
  delegated to their own ``apply_reverse`` methods, which call
  :meth:`ReverseSubstitution.replace` per term.
* **Definition 5.3** — composition ``θδ`` builds
  ``{c1/x1δ, ..., cn/xnδ, d1/y1, ..., dm/ym}`` then deletes bindings
  ``ci/xiδ`` with ``ci = xiδ`` and bindings ``dj/yj`` with
  ``dj ∈ {c1, ..., cn}``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

from ..errors import LogicError
from .terms import Constant, Term, Variable

Key = Union[Constant, Variable]


class ReverseSubstitution:
    """An immutable reverse substitution ``{c1/x1, ..., cn/xn}``."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[Key, Variable]) -> None:
        checked: Dict[Key, Variable] = {}
        for key, variable in bindings.items():
            if not isinstance(key, (Constant, Variable)):
                raise LogicError(
                    f"reverse substitution keys must be constants or variables, "
                    f"got {key!r}"
                )
            if not isinstance(variable, Variable):
                raise LogicError(
                    f"reverse substitution values must be variables, got {variable!r}"
                )
            if key in checked:
                # Definition 5.1 requires c1, ..., cn distinct.
                raise LogicError(f"duplicate binding for {key} in reverse substitution")
            checked[key] = variable
        self._bindings = checked

    @classmethod
    def of(cls, *pairs: Tuple[object, str]) -> "ReverseSubstitution":
        """Build from ``(constant_or_variable, variable_name)`` pairs.

        Plain Python values become constants; :class:`Variable` and
        :class:`Constant` instances pass through.  Handy in tests:
        ``ReverseSubstitution.of(("z", "x1"), (Variable("w"), "x1"))``
        builds the paper's θ1 = {z/x1, w/x1}.
        """
        bindings: Dict[Key, Variable] = {}
        for raw_key, variable_name in pairs:
            key: Key
            if isinstance(raw_key, (Constant, Variable)):
                key = raw_key
            else:
                key = Constant(raw_key)
            if key in bindings:
                raise LogicError(f"duplicate binding for {key} in reverse substitution")
            bindings[key] = Variable(variable_name)
        return cls(bindings)

    # ------------------------------------------------------------------
    # Definition 5.2: application
    # ------------------------------------------------------------------
    def replace(self, term: Term) -> Term:
        """The single-term replacement: ``ci`` becomes ``xi``, else identity."""
        return self._bindings.get(term, term)

    def apply_terms(self, terms: Iterable[Term]) -> Tuple[Term, ...]:
        """Simultaneous replacement over a sequence of terms."""
        return tuple(self.replace(term) for term in terms)

    def apply_variable(self, variable: Variable) -> Variable:
        """``xδ`` for a variable *x* (used by Definition 5.3)."""
        replaced = self._bindings.get(variable, variable)
        if not isinstance(replaced, Variable):  # pragma: no cover - defensive
            raise LogicError("reverse substitution mapped a variable to a constant")
        return replaced

    # ------------------------------------------------------------------
    # Definition 5.3: composition
    # ------------------------------------------------------------------
    def compose(self, other: "ReverseSubstitution") -> "ReverseSubstitution":
        """The composition ``θδ`` of ``self`` (θ) and ``other`` (δ)."""
        combined: Dict[Key, Variable] = {}
        for key, variable in self._bindings.items():
            new_variable = other.apply_variable(variable)
            if key == new_variable:
                # delete any binding ci/xiδ for which ci = xiδ
                continue
            combined[key] = new_variable
        for key, variable in other._bindings.items():
            if key in self._bindings:
                # delete any binding dj/yj for which dj ∈ {c1, ..., cn}
                continue
            if key in combined:
                raise LogicError(
                    f"composition produced duplicate binding for {key}"
                )
            combined[key] = variable
        return ReverseSubstitution(combined)

    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Key, Variable]]:
        return iter(self._bindings.items())

    def keys(self) -> Tuple[Key, ...]:
        return tuple(self._bindings)

    def __contains__(self, key: Key) -> bool:
        return key in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReverseSubstitution):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self) -> int:
        return hash(frozenset(self._bindings.items()))

    def __repr__(self) -> str:
        inside = ", ".join(f"{key}/{var}" for key, var in self._bindings.items())
        return "{" + inside + "}"


def compose_all(substitutions: Iterable[ReverseSubstitution]) -> ReverseSubstitution:
    """Left-fold composition ``θ1θ2...θk`` (identity for an empty input)."""
    result = ReverseSubstitution({})
    for substitution in substitutions:
        result = result.compose(substitution)
    return result
