"""O-terms: complex O-terms and typing O-terms (§2).

A *complex O-term* is the pattern form of an object::

    <o: C | a1: t1, ..., al: tl, agg1: t1', ...>

where ``o`` is a term for the object identifier, ``C`` names a class (a
variable is allowed — §2 permits variables for class names) and each
binding pairs an attribute/aggregation *descriptor* with a term for its
value.  A *typing O-term* ``<C : C'>`` asserts ``is_a(C, C')``.

O-terms participate in derivation rules.  For evaluation they are
*compiled* to ordinary datalog atoms over two internal predicate
families:

* ``inst$C(o)`` — membership of ``o`` in the extension of class ``C``;
* ``att$C$a(o, v)`` — object ``o`` has value ``v`` for descriptor ``a``
  (one fact per element for multivalued attributes, which makes the
  paper's ``∈`` value correspondences ordinary joins).

``$`` cannot occur in class/attribute names coming from the model layer,
so the mangling is collision-free.  Compilation requires ground class and
descriptor names: rule *generation* (Principle 5) resolves schematic
discrepancies — where names are data — before any rule is evaluated,
producing one rule per concrete name, exactly like the decomposed
assertions of Figs 9-10.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple, Union

from ..errors import LogicError
from .atoms import Atom, Literal
from .reverse_substitution import ReverseSubstitution
from .substitution import Substitution
from .terms import Constant, Term, Variable, make_term

#: Separator used when mangling O-terms into flat predicate names.
MANGLE = "$"

Descriptor = Union[str, Variable]


def inst_predicate(class_name: str) -> str:
    """The membership predicate name for *class_name*."""
    return f"inst{MANGLE}{class_name}"


def att_predicate(class_name: str, descriptor: str) -> str:
    """The attribute-value predicate name for ``class.descriptor``."""
    return f"att{MANGLE}{class_name}{MANGLE}{descriptor}"


def parse_predicate(predicate: str) -> Optional[Tuple[str, Optional[str]]]:
    """Invert the mangling: ``(class, descriptor_or_None)`` or ``None``.

    ``None`` means *predicate* is not an O-term-derived predicate.
    """
    parts = predicate.split(MANGLE)
    if parts[0] == "inst" and len(parts) == 2:
        return parts[1], None
    if parts[0] == "att" and len(parts) == 3:
        return parts[1], parts[2]
    return None


@dataclasses.dataclass(frozen=True)
class OTerm:
    """A complex O-term ``<o: C | d1: t1, ..., dk: tk>``.

    ``bindings`` is stored as a tuple of (descriptor, term) pairs to stay
    hashable and order-preserving; descriptors are attribute *or*
    aggregation names (the paper treats both uniformly inside O-terms,
    cf. the ``work_in: o2`` example), or variables in the higher-order
    schematic-discrepancy cases.
    """

    object_term: Term
    class_name: Union[str, Variable]
    bindings: Tuple[Tuple[Descriptor, Term], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.object_term, (Variable, Constant)):
            raise LogicError(f"O-term object must be a term, got {self.object_term!r}")
        seen = set()
        for descriptor, term in self.bindings:
            if not isinstance(descriptor, (str, Variable)):
                raise LogicError(f"O-term descriptor must be str or Variable: {descriptor!r}")
            if not isinstance(term, (Variable, Constant)):
                raise LogicError(f"O-term binding value must be a term: {term!r}")
            if descriptor in seen:
                raise LogicError(f"O-term binds descriptor {descriptor!r} twice")
            seen.add(descriptor)

    @classmethod
    def of(
        cls,
        object_term: object,
        class_name: Union[str, Variable],
        bindings: Optional[Mapping[Descriptor, object]] = None,
    ) -> "OTerm":
        """Build with automatic term lifting on object and binding values."""
        lifted = tuple(
            (descriptor, make_term(value)) for descriptor, value in (bindings or {}).items()
        )
        return cls(make_term(object_term), class_name, lifted)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def binding(self, descriptor: Descriptor) -> Optional[Term]:
        for existing, term in self.bindings:
            if existing == descriptor:
                return term
        return None

    def descriptors(self) -> Tuple[Descriptor, ...]:
        return tuple(descriptor for descriptor, _ in self.bindings)

    def variables(self) -> FrozenSet[Variable]:
        collected = set()
        if isinstance(self.object_term, Variable):
            collected.add(self.object_term)
        if isinstance(self.class_name, Variable):
            collected.add(self.class_name)
        for descriptor, term in self.bindings:
            if isinstance(descriptor, Variable):
                collected.add(descriptor)
            if isinstance(term, Variable):
                collected.add(term)
        return frozenset(collected)

    def is_membership_only(self) -> bool:
        """True for bare ``<o : C>`` patterns (no attribute bindings)."""
        return not self.bindings

    def is_schematic(self) -> bool:
        """True when the class name or a descriptor is a variable."""
        if isinstance(self.class_name, Variable):
            return True
        return any(isinstance(descriptor, Variable) for descriptor, _ in self.bindings)

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def substitute(self, substitution: Substitution) -> "OTerm":
        new_bindings = tuple(
            (descriptor, substitution.apply(term)) for descriptor, term in self.bindings
        )
        return OTerm(
            substitution.apply(self.object_term), self.class_name, new_bindings
        )

    def apply_reverse(self, reverse: ReverseSubstitution) -> "OTerm":
        """Definition 5.2 applied to this O-term.

        Replaces the object term and every binding-value occurrence of a
        bound constant/variable; descriptors and the class name are left
        alone (hyperedge substitutions apply to predicates, not O-terms —
        see Example 10).
        """
        new_bindings = tuple(
            (descriptor, reverse.replace(term)) for descriptor, term in self.bindings
        )
        return OTerm(reverse.replace(self.object_term), self.class_name, new_bindings)

    def with_binding(self, descriptor: Descriptor, term: Term) -> "OTerm":
        """A copy with one more (or replaced) binding."""
        kept = tuple(
            (existing, value) for existing, value in self.bindings if existing != descriptor
        )
        return OTerm(self.object_term, self.class_name, kept + ((descriptor, term),))

    # ------------------------------------------------------------------
    # compilation to flat atoms
    # ------------------------------------------------------------------
    def compile(self) -> List[Atom]:
        """Compile to ``inst$C`` / ``att$C$d`` atoms (conjunction).

        Raises :class:`LogicError` for schematic O-terms — those must be
        resolved by the derivation principle before evaluation.
        """
        if self.is_schematic():
            raise LogicError(
                f"cannot compile schematic O-term {self}; resolve name "
                f"variables during rule generation first"
            )
        class_name = str(self.class_name)
        atoms = [Atom(inst_predicate(class_name), (self.object_term,))]
        for descriptor, term in self.bindings:
            atoms.append(
                Atom(att_predicate(class_name, str(descriptor)), (self.object_term, term))
            )
        return atoms

    def compile_negated(self) -> List[Literal]:
        """Compile a negated occurrence (``¬<x : C>`` only).

        The paper only negates membership O-terms (Principles 3-4); a
        negated O-term with bindings would be ambiguous, so it is refused.
        """
        if not self.is_membership_only():
            raise LogicError(
                f"only membership O-terms may be negated, got ¬{self}"
            )
        [membership] = self.compile()
        return [Literal(membership, positive=False)]

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if not self.bindings:
            return f"<{self.object_term}: {self.class_name}>"
        body = ", ".join(f"{d}: {t}" for d, t in self.bindings)
        return f"<{self.object_term}: {self.class_name} | {body}>"


@dataclasses.dataclass(frozen=True)
class TypingOTerm:
    """A typing O-term ``<C : C'>``, i.e. ``is_a(C, C')``."""

    subclass: Union[str, Variable]
    superclass: Union[str, Variable]

    PREDICATE = "is_a"

    def compile(self) -> Atom:
        def lift(part: Union[str, Variable]) -> Term:
            return part if isinstance(part, Variable) else Constant(part)

        return Atom(self.PREDICATE, (lift(self.subclass), lift(self.superclass)))

    def __str__(self) -> str:
        return f"<{self.subclass}: {self.superclass}>"


def oterm_from_instance(instance: "object") -> OTerm:
    """Ground O-term for an :class:`~repro.model.instances.ObjectInstance`.

    Multivalued values stay frozensets inside a single constant — use
    :func:`repro.logic.engine.facts_from_database` when per-element facts
    are needed.
    """
    bindings: Dict[Descriptor, object] = {}
    for name, value in instance.attributes.items():  # type: ignore[attr-defined]
        bindings[name] = value
    for name, value in instance.aggregations.items():  # type: ignore[attr-defined]
        bindings[name] = value
    return OTerm.of(instance.oid, instance.class_name, bindings)  # type: ignore[attr-defined]
