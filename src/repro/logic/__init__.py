"""First-order logic substrate: terms, O-terms, rules and evaluation.

Implements §2's deduction-enriched object model (O-terms, derivation
rules), §5's reverse substitutions (Definitions 5.1-5.3), ref [8]'s
safety conditions, a stratified semi-naive bottom-up engine, and the
schema-labelled top-down evaluator of Appendix B.
"""

from .atoms import Atom, Comparison, ComparisonOp, Literal, lits, negated
from .engine import FactStore, QueryEngine, evaluate, facts_from_database, stratify
from .labelled import LabelledProgram, SchemaSource, source_from_facts
from .oterms import (
    OTerm,
    TypingOTerm,
    att_predicate,
    inst_predicate,
    oterm_from_instance,
    parse_predicate,
)
from .reverse_substitution import ReverseSubstitution, compose_all
from .rules import BodyItem, DatalogRule, Rule, compile_rules
from .safety import check_all, check_rule, check_surface_rule, is_safe, violations
from .substitution import EMPTY, Substitution
from .terms import Constant, Term, Variable, VariableFactory, is_ground, make_term
from .unify import match_atom, unify_atoms, unify_oterms, unify_terms

__all__ = [
    "Atom",
    "BodyItem",
    "Comparison",
    "ComparisonOp",
    "Constant",
    "DatalogRule",
    "EMPTY",
    "FactStore",
    "LabelledProgram",
    "Literal",
    "OTerm",
    "QueryEngine",
    "ReverseSubstitution",
    "Rule",
    "SchemaSource",
    "Substitution",
    "Term",
    "TypingOTerm",
    "Variable",
    "VariableFactory",
    "att_predicate",
    "check_all",
    "check_rule",
    "check_surface_rule",
    "compile_rules",
    "compose_all",
    "evaluate",
    "facts_from_database",
    "inst_predicate",
    "is_ground",
    "is_safe",
    "lits",
    "make_term",
    "match_atom",
    "negated",
    "oterm_from_instance",
    "parse_predicate",
    "source_from_facts",
    "stratify",
    "unify_atoms",
    "unify_oterms",
    "unify_terms",
    "violations",
]
