"""Appendix B: evaluating virtual rules with schema-labelled predicates.

The paper labels each head predicate ``q`` with the set ``S`` of schema
names that contain ``q`` as a (base) concept, and each body predicate
``p`` with the set ``R`` of rules having ``p`` as head; evaluation then
recursively unions local answers and rule-derived answers::

    Algorithm evaluation(q, Q)
        for each rule q^{S} <- p1^{R1}, ..., pn^{Rn} in Q do
            temp   := ∪_{s ∈ S} results of evaluating q against s
            temp_i := evaluation(p_i, R_i)          (recursive call)
            temp'  := temp_1 ⋈ ... ⋈ temp_n
            result := temp ∪ temp'

This module implements that algorithm faithfully as
:class:`LabelledProgram.evaluation` — a top-down evaluator whose only
interaction with component databases is *fetching the extension of one
concept*, which is precisely the autonomy argument of the paper: no
reasoning is pushed down to local systems.

Local schemas plug in through the tiny :class:`SchemaSource` protocol
(``fetch(predicate) -> set of value tuples``), so both in-memory stores
and the federation agents of :mod:`repro.federation` can serve as
sources.  As the paper notes, the algorithm is "just a naive version";
it does not support recursive virtual rules — those raise
:class:`~repro.errors.EvaluationError` pointing at the bottom-up engine,
which handles recursion via semi-naive iteration.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import EvaluationError
from .atoms import Atom, Comparison, ComparisonOp, Literal, Skolem
from .engine import FactStore, FactTuple
from .rules import DatalogRule
from .substitution import EMPTY, Substitution
from .terms import Constant, Variable


class SchemaSource:
    """A component schema that can enumerate one concept's extension.

    The default implementation wraps a :class:`FactStore`; federation
    agents provide their own subclass that answers from live local
    databases (and counts the accesses, for autonomy tests).
    """

    def __init__(self, name: str, store: Optional[FactStore] = None) -> None:
        self.name = name
        self._store = store or FactStore()
        self.fetch_count = 0

    def fetch(self, predicate: str) -> Set[FactTuple]:
        """All ground tuples of *predicate* available in this schema."""
        self.fetch_count += 1
        return set(self._store.facts(predicate))

    def concepts(self) -> Tuple[str, ...]:
        """Predicates this schema exposes as base concepts."""
        return self._store.predicates()


class LabelledProgram:
    """Rules plus the head/body labelling of Appendix B.

    Parameters
    ----------
    rules:
        Flat datalog rules over *concept-level* predicates (``parent``,
        ``uncle``...).  Head labels are derived from *sources*: predicate
        ``q`` is labelled with every source exposing ``q``.
    sources:
        The component schemas, in registration order.
    """

    def __init__(
        self, rules: Iterable[DatalogRule], sources: Sequence[SchemaSource]
    ) -> None:
        self._rules_by_head: Dict[str, List[DatalogRule]] = defaultdict(list)
        for rule in rules:
            self._rules_by_head[rule.head.predicate].append(rule)
        self._sources = list(sources)
        self._concept_map: Dict[str, List[SchemaSource]] = defaultdict(list)
        for source in self._sources:
            for predicate in source.concepts():
                self._concept_map[predicate].append(source)
        self._fresh = 0

    # ------------------------------------------------------------------
    def head_label(self, predicate: str) -> FrozenSet[str]:
        """The schema-name set ``S`` labelling head predicate *predicate*."""
        return frozenset(s.name for s in self._concept_map.get(predicate, ()))

    def body_label(self, predicate: str) -> Tuple[DatalogRule, ...]:
        """The rule set ``R`` labelling body predicate *predicate*."""
        return tuple(self._rules_by_head.get(predicate, ()))

    def known_predicate(self, predicate: str) -> bool:
        return predicate in self._concept_map or predicate in self._rules_by_head

    # ------------------------------------------------------------------
    def evaluation(self, goal: Atom) -> List[Dict[str, Any]]:
        """Appendix B's ``evaluation(q, Q)`` for the (possibly non-ground)
        *goal*; answers are bindings of the goal's variables.

        Constants in the goal act as selections ("the constants appearing
        in the query ... can be used to optimize"); here they filter after
        recursive evaluation, keeping the algorithm as the paper states it.
        """
        if not self.known_predicate(goal.predicate):
            raise EvaluationError(
                f"unknown predicate {goal.predicate!r}: not a concept of any "
                f"registered schema and no rule derives it"
            )
        # Per-query memo of evaluated predicates — the algorithm's
        # ``temp`` tables; recursion through joins would otherwise
        # recompute each predicate once per outer tuple.  A lazy
        # per-argument index over each memoized table keeps joins from
        # degenerating into nested scans.
        self._memo: Dict[Tuple[str, int], Set[FactTuple]] = {}
        self._memo_index: Dict[Tuple[str, int], Dict[Tuple[int, Any], Set[FactTuple]]] = {}
        tuples = self._eval_predicate(goal.predicate, goal.arity, stack=())
        answers: List[Dict[str, Any]] = []
        seen: Set[Tuple[Tuple[str, Any], ...]] = set()
        for values in sorted(tuples, key=repr):
            substitution = _match_values(goal, values)
            if substitution is None:
                continue
            binding = {
                variable.name: substitution.apply(variable).value  # type: ignore[union-attr]
                for variable in goal.variables()
            }
            key = tuple(sorted(binding.items(), key=lambda kv: kv[0]))
            if key not in seen:
                seen.add(key)
                answers.append(binding)
        return answers

    # ------------------------------------------------------------------
    def _eval_predicate(
        self, predicate: str, arity: int, stack: Tuple[str, ...]
    ) -> Set[FactTuple]:
        memo = getattr(self, "_memo", None)
        if memo is not None and (predicate, arity) in memo:
            return memo[(predicate, arity)]
        if predicate in stack:
            raise EvaluationError(
                f"recursive virtual rule through {predicate!r}: the Appendix B "
                f"evaluator is non-recursive; use the bottom-up engine "
                f"(repro.logic.engine.evaluate) instead"
            )
        stack = stack + (predicate,)

        # temp := ∪_{s ∈ S} results of evaluating q against s
        result: Set[FactTuple] = set()
        for source in self._concept_map.get(predicate, ()):
            for values in source.fetch(predicate):
                if len(values) == arity:
                    result.add(values)

        # temp' per rule: join of recursively evaluated body predicates
        for rule in self._rules_by_head.get(predicate, ()):
            if len(rule.head.args) != arity:
                continue
            self._fresh += 1
            renamed = rule.rename_apart(f"r{self._fresh}")
            for substitution in self._solve(list(renamed.body), EMPTY, stack):
                head = renamed.head.substitute(substitution)
                if not head.is_ground():
                    raise EvaluationError(
                        f"rule {rule} derived non-ground head {head}"
                    )
                result.add(tuple(c.value for c in head.args))  # type: ignore[union-attr]
        if memo is not None:
            memo[(predicate, arity)] = result
        return result

    def _candidates(
        self,
        atom: Atom,
        substitution: Substitution,
        stack: Tuple[str, ...],
    ) -> Set[FactTuple]:
        """Indexed candidate tuples for *atom* under current bindings."""
        tuples = self._eval_predicate(atom.predicate, atom.arity, stack)
        bound = [
            (position, resolved.value)
            for position, arg in enumerate(atom.args)
            if isinstance((resolved := substitution.apply(arg)), Constant)
        ]
        if not bound:
            return tuples
        key = (atom.predicate, atom.arity)
        index = getattr(self, "_memo_index", {}).get(key)
        if index is None:
            index = {}
            for values in tuples:
                for position, value in enumerate(values):
                    index.setdefault((position, value), set()).add(values)
            if hasattr(self, "_memo_index"):
                self._memo_index[key] = index
        best: Optional[Set[FactTuple]] = None
        for position, value in bound:
            bucket = index.get((position, value), set())
            if best is None or len(bucket) < len(best):
                best = bucket
        return best if best is not None else tuples

    def _solve(
        self,
        pending: List[Literal],
        substitution: Substitution,
        stack: Tuple[str, ...],
    ) -> Iterable[Substitution]:
        if not pending:
            yield substitution
            return
        # Evaluate cheap (non-join) literals first; remember the most
        # selective positive atom for the join step.
        best_position = -1
        best_candidates: Optional[Set[FactTuple]] = None
        for position, literal in enumerate(pending):
            atom = literal.atom
            rest = pending[:position] + pending[position + 1:]
            if literal.positive and isinstance(atom, Atom):
                candidates = self._candidates(atom, substitution, stack)
                if best_candidates is None or len(candidates) < len(best_candidates):
                    best_position = position
                    best_candidates = candidates
                continue
            if isinstance(atom, Comparison):
                resolved = atom.substitute(substitution)
                if (
                    literal.positive
                    and resolved.op is ComparisonOp.EQ
                    and isinstance(resolved.left, Variable) != isinstance(resolved.right, Variable)
                ):
                    variable = (
                        resolved.left if isinstance(resolved.left, Variable) else resolved.right
                    )
                    constant = (
                        resolved.right if isinstance(resolved.left, Variable) else resolved.left
                    )
                    extended = substitution.bind(variable, constant)
                    if extended is not None:
                        yield from self._solve(rest, extended, stack)
                    return
                if resolved.is_ground():
                    if resolved.holds() == literal.positive:
                        yield from self._solve(rest, substitution, stack)
                    return
                continue
            if isinstance(atom, Skolem):
                resolved_skolem = atom.substitute(substitution)
                if all(isinstance(a, Constant) for a in resolved_skolem.args):
                    token = Constant(resolved_skolem.token())
                    target = substitution.apply(resolved_skolem.result)
                    if isinstance(target, Constant):
                        if target == token:
                            yield from self._solve(rest, substitution, stack)
                        return
                    extended = substitution.bind(target, token)
                    if extended is not None:
                        yield from self._solve(rest, extended, stack)
                    return
                continue
            if not literal.positive and isinstance(atom, Atom):
                resolved_atom = atom.substitute(substitution)
                if resolved_atom.is_ground():
                    tuples = self._eval_predicate(atom.predicate, atom.arity, stack)
                    values = tuple(c.value for c in resolved_atom.args)  # type: ignore[union-attr]
                    if values not in tuples:
                        yield from self._solve(rest, substitution, stack)
                    return
                continue
        if best_candidates is None:
            raise EvaluationError(
                "body cannot be scheduled (unsafe rule?): "
                + ", ".join(str(literal) for literal in pending)
            )
        chosen = pending[best_position]
        atom = chosen.atom
        assert isinstance(atom, Atom)
        rest = pending[:best_position] + pending[best_position + 1:]
        for values in best_candidates:
            extended = _match_values(atom, values, substitution)
            if extended is not None:
                yield from self._solve(rest, extended, stack)


def _match_values(
    pattern: Atom, values: FactTuple, substitution: Substitution = EMPTY
) -> Optional[Substitution]:
    if len(values) != pattern.arity:
        return None
    current = substitution
    for arg, value in zip(pattern.args, values):
        resolved = current.apply(arg)
        if isinstance(resolved, Constant):
            if resolved.value != value:
                return None
        else:
            extended = current.bind(resolved, Constant(value))
            if extended is None:
                return None
            current = extended
    return current


def source_from_facts(
    name: str, facts: Mapping[str, Iterable[FactTuple]]
) -> SchemaSource:
    """Build a :class:`SchemaSource` from ``{predicate: tuples}`` data."""
    store = FactStore()
    for predicate, tuples in facts.items():
        for values in tuples:
            store.add(predicate, tuple(values))
    return SchemaSource(name, store)
