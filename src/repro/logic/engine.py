"""Bottom-up evaluation of virtual rules: a stratified datalog engine.

The paper equips the integrated schema with derivation rules (Principles
3-5) and evaluates them "at an abstract level" without touching local
autonomy (Appendix B).  This module is the production evaluation path: a
semi-naive, stratified bottom-up engine over ground facts.

* Facts live in a :class:`FactStore` — per-predicate sets of value
  tuples.  :func:`facts_from_database` compiles an
  :class:`~repro.model.database.ObjectDatabase` into ``inst$C`` /
  ``att$C$a`` / ``is_a`` facts (one ``att`` fact per element of a
  multivalued value, which turns the paper's ``∈`` correspondences into
  plain joins).
* Programs are collections of :class:`~repro.logic.rules.DatalogRule`;
  negation is handled by stratification (rules with ``¬`` on a predicate
  evaluate in a later stratum), matching the paper's reliance on ref [8]
  for well-defined rule sets.
* :func:`evaluate` materializes all derivable facts; :class:`QueryEngine`
  wraps it with conjunctive queries like ``?- uncle('John', y)``.

The faithful *top-down* algorithm of Appendix B — with schema-labelled
predicates — lives in :mod:`repro.logic.labelled`; both produce the same
answers on the paper's examples (tested).
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import EvaluationError
from .atoms import Atom, Comparison, ComparisonOp, Literal, Skolem
from .oterms import TypingOTerm, att_predicate, inst_predicate
from .rules import DatalogRule, Rule, compile_rules
from .substitution import EMPTY, Substitution
from .terms import Constant, Term, Variable

FactTuple = Tuple[Any, ...]


class FactStore:
    """Ground facts grouped by predicate name.

    A per-predicate index on the first argument accelerates the joins
    the compiled O-term predicates produce (``att$C$a(oid, v)`` is
    always probed by ``oid`` once the object variable is bound).
    """

    #: Index every argument position up to this arity (compiled O-term
    #: predicates have arity ≤ 2, is_a and same_object too).
    INDEXED_ARITY = 3

    def __init__(self) -> None:
        self._facts: Dict[str, Set[FactTuple]] = defaultdict(set)
        self._by_arg: Dict[str, Dict[Tuple[int, Any], Set[FactTuple]]] = defaultdict(
            lambda: defaultdict(set)
        )

    def add(self, predicate: str, values: FactTuple) -> bool:
        """Add a fact; True when it was new."""
        bucket = self._facts[predicate]
        if values in bucket:
            return False
        bucket.add(values)
        if len(values) <= self.INDEXED_ARITY:
            index = self._by_arg[predicate]
            for position, value in enumerate(values):
                index[(position, value)].add(values)
        return True

    def facts_at(self, predicate: str, position: int, value: Any) -> Set[FactTuple]:
        """Facts of *predicate* whose argument *position* equals *value*."""
        index = self._by_arg.get(predicate)
        if index is None:
            return set()
        return index.get((position, value), set())

    def candidates(self, predicate: str, bound: "List[Tuple[int, Any]]") -> Set[FactTuple]:
        """The smallest indexed candidate set consistent with *bound*.

        *bound* lists (position, value) pairs known ground; the tightest
        single-position bucket is returned (remaining positions are
        checked by the caller's match).  Falls back to the full set.
        """
        best: Optional[Set[FactTuple]] = None
        index = self._by_arg.get(predicate)
        if index is not None:
            for position, value in bound:
                bucket = index.get((position, value))
                if bucket is None:
                    return set()
                if best is None or len(bucket) < len(best):
                    best = bucket
        if best is not None:
            return best
        return self._facts.get(predicate, set())

    def add_atom(self, atom: Atom) -> bool:
        if not atom.is_ground():
            raise EvaluationError(f"cannot store non-ground atom {atom}")
        return self.add(atom.predicate, tuple(c.value for c in atom.args))  # type: ignore[union-attr]

    def facts(self, predicate: str) -> Set[FactTuple]:
        return self._facts.get(predicate, set())

    def contains(self, predicate: str, values: FactTuple) -> bool:
        return values in self._facts.get(predicate, ())

    def predicates(self) -> Tuple[str, ...]:
        return tuple(self._facts)

    def merge(self, other: "FactStore") -> None:
        for predicate, tuples in other._facts.items():
            for values in tuples:
                self.add(predicate, values)

    def copy(self) -> "FactStore":
        clone = FactStore()
        for predicate, tuples in self._facts.items():
            for values in tuples:
                clone.add(predicate, values)
        return clone

    def __len__(self) -> int:
        return sum(len(tuples) for tuples in self._facts.values())

    def __iter__(self) -> Iterator[Tuple[str, FactTuple]]:
        for predicate, tuples in self._facts.items():
            for values in tuples:
                yield predicate, values


def iter_value_elements(descriptor: str, value: Any) -> Iterator[Tuple[str, Any]]:
    """Yield ``(flattened descriptor, scalar)`` pairs for one value.

    Scalars yield themselves; frozensets yield one pair per element;
    nested records (dicts — the §2 complex-attribute values) flatten to
    dotted descriptors (``author.name``), matching the Definition 4.1
    path descriptors O-terms use.  ``None`` elements are dropped.
    """
    if value is None:
        return
    if isinstance(value, frozenset):
        for element in value:
            yield from iter_value_elements(descriptor, element)
    elif isinstance(value, dict):
        for key, nested in value.items():
            yield from iter_value_elements(f"{descriptor}.{key}", nested)
    else:
        yield descriptor, value


def facts_from_database(database: "object") -> FactStore:
    """Compile an object database into a :class:`FactStore`.

    Emits, per instance of class ``C`` (direct extent):

    * ``inst$A(oid)`` for ``C`` and every ancestor ``A`` (extension
      semantics of typing O-terms);
    * ``att$C$a(oid, v)`` per attribute/aggregation value element;
    * ``is_a(child, parent)`` per declared link.

    Attribute facts are emitted for the *declaring* class and inherited
    upward as well, so a rule over a superclass O-term sees subclass
    objects — matching ``{<o:C>} ⊆ {<o':C'>}``.
    """
    store = FactStore()
    schema = database.schema  # type: ignore[attr-defined]
    for child, parent in schema.is_a_links():
        store.add(TypingOTerm.PREDICATE, (child, parent))
    for class_name in schema.class_names:
        lineage = [class_name] + sorted(schema.ancestors(class_name))
        for instance in database.direct_extent(class_name):  # type: ignore[attr-defined]
            oid = instance.oid
            for owner in lineage:
                store.add(inst_predicate(owner), (oid,))
            members: Dict[str, Any] = {}
            members.update(instance.attributes)
            members.update(instance.aggregations)
            for name, value in members.items():
                if value is None:
                    continue
                flattened = list(iter_value_elements(name, value))
                for owner in lineage:
                    owner_class = schema.effective_class(owner)
                    if owner == class_name or owner_class.has_member(name):
                        for descriptor, element in flattened:
                            store.add(att_predicate(owner, descriptor), (oid, element))
    return store


# ----------------------------------------------------------------------
# stratification
# ----------------------------------------------------------------------
def stratify(rules: Sequence[DatalogRule]) -> List[List[DatalogRule]]:
    """Partition *rules* into strata safe for negation.

    Uses the classic numbering relaxation: ``stratum(head) ≥
    stratum(positive body)`` and ``stratum(head) ≥ stratum(negative body)
    + 1``.  Raises :class:`EvaluationError` when no stratification exists
    (negation through recursion).
    """
    predicates = {rule.head.predicate for rule in rules}
    stratum: Dict[str, int] = {predicate: 0 for predicate in predicates}
    limit = len(predicates) + 1
    changed = True
    while changed:
        changed = False
        for rule in rules:
            head = rule.head.predicate
            for literal in rule.body:
                atom = literal.atom
                if not isinstance(atom, Atom):
                    continue  # comparisons and skolems don't constrain strata
                if atom.predicate not in stratum:
                    continue  # base predicate, stratum 0
                required = stratum[atom.predicate] + (0 if literal.positive else 1)
                if stratum[head] < required:
                    stratum[head] = required
                    changed = True
                    if stratum[head] > limit:
                        raise EvaluationError(
                            "program is not stratifiable: negation through "
                            f"recursion involving {head!r}"
                        )
    layers: Dict[int, List[DatalogRule]] = defaultdict(list)
    for rule in rules:
        layers[stratum[rule.head.predicate]].append(rule)
    return [layers[index] for index in sorted(layers)]


# ----------------------------------------------------------------------
# body matching
# ----------------------------------------------------------------------
def _match_pattern(
    pattern: Atom, values: FactTuple, substitution: Substitution
) -> Optional[Substitution]:
    current = substitution
    for arg, value in zip(pattern.args, values):
        resolved = current.apply(arg)
        if isinstance(resolved, Constant):
            if resolved.value != value:
                return None
        else:
            extended = current.bind(resolved, Constant(value))
            if extended is None:
                return None
            current = extended
    return current


def _ground_value(term: Term, substitution: Substitution) -> Tuple[bool, Any]:
    resolved = substitution.apply(term)
    if isinstance(resolved, Constant):
        return True, resolved.value
    return False, None


def _solve_body(
    body: Sequence[Literal],
    store: FactStore,
    substitution: Substitution,
    delta: Optional[FactStore] = None,
    delta_literal: Optional[Literal] = None,
) -> Iterator[Substitution]:
    """Yield substitutions satisfying *body* (order-optimized join).

    Cheap literals (ground comparisons, defining equalities, skolems and
    ground negations) are evaluated as soon as they become evaluable;
    among positive atoms the one with the smallest indexed candidate set
    is joined next.  When *delta_literal* is set (semi-naive), that
    specific literal reads the delta store instead of the full one.
    """
    pending: List[Literal] = list(body)
    if not pending:
        yield substitution
        return

    # Phase 1: an evaluable non-join literal costs nothing — do it now.
    for position, literal in enumerate(pending):
        atom = literal.atom
        if isinstance(atom, Comparison):
            ok_left, left = _ground_value(atom.left, substitution)
            ok_right, right = _ground_value(atom.right, substitution)
            if literal.positive and atom.op is ComparisonOp.EQ and ok_left != ok_right:
                rest = pending[:position] + pending[position + 1:]
                unbound = atom.right if ok_left else atom.left
                bound_value = left if ok_left else right
                resolved = substitution.apply(unbound)
                assert isinstance(resolved, Variable)
                extended = substitution.bind(resolved, Constant(bound_value))
                if extended is not None:
                    yield from _solve_body(rest, store, extended, delta, delta_literal)
                return
            if ok_left and ok_right:
                rest = pending[:position] + pending[position + 1:]
                grounded = Comparison(atom.op, Constant(left), Constant(right))
                if grounded.holds() == literal.positive:
                    yield from _solve_body(
                        rest, store, substitution, delta, delta_literal
                    )
                return
            continue
        if isinstance(atom, Skolem):
            arg_values = []
            evaluable = True
            for arg in atom.args:
                ok, value = _ground_value(arg, substitution)
                if not ok:
                    evaluable = False
                    break
                arg_values.append(value)
            if not evaluable:
                continue
            rest = pending[:position] + pending[position + 1:]
            token = ("sk", atom.tag) + tuple(arg_values)
            resolved = substitution.apply(atom.result)
            if isinstance(resolved, Constant):
                if resolved.value == token:
                    yield from _solve_body(
                        rest, store, substitution, delta, delta_literal
                    )
                return
            extended = substitution.bind(resolved, Constant(token))
            if extended is not None:
                yield from _solve_body(rest, store, extended, delta, delta_literal)
            return
        if not literal.positive and isinstance(atom, Atom):
            ground = []
            evaluable = True
            for arg in atom.args:
                ok, value = _ground_value(arg, substitution)
                if not ok:
                    evaluable = False
                    break
                ground.append(value)
            if not evaluable:
                continue
            rest = pending[:position] + pending[position + 1:]
            if not store.contains(atom.predicate, tuple(ground)):
                yield from _solve_body(rest, store, substitution, delta, delta_literal)
            return

    # Phase 2: join the most selective positive atom.
    best_position = -1
    best_candidates: Optional[Set[FactTuple]] = None
    for position, literal in enumerate(pending):
        atom = literal.atom
        if not (literal.positive and isinstance(atom, Atom)):
            continue
        source = delta if literal is delta_literal else store
        assert source is not None
        bound: List[Tuple[int, Any]] = []
        for argument_position, arg in enumerate(atom.args):
            resolved = substitution.apply(arg)
            if isinstance(resolved, Constant):
                bound.append((argument_position, resolved.value))
        candidates = source.candidates(atom.predicate, bound)
        if best_candidates is None or len(candidates) < len(best_candidates):
            best_position = position
            best_candidates = candidates
            if not candidates:
                break
    if best_candidates is None:
        raise EvaluationError(
            "body cannot be evaluated — unsafe rule slipped through: "
            + ", ".join(str(literal) for literal in body)
        )
    literal = pending[best_position]
    atom = literal.atom
    assert isinstance(atom, Atom)
    rest = pending[:best_position] + pending[best_position + 1:]
    for values in best_candidates:
        if len(values) != atom.arity:
            continue
        extended = _match_pattern(atom, values, substitution)
        if extended is not None:
            yield from _solve_body(rest, store, extended, delta, delta_literal)


def _derive(
    rule: DatalogRule,
    store: FactStore,
    delta: Optional[FactStore],
    delta_literal: Optional[Literal],
) -> List[Atom]:
    derived: List[Atom] = []
    for substitution in _solve_body(rule.body, store, EMPTY, delta, delta_literal):
        head = rule.head.substitute(substitution)
        if not head.is_ground():
            raise EvaluationError(f"derived non-ground head {head} from {rule}")
        derived.append(head)
    return derived


def evaluate(
    rules: Iterable[DatalogRule], base: FactStore, max_iterations: int = 100_000
) -> FactStore:
    """Materialize all consequences of *rules* over *base* facts.

    Semi-naive iteration within each stratum: after the first round only
    rule instantiations touching the previous round's new facts fire.
    Returns a new store containing base plus derived facts.
    """
    store = base.copy()
    for layer in stratify(list(rules)):
        # Round 0: full evaluation of the layer.
        delta = FactStore()
        for rule in layer:
            for atom in _derive(rule, store, None, None):
                values = tuple(c.value for c in atom.args)  # type: ignore[union-attr]
                if store.add(atom.predicate, values):
                    delta.add(atom.predicate, values)
        iterations = 0
        while len(delta):
            iterations += 1
            if iterations > max_iterations:
                raise EvaluationError("evaluation did not converge")
            new_delta = FactStore()
            delta_predicates = set(delta.predicates())
            for rule in layer:
                for literal in rule.body:
                    if not (literal.positive and isinstance(literal.atom, Atom)):
                        continue
                    if literal.atom.predicate not in delta_predicates:
                        continue  # this literal cannot touch new facts
                    for atom in _derive(rule, store, delta, literal):
                        values = tuple(c.value for c in atom.args)  # type: ignore[union-attr]
                        if store.add(atom.predicate, values):
                            new_delta.add(atom.predicate, values)
            delta = new_delta
    return store


class QueryEngine:
    """Conjunctive queries over a rule program and base facts.

    >>> engine = QueryEngine(rules, store)
    >>> engine.ask(Atom.of("uncle", "John", "?y"))
    [{'y': 'Bill'}]

    Materialization happens once, lazily, and is reused across queries.
    """

    def __init__(self, rules: Iterable[Rule], base: FactStore) -> None:
        self._rules = compile_rules(rules)
        self._base = base
        self._materialized: Optional[FactStore] = None

    @property
    def materialized(self) -> FactStore:
        if self._materialized is None:
            self._materialized = evaluate(self._rules, self._base)
        return self._materialized

    def invalidate(self) -> None:
        """Drop the materialization (call after base facts change)."""
        self._materialized = None

    def ask(self, *goals: Atom) -> List[Dict[str, Any]]:
        """Answers to the conjunction of *goals* as variable bindings."""
        literals = [Literal(goal) for goal in goals]
        answers: List[Dict[str, Any]] = []
        seen: Set[Tuple[Tuple[str, Any], ...]] = set()
        variables: List[Variable] = []
        for goal in goals:
            for variable in goal.args:
                if isinstance(variable, Variable) and variable not in variables:
                    variables.append(variable)
        for substitution in _solve_body(literals, self.materialized, EMPTY):
            binding = {}
            for variable in variables:
                resolved = substitution.apply(variable)
                binding[variable.name] = (
                    resolved.value if isinstance(resolved, Constant) else None
                )
            key = tuple(sorted(binding.items(), key=lambda kv: kv[0]))
            if key not in seen:
                seen.add(key)
                answers.append(binding)
        return answers

    def holds(self, goal: Atom) -> bool:
        """True when the ground *goal* is derivable."""
        if not goal.is_ground():
            raise EvaluationError(f"holds() needs a ground goal, got {goal}")
        values = tuple(c.value for c in goal.args)  # type: ignore[union-attr]
        return self.materialized.contains(goal.predicate, values)
