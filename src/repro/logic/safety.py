"""Safety / range-restriction / allowedness checks for generated rules.

§5 closes with: "As in a deductive database, the generated rules should
be checked to see whether they are *well-defined*, *safe*, or *domain
independent* and *allowed* in the presence of negated body predicates
[8]."  This module implements the standard syntactic conditions (Das,
*Deductive Databases and Logic Programming*):

* **range restriction (safety)** — every head variable occurs in a
  positive, non-comparison body literal, or is reachable from one through
  equality comparisons;
* **allowedness** — every variable of a negative literal also occurs in a
  positive literal (so negation-as-failure is evaluable);
* **comparison groundedness** — every variable of an inequality
  comparison is limited by a positive literal (equalities may *define* a
  variable from a limited one instead).

:func:`check_rule` raises :class:`~repro.errors.SafetyError` with the
offending variables; :func:`is_safe` is the boolean form.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set

from ..errors import SafetyError
from .atoms import Comparison, ComparisonOp
from .rules import DatalogRule, Rule
from .terms import Variable


def _limited_variables(rule: DatalogRule) -> Set[Variable]:
    """Variables limited by positive literals, closed under equalities.

    A variable is *limited* when it appears in a positive non-comparison
    literal, or in an ``=`` comparison whose other side is a constant or
    an already-limited variable.  Closure iterates to a fixpoint because
    equality chains (``x = y, y = z``) propagate limits.
    """
    limited: Set[Variable] = set()
    for literal in rule.positive_body():
        limited |= literal.variables()
    skolems = [literal.atom for literal in rule.skolems()]
    equalities = [
        literal.atom
        for literal in rule.comparisons()
        if literal.positive and isinstance(literal.atom, Comparison)
        and literal.atom.op in (ComparisonOp.EQ, ComparisonOp.IN)
    ]
    changed = True
    while changed:
        changed = False
        for skolem in skolems:
            arg_variables = [a for a in skolem.args if isinstance(a, Variable)]
            if all(v in limited for v in arg_variables):
                if isinstance(skolem.result, Variable) and skolem.result not in limited:
                    limited.add(skolem.result)
                    changed = True
        for comparison in equalities:
            sides = [comparison.left, comparison.right]
            variables = [s for s in sides if isinstance(s, Variable)]
            grounded = [
                s for s in sides if not isinstance(s, Variable) or s in limited
            ]
            if len(grounded) >= 1 and len(variables) >= 1:
                for variable in variables:
                    if variable not in limited:
                        limited.add(variable)
                        changed = True
    return limited


def violations(rule: DatalogRule) -> List[str]:
    """Human-readable safety violations of *rule* (empty when safe)."""
    problems: List[str] = []
    limited = _limited_variables(rule)

    unlimited_head = sorted(
        v.name for v in rule.head.variables() if v not in limited
    )
    if unlimited_head:
        problems.append(
            f"head variables not range-restricted: {', '.join(unlimited_head)}"
        )

    for literal in rule.negative_body():
        unlimited = sorted(v.name for v in literal.variables() if v not in limited)
        if unlimited:
            problems.append(
                f"negative literal {literal} uses unlimited variables: "
                + ", ".join(unlimited)
            )

    for literal in rule.comparisons():
        atom = literal.atom
        assert isinstance(atom, Comparison)
        if atom.op in (ComparisonOp.EQ, ComparisonOp.IN) and literal.positive:
            # Equalities may define one side; _limited_variables handled them.
            remaining = sorted(
                v.name for v in atom.variables() if v not in limited
            )
            if remaining:
                problems.append(
                    f"comparison {atom} cannot ground variables: "
                    + ", ".join(remaining)
                )
        else:
            unlimited = sorted(v.name for v in atom.variables() if v not in limited)
            if unlimited:
                problems.append(
                    f"comparison {atom} tests unlimited variables: "
                    + ", ".join(unlimited)
                )
    return problems


def is_safe(rule: DatalogRule) -> bool:
    """True when *rule* is range-restricted and allowed."""
    return not violations(rule)


def check_rule(rule: DatalogRule) -> None:
    """Raise :class:`SafetyError` when *rule* is unsafe."""
    problems = violations(rule)
    if problems:
        raise SafetyError(f"rule {rule} is unsafe: " + "; ".join(problems))


def check_surface_rule(rule: Rule) -> None:
    """Check every datalog rule compiled from a surface rule."""
    for compiled in rule.compile():
        check_rule(compiled)


def check_all(rules: Iterable[Rule]) -> List[str]:
    """Collect violations across *rules*; empty list means all safe."""
    problems: List[str] = []
    for rule in rules:
        for compiled in rule.compile():
            for problem in violations(compiled):
                problems.append(f"{rule}: {problem}")
    return problems


def head_only_variables(rule: DatalogRule) -> FrozenSet[Variable]:
    """Variables occurring in the head but nowhere in the body."""
    body_variables: Set[Variable] = set()
    for literal in rule.body:
        body_variables |= literal.variables()
    return frozenset(v for v in rule.head.variables() if v not in body_variables)
