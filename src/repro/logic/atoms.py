"""Atoms and literals: normal predicates and comparison predicates (§2, §5).

The paper's rule bodies mix O-terms with "normal predicates of the
first-order logic" — e.g. ``y2 = car-name1`` in Example 10, or the
``parent•Pssn# ∈ brother•brothers`` value correspondences once compiled.
This module provides:

* :class:`Atom` — ``p(t1, ..., tn)`` over ordinary predicate symbols,
* :class:`Comparison` — built-in atoms for the paper's operator set
  ``{=, ≠, <, ≤, >, ≥}`` plus set membership ``∈`` (which the value
  correspondences of §4.1 need),
* :class:`Literal` — an atom or comparison with a sign, supporting the
  negated body predicates of Principles 3 and 4.
"""

from __future__ import annotations

import dataclasses
import enum
import operator
from typing import Any, Callable, FrozenSet, Iterable, Tuple, Union

from ..errors import LogicError
from .reverse_substitution import ReverseSubstitution
from .substitution import Substitution
from .terms import Constant, Term, Variable, make_term


@dataclasses.dataclass(frozen=True)
class Atom:
    """An ordinary predicate atom ``predicate(args...)``."""

    predicate: str
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.predicate:
            raise LogicError("predicate name must be non-empty")
        for arg in self.args:
            if not isinstance(arg, (Variable, Constant)):
                raise LogicError(f"atom argument must be a term, got {arg!r}")

    @classmethod
    def of(cls, predicate: str, *args: Any) -> "Atom":
        """Build with automatic term lifting (``"?x"`` becomes a variable)."""
        return cls(predicate, tuple(make_term(a) for a in args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(a for a in self.args if isinstance(a, Variable))

    def is_ground(self) -> bool:
        return all(isinstance(a, Constant) for a in self.args)

    def substitute(self, substitution: Substitution) -> "Atom":
        return Atom(self.predicate, substitution.apply_all(self.args))

    def apply_reverse(self, reverse: ReverseSubstitution) -> "Atom":
        return Atom(self.predicate, reverse.apply_terms(self.args))

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(map(str, self.args))})"


class ComparisonOp(enum.Enum):
    """Built-in comparison operators (τ of §4.1 plus membership)."""

    EQ = "="
    NE = "≠"
    LT = "<"
    LE = "≤"
    GT = ">"
    GE = "≥"
    IN = "∈"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_EVALUATORS: dict = {
    ComparisonOp.EQ: operator.eq,
    ComparisonOp.NE: operator.ne,
    ComparisonOp.LT: operator.lt,
    ComparisonOp.LE: operator.le,
    ComparisonOp.GT: operator.gt,
    ComparisonOp.GE: operator.ge,
    ComparisonOp.IN: lambda left, right: _membership(left, right),
}


def _membership(left: Any, right: Any) -> bool:
    if isinstance(right, (set, frozenset, list, tuple)):
        return left in right
    # Scalar right-hand side degrades to equality, which lets ``∈`` be
    # used uniformly even when a source models a set as a single value.
    return left == right


@dataclasses.dataclass(frozen=True)
class Comparison:
    """A built-in atom ``left τ right``; evaluable once ground."""

    op: ComparisonOp
    left: Term
    right: Term

    @classmethod
    def of(cls, left: Any, op: Union[str, ComparisonOp], right: Any) -> "Comparison":
        if isinstance(op, str):
            aliases = {"==": "=", "!=": "≠", "<=": "≤", ">=": "≥", "in": "∈"}
            op = ComparisonOp(aliases.get(op, op))
        return cls(op, make_term(left), make_term(right))

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Variable))

    def is_ground(self) -> bool:
        return isinstance(self.left, Constant) and isinstance(self.right, Constant)

    def substitute(self, substitution: Substitution) -> "Comparison":
        return Comparison(
            self.op, substitution.apply(self.left), substitution.apply(self.right)
        )

    def apply_reverse(self, reverse: ReverseSubstitution) -> "Comparison":
        return Comparison(
            self.op, reverse.replace(self.left), reverse.replace(self.right)
        )

    def holds(self) -> bool:
        """Evaluate; raises :class:`LogicError` when not ground."""
        if not self.is_ground():
            raise LogicError(f"cannot evaluate non-ground comparison {self}")
        evaluate: Callable[[Any, Any], bool] = _EVALUATORS[self.op]
        try:
            return bool(evaluate(self.left.value, self.right.value))  # type: ignore[union-attr]
        except TypeError:
            # Incomparable values (e.g. str < int) simply fail the test
            # rather than crashing rule evaluation.
            return False

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclasses.dataclass(frozen=True)
class Skolem:
    """A computed atom binding *result* to a deterministic token.

    Derivation rules (Principle 5) often have a *virtual* head object —
    the ``o1`` of the uncle rule exists in no local database.  At
    evaluation time such objects need identities; a ``Skolem`` literal
    binds ``result := ("sk", tag, v1, ..., vn)`` once its *args* are
    ground, giving each distinct argument combination one stable virtual
    OID.  :meth:`repro.logic.rules.Rule.compile` inserts these
    automatically; they never appear in surface rules.
    """

    result: Term
    tag: str
    args: Tuple[Term, ...]

    def variables(self) -> FrozenSet[Variable]:
        collected = {t for t in self.args if isinstance(t, Variable)}
        if isinstance(self.result, Variable):
            collected.add(self.result)
        return frozenset(collected)

    def is_ground(self) -> bool:
        return isinstance(self.result, Constant) and all(
            isinstance(a, Constant) for a in self.args
        )

    def substitute(self, substitution: Substitution) -> "Skolem":
        return Skolem(
            substitution.apply(self.result),
            self.tag,
            substitution.apply_all(self.args),
        )

    def apply_reverse(self, reverse: ReverseSubstitution) -> "Skolem":
        return Skolem(
            reverse.replace(self.result), self.tag, reverse.apply_terms(self.args)
        )

    def token(self) -> Tuple[Any, ...]:
        """The value bound to *result*; args must be ground."""
        if not all(isinstance(a, Constant) for a in self.args):
            raise LogicError(f"skolem args not ground in {self}")
        return ("sk", self.tag) + tuple(a.value for a in self.args)  # type: ignore[union-attr]

    def __str__(self) -> str:
        inside = ", ".join(map(str, self.args))
        return f"{self.result} := sk[{self.tag}]({inside})"


BodyAtom = Union[Atom, Comparison, Skolem]


@dataclasses.dataclass(frozen=True)
class Literal:
    """A signed body element: an atom/comparison, possibly negated."""

    atom: BodyAtom
    positive: bool = True

    def variables(self) -> FrozenSet[Variable]:
        return self.atom.variables()

    def substitute(self, substitution: Substitution) -> "Literal":
        return Literal(self.atom.substitute(substitution), self.positive)

    def apply_reverse(self, reverse: ReverseSubstitution) -> "Literal":
        return Literal(self.atom.apply_reverse(reverse), self.positive)

    @property
    def is_comparison(self) -> bool:
        return isinstance(self.atom, Comparison)

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"¬{self.atom}"


def negated(atom: BodyAtom) -> Literal:
    """Shorthand for a negative literal."""
    return Literal(atom, positive=False)


def lits(atoms: Iterable[BodyAtom]) -> Tuple[Literal, ...]:
    """Wrap plain atoms as positive literals."""
    return tuple(a if isinstance(a, Literal) else Literal(a) for a in atoms)
