"""First-order terms: variables and constants (§2, §5).

The paper's rules are "simply clauses of the first-order logic" over
O-terms and normal predicates, with variables allowed not only for
attribute values but also for object identifiers, class names, attribute
names and aggregation-function names (§2).  Both kinds of occurrence are
ordinary :class:`Variable` terms here; *where* a variable occurs (value
position vs. name position) is decided by the containing O-term.

Constants wrap arbitrary hashable Python values so OIDs, strings,
numbers and dates all flow through the same machinery.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Union

from ..errors import LogicError


@dataclasses.dataclass(frozen=True)
class Variable:
    """A logical variable, identified by name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise LogicError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclasses.dataclass(frozen=True)
class Constant:
    """A ground term wrapping a hashable Python value."""

    value: Any

    def __post_init__(self) -> None:
        try:
            hash(self.value)
        except TypeError:
            raise LogicError(
                f"constants must wrap hashable values, got {self.value!r}"
            ) from None

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


Term = Union[Variable, Constant]


def make_term(value: Any) -> Term:
    """Lift *value* into a term.

    Existing terms pass through; strings beginning with ``?`` become
    variables (the query-syntax convention used across the library);
    everything else becomes a constant.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value.startswith("?") and len(value) > 1:
        return Variable(value[1:])
    return Constant(value)


def is_ground(term: Term) -> bool:
    """True when *term* contains no variable (terms are flat here)."""
    return isinstance(term, Constant)


class VariableFactory:
    """Produces fresh, collision-free variables.

    The derivation principle (Principle 5) marks each connected subgraph
    of an assertion graph with a *different* variable x1, x2, ...; this
    factory supplies them and guarantees freshness across one integration
    run.
    """

    def __init__(self, prefix: str = "x") -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)

    def fresh(self) -> Variable:
        """The next unused variable (x1, x2, ...)."""
        return Variable(f"{self._prefix}{next(self._counter)}")

    def fresh_named(self, hint: str) -> Variable:
        """A fresh variable whose name embeds *hint* for readability."""
        return Variable(f"{hint}_{next(self._counter)}")
