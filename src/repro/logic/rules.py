"""Derivation rules over O-terms and normal predicates (§2, §5).

A rule is an implicitly universally quantified statement::

    γ1 & γ2 ... & γi ⇐ τ1 & τ2 ... & τk

where heads and body elements are O-terms or normal predicates (§2).
:class:`Rule` keeps that surface form — the form the integration
principles construct and the examples print — and compiles to plain
datalog rules (:class:`DatalogRule`) for the evaluation engine:
conjunctive heads split into one datalog rule per head atom, and O-terms
flatten via :meth:`~repro.logic.oterms.OTerm.compile`.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, List, Sequence, Tuple, Union

from ..errors import LogicError
from .atoms import Atom, Comparison, Literal, Skolem
from .oterms import OTerm, TypingOTerm
from .reverse_substitution import ReverseSubstitution
from .substitution import Substitution
from .terms import Variable

HeadElement = Union[OTerm, TypingOTerm, Atom]
BodyElement = Union[OTerm, TypingOTerm, Atom, Comparison]


@dataclasses.dataclass(frozen=True)
class BodyItem:
    """A body element with a sign (¬ supported per Principles 3-4)."""

    element: BodyElement
    positive: bool = True

    def variables(self) -> FrozenSet[Variable]:
        return _variables_of(self.element)

    def __str__(self) -> str:
        text = str(self.element)
        return text if self.positive else f"¬{text}"


def _variables_of(element: Union[HeadElement, BodyElement]) -> FrozenSet[Variable]:
    if isinstance(element, (OTerm, Atom, Comparison)):
        return element.variables()
    if isinstance(element, TypingOTerm):
        return frozenset(
            part for part in (element.subclass, element.superclass)
            if isinstance(part, Variable)
        )
    raise LogicError(f"not a rule element: {element!r}")  # pragma: no cover


@dataclasses.dataclass(frozen=True)
class Rule:
    """A surface-form derivation rule ``heads ⇐ body``."""

    heads: Tuple[HeadElement, ...]
    body: Tuple[BodyItem, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.heads:
            raise LogicError("a rule needs at least one head element")
        for head in self.heads:
            if isinstance(head, Comparison):
                raise LogicError("comparisons may not appear in rule heads")

    @classmethod
    def of(
        cls,
        heads: Union[HeadElement, Sequence[HeadElement]],
        body: Iterable[Union[BodyElement, BodyItem]] = (),
        name: str = "",
    ) -> "Rule":
        """Build from single or multiple heads and a mixed body iterable."""
        if isinstance(heads, (OTerm, TypingOTerm, Atom, Comparison)):
            head_tuple: Tuple[HeadElement, ...] = (heads,)  # type: ignore[assignment]
        else:
            head_tuple = tuple(heads)
        body_items = tuple(
            item if isinstance(item, BodyItem) else BodyItem(item) for item in body
        )
        return cls(head_tuple, body_items, name)

    # ------------------------------------------------------------------
    def variables(self) -> FrozenSet[Variable]:
        collected = set()
        for head in self.heads:
            collected |= _variables_of(head)
        for item in self.body:
            collected |= item.variables()
        return frozenset(collected)

    def head_variables(self) -> FrozenSet[Variable]:
        collected = set()
        for head in self.heads:
            collected |= _variables_of(head)
        return frozenset(collected)

    def is_fact(self) -> bool:
        return not self.body

    def apply_reverse(self, reverse: ReverseSubstitution) -> "Rule":
        """Definition 5.2 lifted over the whole rule."""
        def transform(element: BodyElement) -> BodyElement:
            if isinstance(element, (OTerm, Atom, Comparison)):
                return element.apply_reverse(reverse)
            return element  # TypingOTerm carries no value terms

        new_heads = tuple(transform(head) for head in self.heads)  # type: ignore[arg-type]
        new_body = tuple(
            BodyItem(transform(item.element), item.positive) for item in self.body
        )
        return Rule(new_heads, new_body, self.name)

    # ------------------------------------------------------------------
    # compilation to datalog
    # ------------------------------------------------------------------
    def compile(self) -> List["DatalogRule"]:
        """One datalog rule per flattened head atom.

        A head O-term with bindings produces its membership atom *and*
        one attribute atom per binding, each defined by the same body —
        deriving a virtual object means deriving its membership and its
        attribute values.
        """
        body_literals: List[Literal] = []
        for item in self.body:
            element = item.element
            if isinstance(element, OTerm):
                if item.positive:
                    body_literals.extend(Literal(a) for a in element.compile())
                else:
                    body_literals.extend(element.compile_negated())
            elif isinstance(element, TypingOTerm):
                body_literals.append(Literal(element.compile(), item.positive))
            elif isinstance(element, (Atom, Comparison)):
                body_literals.append(Literal(element, item.positive))
            else:  # pragma: no cover - defensive
                raise LogicError(f"unsupported body element {element!r}")

        body_variables = set()
        for literal in body_literals:
            body_variables |= literal.variables()

        compiled: List[DatalogRule] = []
        for head in self.heads:
            extra: List[Literal] = []
            if isinstance(head, OTerm):
                head_atoms = head.compile()
                # Skolemize a virtual head object: an object variable
                # absent from the body names a derived object that exists
                # in no local database (e.g. the uncle rule's o1); bind it
                # to a deterministic token of the head's value variables.
                obj = head.object_term
                if isinstance(obj, Variable) and obj not in body_variables:
                    args = tuple(
                        sorted(
                            (
                                term
                                for _, term in head.bindings
                                if isinstance(term, Variable)
                            ),
                            key=lambda v: v.name,
                        )
                    )
                    extra.append(
                        Literal(Skolem(obj, str(head.class_name), args))
                    )
            elif isinstance(head, TypingOTerm):
                head_atoms = [head.compile()]
            else:
                head_atoms = [head]
            for head_atom in head_atoms:
                compiled.append(
                    DatalogRule(
                        head_atom, tuple(body_literals) + tuple(extra), self.name
                    )
                )
        return compiled

    def __str__(self) -> str:
        head_text = " & ".join(str(head) for head in self.heads)
        if not self.body:
            return f"{head_text}."
        body_text = ", ".join(str(item) for item in self.body)
        return f"{head_text} ⇐ {body_text}"


@dataclasses.dataclass(frozen=True)
class DatalogRule:
    """A flat rule ``head ⇐ literals`` ready for the engine."""

    head: Atom
    body: Tuple[Literal, ...]
    name: str = ""

    def variables(self) -> FrozenSet[Variable]:
        collected = set(self.head.variables())
        for literal in self.body:
            collected |= literal.variables()
        return frozenset(collected)

    def substitute(self, substitution: Substitution) -> "DatalogRule":
        return DatalogRule(
            self.head.substitute(substitution),
            tuple(literal.substitute(substitution) for literal in self.body),
            self.name,
        )

    def rename_apart(self, suffix: str) -> "DatalogRule":
        """Rename every variable with *suffix* to avoid capture."""
        mapping = Substitution(
            {v: Variable(f"{v.name}#{suffix}") for v in self.variables()}
        )
        return self.substitute(mapping)

    def positive_body(self) -> Tuple[Literal, ...]:
        return tuple(
            lit for lit in self.body if lit.positive and isinstance(lit.atom, Atom)
        )

    def negative_body(self) -> Tuple[Literal, ...]:
        return tuple(lit for lit in self.body if not lit.positive)

    def comparisons(self) -> Tuple[Literal, ...]:
        return tuple(lit for lit in self.body if lit.is_comparison)

    def skolems(self) -> Tuple[Literal, ...]:
        return tuple(lit for lit in self.body if isinstance(lit.atom, Skolem))

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} ⇐ {', '.join(str(lit) for lit in self.body)}"


def compile_rules(rules: Iterable[Rule]) -> List[DatalogRule]:
    """Flatten a collection of surface rules for the engine."""
    compiled: List[DatalogRule] = []
    for rule in rules:
        compiled.extend(rule.compile())
    return compiled
