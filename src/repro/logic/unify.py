"""Unification of terms, atoms and O-terms.

Terms here are flat (variables and constants only), so unification is
simple binding-consistency checking through a
:class:`~repro.logic.substitution.Substitution`.  O-term unification
additionally matches class names and attribute descriptors, supporting
the §2 extension where class/attribute names may themselves be variables
— that is what lets a single rule range over the schematic-discrepancy
examples before decomposition.
"""

from __future__ import annotations

from typing import Optional

from .atoms import Atom
from .oterms import OTerm
from .substitution import EMPTY, Substitution
from .terms import Constant, Term, Variable


def unify_terms(
    left: Term, right: Term, substitution: Substitution = EMPTY
) -> Optional[Substitution]:
    """Unify two terms under *substitution*; None on failure."""
    left = substitution.apply(left)
    right = substitution.apply(right)
    if left == right:
        return substitution
    if isinstance(left, Variable):
        return substitution.bind(left, right)
    if isinstance(right, Variable):
        return substitution.bind(right, left)
    return None  # two distinct constants


def unify_atoms(
    left: Atom, right: Atom, substitution: Substitution = EMPTY
) -> Optional[Substitution]:
    """Unify two atoms: same predicate, same arity, unifiable args."""
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    current: Optional[Substitution] = substitution
    for left_arg, right_arg in zip(left.args, right.args):
        current = unify_terms(left_arg, right_arg, current)
        if current is None:
            return None
    return current


def match_atom(pattern: Atom, fact: Atom) -> Optional[Substitution]:
    """One-way match of *pattern* against a ground *fact*."""
    if not fact.is_ground():
        raise ValueError(f"match_atom requires a ground fact, got {fact}")
    return unify_atoms(pattern, fact)


def _unify_names(
    left, right, substitution: Substitution
) -> Optional[Substitution]:
    """Unify class names / descriptors that may be str or Variable."""
    left_term: Term = left if isinstance(left, Variable) else Constant(left)
    right_term: Term = right if isinstance(right, Variable) else Constant(right)
    return unify_terms(left_term, right_term, substitution)


def unify_oterms(
    pattern: OTerm, ground: OTerm, substitution: Substitution = EMPTY
) -> Optional[Substitution]:
    """Match an O-term *pattern* against a ground O-term.

    The pattern may bind only a subset of the ground term's descriptors
    (O-terms are open records: ``<o: Empl | e_name: x>`` matches any
    employee).  Descriptor variables match any descriptor of the ground
    term, trying alternatives is the caller's job — here the *first*
    consistent descriptor wins, which suffices because ground O-terms
    bind each descriptor once.
    """
    current = _unify_names(pattern.class_name, ground.class_name, substitution)
    if current is None:
        return None
    current = unify_terms(pattern.object_term, ground.object_term, current)
    if current is None:
        return None
    for descriptor, term in pattern.bindings:
        if isinstance(descriptor, Variable):
            matched = None
            for ground_descriptor, ground_term in ground.bindings:
                attempt = _unify_names(descriptor, ground_descriptor, current)
                if attempt is None:
                    continue
                attempt = unify_terms(term, ground_term, attempt)
                if attempt is not None:
                    matched = attempt
                    break
            if matched is None:
                return None
            current = matched
        else:
            ground_term = ground.binding(descriptor)
            if ground_term is None:
                return None
            current = unify_terms(term, ground_term, current)
            if current is None:
                return None
    return current
