"""Global object identifiers (§3).

Every datum of a component database must be uniquely identifiable in the
federation without being moved.  The paper's scheme assigns each tuple of
a (transformed) relation an OID of the form::

    <FSM-agent name>.<database system name>.<database name>.<relation name>.<integer>

e.g. ``FSMagent1.informix.PatientDB.patient-records.5`` for the fifth
tuple of relation ``patient-records``, and prefixes attribute values with
the analogous five-part attribute path.  :class:`OID` models the tuple
identifier; :func:`attribute_ref` produces the attribute prefix.

Component names may not contain the separator ``.`` — the paper uses
plain concatenation, which would be ambiguous otherwise; we validate
instead of guessing.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterator, Tuple

from ..errors import OIDError

SEPARATOR = "."

_FIELDS = ("agent", "system", "database", "relation")


def _check_component(field: str, value: str) -> None:
    if not value:
        raise OIDError(f"OID component {field!r} must be non-empty")
    if SEPARATOR in value:
        raise OIDError(
            f"OID component {field!r} may not contain {SEPARATOR!r}: {value!r}"
        )


@dataclasses.dataclass(frozen=True, order=True)
class OID:
    """A federation-wide object identifier.

    Attributes mirror the five dotted parts of the paper's scheme:
    *agent*, *system*, *database*, *relation* and the tuple *number*.
    """

    agent: str
    system: str
    database: str
    relation: str
    number: int

    def __post_init__(self) -> None:
        for field in _FIELDS:
            _check_component(field, getattr(self, field))
        if self.number < 0:
            raise OIDError(f"OID number must be non-negative, got {self.number}")

    def __str__(self) -> str:
        return SEPARATOR.join(
            (self.agent, self.system, self.database, self.relation, str(self.number))
        )

    @classmethod
    def parse(cls, text: str) -> "OID":
        """Parse the dotted string form back into an :class:`OID`."""
        parts = text.split(SEPARATOR)
        if len(parts) != 5:
            raise OIDError(
                f"an OID has exactly 5 dotted components, got {len(parts)}: {text!r}"
            )
        agent, system, database, relation, number_text = parts
        try:
            number = int(number_text)
        except ValueError:
            raise OIDError(f"OID number must be an integer, got {number_text!r}") from None
        return cls(agent, system, database, relation, number)

    def attribute_ref(self, attribute: str) -> str:
        """The implicit prefix string for *attribute* values (§3).

        ``<agent>.<system>.<database>.<relation>.<attribute>`` — note the
        paper replaces the tuple number with the attribute name here.
        """
        _check_component("attribute", attribute)
        return SEPARATOR.join(
            (self.agent, self.system, self.database, self.relation, attribute)
        )

    def same_source(self, other: "OID") -> bool:
        """True when both OIDs come from the same relation of the same DB."""
        return (
            self.agent == other.agent
            and self.system == other.system
            and self.database == other.database
            and self.relation == other.relation
        )


class OIDGenerator:
    """Numbers tuples "in the normal way" per relation (§3).

    One generator is owned by each local store; it hands out
    monotonically increasing numbers per relation so OIDs stay stable
    across the lifetime of a federation session.
    """

    def __init__(self, agent: str, system: str, database: str) -> None:
        for field, value in zip(("agent", "system", "database"), (agent, system, database)):
            _check_component(field, value)
        self.agent = agent
        self.system = system
        self.database = database
        self._counters: Dict[str, Iterator[int]] = {}

    def next_oid(self, relation: str) -> OID:
        """The next OID for a tuple of *relation* (numbers start at 1)."""
        _check_component("relation", relation)
        counter = self._counters.setdefault(relation, itertools.count(1))
        return OID(self.agent, self.system, self.database, relation, next(counter))

    def issued(self) -> Tuple[str, ...]:
        """Relations for which at least one OID was issued."""
        return tuple(self._counters)
