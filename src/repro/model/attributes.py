"""Attribute declarations of the object model (§2).

An attribute of a class has a name and a type.  Following the paper's
type definition::

    type(C) = <a1: type1, ..., ak: typek, Agg1 with cc1, ...>

``type_i`` is either a primitive :class:`~repro.model.datatypes.DataType`,
a reference to another class of the schema (a *complex* attribute, e.g.
``author: <name: string, birthday: date>`` in the Book/Author examples),
or a set of either (multi-valued, e.g. ``interests: {string}``).

Complex attributes are what make the paper's *paths* (Definition 4.1)
non-trivial: ``Book.author.birthday`` walks through the class-typed
attribute ``author``.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from ..errors import ModelError
from .datatypes import DataType


@dataclasses.dataclass(frozen=True)
class ClassType:
    """An attribute type that refers to a class of the same schema.

    Only the class *name* is stored; resolution happens against the
    owning :class:`~repro.model.schema.Schema`, which lets schemas be
    declared in any order and serialized trivially.
    """

    class_name: str

    def __post_init__(self) -> None:
        if not self.class_name:
            raise ModelError("ClassType requires a non-empty class name")

    def __str__(self) -> str:
        return self.class_name


AttributeValueType = Union[DataType, ClassType]


@dataclasses.dataclass(frozen=True)
class Attribute:
    """A named attribute of a class.

    Parameters
    ----------
    name:
        Attribute name, unique within its class (shared with aggregation
        functions — the paper treats both as components of ``type(C)``).
    value_type:
        A :class:`DataType` for primitive attributes or a
        :class:`ClassType` for complex (nested) attributes.
    multivalued:
        True for set-valued attributes such as ``brothers: {string}``.
    """

    name: str
    value_type: AttributeValueType
    multivalued: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("attribute name must be non-empty")
        if not isinstance(self.value_type, (DataType, ClassType)):
            raise ModelError(
                f"attribute {self.name!r} has invalid type "
                f"{self.value_type!r}; expected DataType or ClassType"
            )

    @property
    def is_complex(self) -> bool:
        """True when the attribute's type is another class."""
        return isinstance(self.value_type, ClassType)

    @property
    def is_primitive(self) -> bool:
        """True when the attribute has one of the six primitive types."""
        return isinstance(self.value_type, DataType)

    def type_name(self) -> str:
        """The printable type, ``{...}``-wrapped when multivalued."""
        inner = str(self.value_type)
        return "{" + inner + "}" if self.multivalued else inner

    def __str__(self) -> str:
        return f"{self.name}: {self.type_name()}"


def string_attribute(name: str, multivalued: bool = False) -> Attribute:
    """Shorthand for the most common attribute kind in the paper."""
    return Attribute(name, DataType.STRING, multivalued=multivalued)


def integer_attribute(name: str, multivalued: bool = False) -> Attribute:
    """Shorthand for an integer attribute."""
    return Attribute(name, DataType.INTEGER, multivalued=multivalued)
