"""Class definitions of the object model (§2).

A class is the unit the integration principles operate on::

    type(C) = <a1: type1, ..., ak: typek, Agg1 with cc1, ..., Aggk with cck>

A :class:`ClassDef` holds named attributes, named aggregation functions
and the names of its direct superclasses (is-a parents).  Attribute and
aggregation namespaces are disjoint within one class, mirroring the
paper's single ``type(C)`` tuple, and declaration order is preserved so
integrated classes print in a stable, reviewable order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..errors import DuplicateDefinitionError, ModelError, UnknownAttributeError
from .aggregations import AggregationFunction, Cardinality
from .attributes import Attribute, ClassType
from .datatypes import DataType

Member = Union[Attribute, AggregationFunction]


class ClassDef:
    """A class of an object-oriented schema.

    Parameters
    ----------
    name:
        Class name, unique within its schema.
    attributes:
        Iterable of :class:`~repro.model.attributes.Attribute`.
    aggregations:
        Iterable of :class:`~repro.model.aggregations.AggregationFunction`.
    parents:
        Names of direct superclasses (``is_a(C, parent)`` typing O-terms).
    """

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute] = (),
        aggregations: Iterable[AggregationFunction] = (),
        parents: Iterable[str] = (),
    ) -> None:
        if not name:
            raise ModelError("class name must be non-empty")
        self.name = name
        self._attributes: Dict[str, Attribute] = {}
        self._aggregations: Dict[str, AggregationFunction] = {}
        self.parents: List[str] = []
        for attribute in attributes:
            self.add_attribute(attribute)
        for aggregation in aggregations:
            self.add_aggregation(aggregation)
        for parent in parents:
            self.add_parent(parent)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_attribute(self, attribute: Attribute) -> "ClassDef":
        """Add *attribute*; raises on any name already used in this class."""
        self._check_fresh(attribute.name)
        self._attributes[attribute.name] = attribute
        return self

    def add_aggregation(self, aggregation: AggregationFunction) -> "ClassDef":
        """Add *aggregation*; raises on any name already used in this class."""
        self._check_fresh(aggregation.name)
        self._aggregations[aggregation.name] = aggregation
        return self

    def add_parent(self, parent: str) -> "ClassDef":
        """Declare *parent* as a direct superclass (idempotent)."""
        if not parent:
            raise ModelError(f"class {self.name!r}: parent name must be non-empty")
        if parent == self.name:
            raise ModelError(f"class {self.name!r} cannot be its own parent")
        if parent not in self.parents:
            self.parents.append(parent)
        return self

    def _check_fresh(self, member_name: str) -> None:
        if member_name in self._attributes or member_name in self._aggregations:
            raise DuplicateDefinitionError(
                f"class {self.name!r} already defines {member_name!r}"
            )

    # ------------------------------------------------------------------
    # declarative shorthands used heavily by examples and tests
    # ------------------------------------------------------------------
    def attr(
        self,
        name: str,
        value_type: Union[DataType, ClassType, str] = DataType.STRING,
        multivalued: bool = False,
    ) -> "ClassDef":
        """Fluent shorthand: add an attribute and return ``self``.

        *value_type* may be a :class:`DataType`, a :class:`ClassType`, a
        primitive type name such as ``"string"``, or — when it names no
        primitive — a class name, which is wrapped in a :class:`ClassType`.
        """
        if isinstance(value_type, str):
            try:
                value_type = DataType.parse(value_type)
            except ValueError:
                value_type = ClassType(value_type)
        self.add_attribute(Attribute(name, value_type, multivalued=multivalued))
        return self

    def agg(
        self,
        name: str,
        range_class: str,
        cardinality: Union[Cardinality, str] = Cardinality.M_TO_N,
    ) -> "ClassDef":
        """Fluent shorthand: add an aggregation function and return ``self``."""
        if isinstance(cardinality, str):
            cardinality = Cardinality.parse(cardinality)
        self.add_aggregation(AggregationFunction(name, range_class, cardinality))
        return self

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """Declared attributes, in declaration order."""
        return tuple(self._attributes.values())

    @property
    def aggregations(self) -> Tuple[AggregationFunction, ...]:
        """Declared aggregation functions, in declaration order."""
        return tuple(self._aggregations.values())

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(self._attributes)

    @property
    def aggregation_names(self) -> Tuple[str, ...]:
        return tuple(self._aggregations)

    def attribute(self, name: str) -> Attribute:
        """The attribute called *name*; raises UnknownAttributeError."""
        try:
            return self._attributes[name]
        except KeyError:
            raise UnknownAttributeError(name, self.name) from None

    def aggregation(self, name: str) -> AggregationFunction:
        """The aggregation function called *name*; raises UnknownAttributeError."""
        try:
            return self._aggregations[name]
        except KeyError:
            raise UnknownAttributeError(name, self.name) from None

    def member(self, name: str) -> Member:
        """The attribute *or* aggregation function called *name*."""
        if name in self._attributes:
            return self._attributes[name]
        if name in self._aggregations:
            return self._aggregations[name]
        raise UnknownAttributeError(name, self.name)

    def has_member(self, name: str) -> bool:
        """True when *name* is a declared attribute or aggregation."""
        return name in self._attributes or name in self._aggregations

    def get_attribute(self, name: str) -> Optional[Attribute]:
        """The attribute called *name*, or None."""
        return self._attributes.get(name)

    def get_aggregation(self, name: str) -> Optional[AggregationFunction]:
        """The aggregation function called *name*, or None."""
        return self._aggregations.get(name)

    def __iter__(self) -> Iterator[Member]:
        """Iterate attributes then aggregation functions, declaration order."""
        yield from self._attributes.values()
        yield from self._aggregations.values()

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def type_signature(self) -> str:
        """Render ``type(C) = <...>`` as the paper prints it."""
        parts = [str(member) for member in self]
        return f"type({self.name}) = <{', '.join(parts)}>"

    def __repr__(self) -> str:
        return (
            f"ClassDef({self.name!r}, {len(self._attributes)} attrs, "
            f"{len(self._aggregations)} aggs, parents={self.parents!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClassDef):
            return NotImplemented
        return (
            self.name == other.name
            and self._attributes == other._attributes
            and self._aggregations == other._aggregations
            and sorted(self.parents) == sorted(other.parents)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attribute_names, self.aggregation_names))

    def copy(self, new_name: Optional[str] = None) -> "ClassDef":
        """A deep-enough copy (members are immutable) under *new_name*."""
        return ClassDef(
            new_name or self.name,
            attributes=self.attributes,
            aggregations=self.aggregations,
            parents=tuple(self.parents),
        )
