"""The component-store interface FSM-agents host (§3).

An FSM-agent does not care how a component database stores its data —
an in-memory :class:`~repro.model.database.ObjectDatabase`, a
materialized relational view, or a disk-backed source adapter from
:mod:`repro.sources`.  It only ever asks the narrow set of questions the
federation layer is allowed to ask (autonomy, Appendix B): the exported
schema, class extents, value sets, and a *version* the extent cache can
key freshness to.  :class:`ComponentStore` is that structural contract.
"""

from __future__ import annotations

from typing import Any, List, Protocol, Set

from .instances import ObjectInstance
from .schema import Schema


class ComponentStore(Protocol):
    """What a hosted component database must answer.

    ``version`` identifies the current state of the underlying data; the
    extent cache compares versions by equality, so any value that changes
    when the data changes (a mutation counter, a file fingerprint) works.
    """

    @property
    def schema(self) -> Schema: ...

    @property
    def version(self) -> int: ...

    def direct_extent(self, class_name: str) -> List[ObjectInstance]: ...

    def extent(self, class_name: str) -> List[ObjectInstance]: ...

    def value_set(self, class_name: str, attribute: str) -> Set[Any]: ...
