"""Object model substrate (§2-§3 of the paper).

Public surface: the six primitive :class:`DataType` values, attribute and
aggregation declarations, :class:`ClassDef` and :class:`Schema`, the
federation OID scheme and the in-memory :class:`ObjectDatabase` store
that substitutes for the Ontos platform.
"""

from .aggregations import AggregationFunction, Cardinality, relaxed
from .attributes import Attribute, ClassType, integer_attribute, string_attribute
from .classes import ClassDef
from .database import ObjectDatabase
from .datatypes import DataType, conforms, default_value
from .instances import ObjectInstance
from .oids import OID, OIDGenerator
from .schema import Schema, VIRTUAL_ROOT, build_hierarchy
from .store import ComponentStore
from .textio import (
    parse_schema,
    parse_schema_file,
    schema_from_dict,
    schema_to_dict,
    schema_to_text,
)

__all__ = [
    "AggregationFunction",
    "Attribute",
    "Cardinality",
    "ClassDef",
    "ClassType",
    "ComponentStore",
    "DataType",
    "OID",
    "OIDGenerator",
    "ObjectDatabase",
    "ObjectInstance",
    "Schema",
    "VIRTUAL_ROOT",
    "build_hierarchy",
    "conforms",
    "default_value",
    "integer_attribute",
    "parse_schema",
    "parse_schema_file",
    "schema_from_dict",
    "schema_to_dict",
    "schema_to_text",
    "relaxed",
    "string_attribute",
]
