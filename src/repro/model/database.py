"""An in-memory object database: a schema plus class extents (§2, §3).

This is the Ontos-substitute store.  It keeps, per class, the set of
:class:`~repro.model.instances.ObjectInstance` objects *directly* created
in that class; the *extension* of a class (the paper's ``{<o : C>}``)
additionally includes all instances of subclasses, because
``<C : C'>  iff  {<o:C>} ⊆ {<o':C'>}``.

The store deliberately stays simple — insert, lookup by OID, extent
scans, attribute selection — because the federation layer (autonomy!)
only ever asks component databases these questions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Union

from ..errors import InstanceError, UnknownClassError
from .instances import ObjectInstance
from .oids import OID, OIDGenerator
from .schema import Schema


class ObjectDatabase:
    """Schema + extents, with OIDs issued by the paper's §3 scheme.

    Parameters
    ----------
    schema:
        The (validated) schema instances must conform to.
    agent, system:
        The FSM-agent and DBMS names baked into issued OIDs; they default
        to generic values so unit tests can build a store in one line.
    validate:
        When True (default) every inserted instance is checked against
        its class definition.
    """

    def __init__(
        self,
        schema: Schema,
        agent: str = "agent",
        system: str = "pyoodb",
        validate: bool = True,
    ) -> None:
        schema.validate()
        self.schema = schema
        self._validate = validate
        self._generator = OIDGenerator(agent, system, schema.name)
        self._extents: Dict[str, List[ObjectInstance]] = {
            name: [] for name in schema.class_names
        }
        self._by_oid: Dict[OID, ObjectInstance] = {}
        #: monotonic mutation counter; caches key their entries to it so a
        #: write to the component database invalidates stale extents.
        self.version = 0

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def insert(
        self,
        class_name: str,
        attributes: Optional[Mapping[str, Any]] = None,
        aggregations: Optional[Mapping[str, Union[OID, Iterable[OID]]]] = None,
    ) -> ObjectInstance:
        """Create, validate, store and return a new instance of *class_name*."""
        if class_name not in self.schema:
            raise UnknownClassError(class_name, self.schema.name)
        oid = self._generator.next_oid(class_name)
        instance = ObjectInstance(oid, class_name, attributes, aggregations)
        if self._validate:
            instance.validate_against(self.schema.effective_class(class_name))
        self._extents[class_name].append(instance)
        self._by_oid[oid] = instance
        self.version += 1
        return instance

    def adopt(self, instance: ObjectInstance) -> ObjectInstance:
        """Adopt an instance that already carries an OID.

        Used by wrappers (relational views) whose objects are numbered by
        the component database, not by this store's generator.
        """
        if instance.class_name not in self.schema:
            raise UnknownClassError(instance.class_name, self.schema.name)
        if instance.oid in self._by_oid:
            raise InstanceError(f"OID {instance.oid} already present")
        if self._validate:
            instance.validate_against(self.schema.effective_class(instance.class_name))
        self._extents[instance.class_name].append(instance)
        self._by_oid[instance.oid] = instance
        self.version += 1
        return instance

    def insert_many(
        self, class_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> List[ObjectInstance]:
        """Insert one instance per attribute mapping in *rows*."""
        return [self.insert(class_name, row) for row in rows]

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def by_oid(self, oid: OID) -> ObjectInstance:
        """Dereference *oid*; this is what aggregation functions do."""
        try:
            return self._by_oid[oid]
        except KeyError:
            raise InstanceError(f"no object with OID {oid}") from None

    def get(self, oid: OID) -> Optional[ObjectInstance]:
        return self._by_oid.get(oid)

    def direct_extent(self, class_name: str) -> List[ObjectInstance]:
        """Instances created directly in *class_name* (no subclasses)."""
        if class_name not in self.schema:
            raise UnknownClassError(class_name, self.schema.name)
        return list(self._extents[class_name])

    def extent(self, class_name: str) -> List[ObjectInstance]:
        """The full extension ``{<o : C>}`` including subclass instances."""
        if class_name not in self.schema:
            raise UnknownClassError(class_name, self.schema.name)
        names = [class_name] + sorted(self.schema.descendants(class_name))
        result: List[ObjectInstance] = []
        for name in names:
            result.extend(self._extents[name])
        return result

    def select(
        self, class_name: str, predicate: Callable[[ObjectInstance], bool]
    ) -> List[ObjectInstance]:
        """Extent scan with a Python predicate — the local query interface."""
        return [obj for obj in self.extent(class_name) if predicate(obj)]

    def value_set(self, class_name: str, attribute: str) -> Set[Any]:
        """``value_set(att)``: the largest non-null subset of the domain
        of *attribute* w.r.t. the current database state (§5).

        Multivalued attribute values are flattened into the set.
        """
        values: Set[Any] = set()
        for obj in self.extent(class_name):
            value = obj.get(attribute)
            if value is None:
                continue
            if isinstance(value, frozenset):
                values.update(v for v in value if v is not None)
            else:
                values.add(value)
        return values

    def follow(
        self, instance: ObjectInstance, aggregation: str
    ) -> List[ObjectInstance]:
        """Apply an aggregation function: dereference its target OID(s)."""
        target = instance.get(aggregation)
        if target is None:
            return []
        if isinstance(target, OID):
            return [self.by_oid(target)]
        return [self.by_oid(oid) for oid in sorted(target)]

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_oid)

    def __iter__(self) -> Iterator[ObjectInstance]:
        return iter(self._by_oid.values())

    def counts(self) -> Dict[str, int]:
        """Direct-extent cardinality per class."""
        return {name: len(objs) for name, objs in self._extents.items()}
