"""Aggregation functions and cardinality constraints (§2, Fig 13).

An aggregation function ``Agg: type(C) -> type(C')`` relates a *domain*
class to a *range* class — e.g. ``Published_in: Proceedings with [m:1]``
on class ``Article``.  Each carries a cardinality constraint from the
paper's simple lattice ``{[1:1], [1:n], [m:1], [m:n]}`` (Fig 13a),
optionally extended with *mandatory* participation variants such as
``[md_n:1]`` (Fig 13b).  The lattice itself — including the
least-common-supernode (lcs) operation used by Principle 6 — lives in
:mod:`repro.integration.lattice`; this module only declares the constraint
vocabulary and the aggregation declaration.
"""

from __future__ import annotations

import dataclasses
import enum

from ..errors import ModelError


class Cardinality(enum.Enum):
    """Cardinality constraints of aggregation links.

    The first four members form the paper's simple lattice (Fig 13a);
    the ``MD_*`` members are the mandatory-participation refinements used
    in the extended lattice (Fig 13b).
    """

    ONE_TO_ONE = "[1:1]"
    ONE_TO_N = "[1:n]"
    M_TO_ONE = "[m:1]"
    M_TO_N = "[m:n]"
    MD_ONE_TO_ONE = "[md_1:1]"
    MD_ONE_TO_N = "[md_1:n]"
    MD_N_TO_ONE = "[md_n:1]"
    MD_N_TO_N = "[md_n:n]"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_mandatory(self) -> bool:
        """True for total-participation (``md``) constraints."""
        return self.value.startswith("[md")

    @classmethod
    def parse(cls, text: str) -> "Cardinality":
        """Parse a constraint like ``[m:1]`` or ``md_n:1`` (brackets optional).

        The paper spells the "many" side both ``m`` and ``n`` (compare
        "``lcs([1:m], [n:1])``" with the lattice nodes ``[1:n]``/``[m:1]``),
        so both spellings are accepted on either side.
        """
        raw = text.strip().replace(" ", "").lower()
        if not raw.startswith("["):
            raw = f"[{raw}]"
        mandatory = raw.startswith("[md_")
        body = raw[4:-1] if mandatory else raw[1:-1]
        left, _, right = body.partition(":")
        if not right:
            raise ModelError(f"unknown cardinality constraint {text!r}")
        left = "m" if left in ("m", "n") else left
        right = "n" if right in ("m", "n") else right
        left = "n" if mandatory and left == "m" else left
        canonical = f"[md_{left}:{right}]" if mandatory else f"[{left}:{right}]"
        for member in cls:
            if member.value == canonical:
                return member
        raise ModelError(f"unknown cardinality constraint {text!r}")


#: Mandatory constraint -> its non-mandatory counterpart, one loosening
#: step along the extended lattice of Fig 13(b).
_RELAXED = {
    Cardinality.MD_ONE_TO_ONE: Cardinality.ONE_TO_ONE,
    Cardinality.MD_ONE_TO_N: Cardinality.ONE_TO_N,
    Cardinality.MD_N_TO_ONE: Cardinality.M_TO_ONE,
    Cardinality.MD_N_TO_N: Cardinality.M_TO_N,
}


def relaxed(cc: Cardinality) -> Cardinality:
    """Return the non-mandatory counterpart of *cc* (identity if already so)."""
    return _RELAXED.get(cc, cc)


@dataclasses.dataclass(frozen=True)
class AggregationFunction:
    """A declared aggregation function of a class.

    Parameters
    ----------
    name:
        Function name, unique within the owning class (e.g. ``work_in``).
    range_class:
        Name of the range class ``C'`` in ``Agg: type(C) -> type(C')``.
    cardinality:
        The constraint ``cc`` of ``Agg with cc``; defaults to the loosest
        constraint ``[m:n]`` when a schema omits it.
    """

    name: str
    range_class: str
    cardinality: Cardinality = Cardinality.M_TO_N

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("aggregation function name must be non-empty")
        if not self.range_class:
            raise ModelError(
                f"aggregation function {self.name!r} needs a range class"
            )

    def __str__(self) -> str:
        return f"{self.name}: {self.range_class} with {self.cardinality}"
