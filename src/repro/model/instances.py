"""Object instances — ground complex O-terms (§2).

The paper writes an instance of class ``C`` as::

    <o: C | a1:v1, ..., al:vl, agg1, ..., aggk>

with *o* an object identifier, attribute values ``vi`` and aggregation
instances ``aggj`` mapping *o* to object identifiers of range classes.
:class:`ObjectInstance` is exactly that ground term: attribute values are
Python values (checked against the class type), aggregation values are
:class:`~repro.model.oids.OID` targets (or sets thereof when the
cardinality allows several).

The non-ground logical counterpart — O-terms with variables, used in
rules — lives in :mod:`repro.logic.oterms`; an :class:`ObjectInstance`
converts to a ground O-term via :meth:`ObjectInstance.to_fact` there.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, Union

from ..errors import InstanceError, UnknownAttributeError
from .attributes import ClassType
from .classes import ClassDef
from .datatypes import DataType, conforms
from .oids import OID

AggValue = Union[OID, FrozenSet[OID], None]


class ObjectInstance:
    """A ground complex O-term ``<oid: class | attrs..., aggs...>``.

    Parameters
    ----------
    oid:
        The federation-wide identifier of the object.
    class_name:
        The class the object belongs to.
    attributes:
        Mapping of attribute name to value.  Multivalued attributes take
        any iterable, stored as a frozenset.
    aggregations:
        Mapping of aggregation-function name to target OID (or iterable
        of OIDs for ``[*:n]`` cardinalities).
    """

    __slots__ = ("oid", "class_name", "_attributes", "_aggregations")

    def __init__(
        self,
        oid: OID,
        class_name: str,
        attributes: Optional[Mapping[str, Any]] = None,
        aggregations: Optional[Mapping[str, Union[OID, Iterable[OID]]]] = None,
    ) -> None:
        self.oid = oid
        self.class_name = class_name
        self._attributes: Dict[str, Any] = {}
        for name, value in (attributes or {}).items():
            self.set_attribute(name, value)
        self._aggregations: Dict[str, AggValue] = {}
        for name, target in (aggregations or {}).items():
            self.set_aggregation(name, target)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def get(self, name: str, default: Any = None) -> Any:
        """Attribute or aggregation value, ``default`` when absent."""
        if name in self._attributes:
            return self._attributes[name]
        if name in self._aggregations:
            return self._aggregations[name]
        return default

    def __getitem__(self, name: str) -> Any:
        value = self.get(name, _MISSING)
        if value is _MISSING:
            raise UnknownAttributeError(name, self.class_name)
        return value

    def __contains__(self, name: str) -> bool:
        return name in self._attributes or name in self._aggregations

    @property
    def attributes(self) -> Mapping[str, Any]:
        return dict(self._attributes)

    @property
    def aggregations(self) -> Mapping[str, AggValue]:
        return dict(self._aggregations)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_attribute(self, name: str, value: Any) -> None:
        if isinstance(value, (set, frozenset, list, tuple)) and not isinstance(
            value, (str, bytes)
        ):
            value = frozenset(value)
        self._attributes[name] = value

    def set_aggregation(self, name: str, target: Union[OID, Iterable[OID], None]) -> None:
        if target is None or isinstance(target, OID):
            self._aggregations[name] = target
        else:
            targets = frozenset(target)
            for element in targets:
                if not isinstance(element, OID):
                    raise InstanceError(
                        f"aggregation {name!r} target must be OID(s), got {element!r}"
                    )
            self._aggregations[name] = targets

    # ------------------------------------------------------------------
    # validation against the class definition
    # ------------------------------------------------------------------
    def validate_against(self, class_def: ClassDef) -> None:
        """Check this instance conforms to *class_def*.

        Unknown members, primitive type mismatches and scalar values for
        multivalued attributes all raise :class:`InstanceError`.  Missing
        attributes are fine — the paper's federation never materializes
        complete global objects, it references partial local data.
        """
        if class_def.name != self.class_name:
            raise InstanceError(
                f"instance {self.oid} is of class {self.class_name!r}, "
                f"validated against {class_def.name!r}"
            )
        for name, value in self._attributes.items():
            attribute = class_def.get_attribute(name)
            if attribute is None:
                raise InstanceError(
                    f"instance {self.oid}: class {class_def.name!r} has no "
                    f"attribute {name!r}"
                )
            if attribute.multivalued:
                if value is not None and not isinstance(value, frozenset):
                    raise InstanceError(
                        f"instance {self.oid}: attribute {name!r} is "
                        f"multivalued but holds scalar {value!r}"
                    )
                elements = value or frozenset()
            else:
                if isinstance(value, frozenset):
                    raise InstanceError(
                        f"instance {self.oid}: attribute {name!r} is "
                        f"single-valued but holds a set"
                    )
                # dicts (nested complex-attribute records) are unhashable;
                # a plain tuple of elements suffices for the checks below.
                elements = () if value is None else (value,)
            if isinstance(attribute.value_type, DataType):
                for element in elements:
                    if not conforms(element, attribute.value_type):
                        raise InstanceError(
                            f"instance {self.oid}: value {element!r} does not "
                            f"conform to {name}: {attribute.value_type}"
                        )
            elif isinstance(attribute.value_type, ClassType):
                for element in elements:
                    if not isinstance(element, (OID, ObjectInstance, dict)):
                        raise InstanceError(
                            f"instance {self.oid}: complex attribute {name!r} "
                            f"must hold an OID, nested instance or mapping, "
                            f"got {element!r}"
                        )
        for name in self._aggregations:
            if class_def.get_aggregation(name) is None:
                raise InstanceError(
                    f"instance {self.oid}: class {class_def.name!r} has no "
                    f"aggregation function {name!r}"
                )

    # ------------------------------------------------------------------
    # presentation / equality
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        parts = [f"{k}: {v!r}" for k, v in self._attributes.items()]
        parts += [f"{k} -> {v}" for k, v in self._aggregations.items()]
        body = ", ".join(parts)
        return f"<{self.oid}: {self.class_name} | {body}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ObjectInstance):
            return NotImplemented
        return (
            self.oid == other.oid
            and self.class_name == other.class_name
            and self._attributes == other._attributes
            and self._aggregations == other._aggregations
        )

    def __hash__(self) -> int:
        return hash((self.oid, self.class_name))

    def as_tuple(self, columns: Tuple[str, ...]) -> Tuple[Any, ...]:
        """Project the instance onto *columns* (None for missing ones)."""
        return tuple(self.get(column) for column in columns)


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()
