"""Schemas: named sets of classes organized in an is-a hierarchy (§2, §6.1).

A schema is "a set of classes C" whose members are linked by is-a
(inheritance) and aggregation links.  For the integration algorithms of
§6 a schema is *viewed as a graph*: nodes are classes, arcs are is-a or
aggregation links, and traversal runs along is-a links from a *start
node* — a virtual root added above all parentless classes exactly as the
paper prescribes (Fig 14).

:class:`Schema` therefore exposes both the declarative view (lookup,
validation, subtyping tests) and the graph view (roots, children along
reversed is-a edges, traversal orders) that
:mod:`repro.integration.naive` / :mod:`repro.integration.optimized`
consume.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import (
    CycleError,
    DuplicateDefinitionError,
    ModelError,
    UnknownClassError,
)
from .attributes import ClassType
from .classes import ClassDef

#: Name of the virtual start node added above parentless classes (Fig 14).
#: It is never stored in the schema; the graph view synthesizes it.
VIRTUAL_ROOT = "⊤"  # ⊤


class Schema:
    """A named object-oriented schema.

    Parameters
    ----------
    name:
        Schema name, e.g. ``"S1"``; used in assertions (``S1.person``)
        and in the provenance of integrated concepts.
    classes:
        Initial classes; more can be added with :meth:`add_class`.
    """

    def __init__(self, name: str, classes: Iterable[ClassDef] = ()) -> None:
        if not name:
            raise ModelError("schema name must be non-empty")
        self.name = name
        self._classes: Dict[str, ClassDef] = {}
        for class_def in classes:
            self.add_class(class_def)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_class(self, class_def: ClassDef) -> ClassDef:
        """Add *class_def*; raises on duplicate names."""
        if class_def.name in self._classes:
            raise DuplicateDefinitionError(
                f"schema {self.name!r} already defines class {class_def.name!r}"
            )
        self._classes[class_def.name] = class_def
        return class_def

    def new_class(self, name: str, parents: Iterable[str] = ()) -> ClassDef:
        """Create, add and return an empty class — fluent builder entry."""
        return self.add_class(ClassDef(name, parents=parents))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __contains__(self, class_name: str) -> bool:
        return class_name in self._classes

    def __iter__(self) -> Iterator[ClassDef]:
        return iter(self._classes.values())

    def __len__(self) -> int:
        return len(self._classes)

    @property
    def class_names(self) -> Tuple[str, ...]:
        return tuple(self._classes)

    def cls(self, name: str) -> ClassDef:
        """The class called *name*; raises UnknownClassError."""
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClassError(name, self.name) from None

    def get(self, name: str) -> Optional[ClassDef]:
        """The class called *name*, or None."""
        return self._classes.get(name)

    # ------------------------------------------------------------------
    # is-a hierarchy
    # ------------------------------------------------------------------
    def parents(self, class_name: str) -> Tuple[str, ...]:
        """Direct superclasses of *class_name*."""
        return tuple(self.cls(class_name).parents)

    def children(self, class_name: str) -> Tuple[str, ...]:
        """Direct subclasses of *class_name* (or of the virtual root)."""
        if class_name == VIRTUAL_ROOT:
            return self.roots()
        return tuple(
            c.name for c in self._classes.values() if class_name in c.parents
        )

    def roots(self) -> Tuple[str, ...]:
        """Classes without parents — children of the virtual start node."""
        return tuple(c.name for c in self._classes.values() if not c.parents)

    def ancestors(self, class_name: str) -> Set[str]:
        """All strict ancestors of *class_name* along is-a links."""
        seen: Set[str] = set()
        frontier = list(self.parents(class_name))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.parents(current))
        return seen

    def descendants(self, class_name: str) -> Set[str]:
        """All strict descendants of *class_name* along is-a links."""
        seen: Set[str] = set()
        frontier = list(self.children(class_name))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.children(current))
        return seen

    def is_subclass(self, sub: str, sup: str) -> bool:
        """True when ``<sub : sup>`` holds (reflexively)."""
        if sub == sup:
            return True
        return sup in self.ancestors(sub)

    def effective_class(self, class_name: str) -> ClassDef:
        """*class_name* with all inherited members merged in.

        Attributes and aggregation functions of ancestors are visible on
        instances of a subclass (``{<o:C>} ⊆ {<o':C'>}`` makes every
        ``C`` object also a ``C'`` object).  The subclass's own
        declaration wins on a name clash, ancestors contribute the rest
        in breadth-first order.
        """
        own = self.cls(class_name)
        merged = own.copy()
        frontier = deque(own.parents)
        visited: Set[str] = set()
        while frontier:
            ancestor_name = frontier.popleft()
            if ancestor_name in visited:
                continue
            visited.add(ancestor_name)
            ancestor = self.cls(ancestor_name)
            for attribute in ancestor.attributes:
                if not merged.has_member(attribute.name):
                    merged.add_attribute(attribute)
            for aggregation in ancestor.aggregations:
                if not merged.has_member(aggregation.name):
                    merged.add_aggregation(aggregation)
            frontier.extend(ancestor.parents)
        return merged

    def is_a_links(self) -> List[Tuple[str, str]]:
        """All ``is_a(child, parent)`` pairs declared in the schema."""
        return [
            (c.name, parent) for c in self._classes.values() for parent in c.parents
        ]

    def aggregation_links(self) -> List[Tuple[str, str, str]]:
        """All ``(domain_class, function_name, range_class)`` triples."""
        return [
            (c.name, agg.name, agg.range_class)
            for c in self._classes.values()
            for agg in c.aggregations
        ]

    def is_a_path(self, descendant: str, ancestor: str) -> Optional[List[str]]:
        """A shortest is-a path ``descendant -> ... -> ancestor``, or None.

        The returned list starts at *descendant* and ends at *ancestor*;
        ``None`` means *ancestor* is not reachable.  Used by Principle 6 /
        §6.2 when hunting redundant links (Fig 12).
        """
        if descendant == ancestor:
            return [descendant]
        previous: Dict[str, str] = {}
        queue = deque([descendant])
        while queue:
            current = queue.popleft()
            for parent in self.parents(current):
                if parent in previous or parent == descendant:
                    continue
                previous[parent] = current
                if parent == ancestor:
                    path = [ancestor]
                    while path[-1] != descendant:
                        path.append(previous[path[-1]])
                    path.reverse()
                    return path
                queue.append(parent)
        return None

    # ------------------------------------------------------------------
    # traversal orders for the integration algorithms
    # ------------------------------------------------------------------
    def bfs_order(self) -> List[str]:
        """Classes in breadth-first order from the virtual root."""
        order: List[str] = []
        seen: Set[str] = set()
        queue = deque(self.roots())
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            queue.extend(self.children(current))
        return order

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check referential integrity of the whole schema.

        Raises :class:`UnknownClassError` when a parent, a complex
        attribute type or an aggregation range names a class the schema
        does not define, and :class:`CycleError` when the is-a hierarchy
        is cyclic.
        """
        for class_def in self._classes.values():
            for parent in class_def.parents:
                if parent not in self._classes:
                    raise UnknownClassError(parent, self.name)
            for attribute in class_def.attributes:
                if isinstance(attribute.value_type, ClassType):
                    if attribute.value_type.class_name not in self._classes:
                        raise UnknownClassError(
                            attribute.value_type.class_name, self.name
                        )
            for aggregation in class_def.aggregations:
                if aggregation.range_class not in self._classes:
                    raise UnknownClassError(aggregation.range_class, self.name)
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._classes}

        def visit(node: str, trail: List[str]) -> None:
            color[node] = GRAY
            trail.append(node)
            for parent in self._classes[node].parents:
                if color.get(parent) == GRAY:
                    cycle = trail[trail.index(parent):] + [parent]
                    raise CycleError(
                        f"schema {self.name!r} has a cyclic is-a hierarchy: "
                        + " -> ".join(cycle)
                    )
                if color.get(parent) == WHITE:
                    visit(parent, trail)
            trail.pop()
            color[node] = BLACK

        for name in self._classes:
            if color[name] == WHITE:
                visit(name, [])

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A multi-line, paper-style rendering of every class."""
        lines = [f"schema {self.name}:"]
        for class_def in self._classes.values():
            lines.append("  " + class_def.type_signature())
            for parent in class_def.parents:
                lines.append(f"  is_a({class_def.name}, {parent})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, {len(self._classes)} classes)"


def build_hierarchy(
    name: str, edges: Sequence[Tuple[str, str]], extra: Iterable[str] = ()
) -> Schema:
    """Build a bare schema from ``(child, parent)`` is-a edges.

    Convenience used by tests and workload generators that only care
    about hierarchy shape, not attribute content.  *extra* adds isolated
    classes.
    """
    schema = Schema(name)
    mentioned = {n for edge in edges for n in edge} | set(extra)
    for class_name in mentioned:
        schema.add_class(ClassDef(class_name))
    for child, parent in edges:
        schema.cls(child).add_parent(parent)
    schema.validate()
    return schema
