"""Schema serialization: a textual schema format and JSON (de)serialization.

The paper assumes local schemas arrive as OO descriptions; this module
gives the library a concrete interchange form so schemas can live in
files next to assertion DSL files::

    schema S1
    class person
      attr ssn#: string
      attr full_name: string
      attr interests: {string}
    class student extends person
      attr gpa: real
    class article
      attr title: string
      agg Published_in -> proceedings [m:1]
    class proceedings
      attr year: integer

Rules: one declaration per line, ``#`` comments (start-of-line or after
whitespace), ``{type}`` marks multivalued attributes, a non-primitive
type name denotes a complex (class-typed) attribute, ``extends`` lists
parents comma-separated.  :func:`schema_to_text` inverts the parse;
:func:`schema_to_dict` / :func:`schema_from_dict` give a JSON-stable
form.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

from ..errors import ModelError
from .aggregations import Cardinality
from .attributes import ClassType
from .classes import ClassDef
from .datatypes import DataType
from .schema import Schema

_SCHEMA_RE = re.compile(r"^schema\s+(?P<name>\S+)$")
_CLASS_RE = re.compile(
    r"^class\s+(?P<name>\S+)(?:\s+extends\s+(?P<parents>.+))?$"
)
_ATTR_RE = re.compile(
    r"^attr\s+(?P<name>[^:\s]+)\s*:\s*(?P<type>\{[^}]+\}|\S+)$"
)
_AGG_RE = re.compile(
    r"^agg\s+(?P<name>\S+)\s*->\s*(?P<range>\S+)(?:\s+(?P<cc>\[[^\]]+\]))?$"
)


def _strip_comment(line: str) -> str:
    for index, char in enumerate(line):
        if char == "#" and (index == 0 or line[index - 1].isspace()):
            return line[:index]
    return line


def parse_schema(text: str) -> Schema:
    """Parse the textual schema format (see module docstring)."""
    schema: Schema | None = None
    current: ClassDef | None = None
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if match := _SCHEMA_RE.match(line):
            if schema is not None:
                raise ModelError(
                    f"line {line_no}: a schema file declares one schema"
                )
            schema = Schema(match.group("name"))
            continue
        if schema is None:
            raise ModelError(f"line {line_no}: expected 'schema <name>' first")
        if match := _CLASS_RE.match(line):
            parents = [
                p.strip()
                for p in (match.group("parents") or "").split(",")
                if p.strip()
            ]
            current = ClassDef(match.group("name"), parents=parents)
            schema.add_class(current)
            continue
        if current is None:
            raise ModelError(f"line {line_no}: member outside a class: {line!r}")
        if match := _ATTR_RE.match(line):
            type_text = match.group("type")
            multivalued = type_text.startswith("{")
            inner = type_text.strip("{}").strip()
            current.attr(match.group("name"), inner, multivalued=multivalued)
            continue
        if match := _AGG_RE.match(line):
            cardinality = (
                Cardinality.parse(match.group("cc"))
                if match.group("cc")
                else Cardinality.M_TO_N
            )
            current.agg(match.group("name"), match.group("range"), cardinality)
            continue
        raise ModelError(f"line {line_no}: cannot parse {line!r}")
    if schema is None:
        raise ModelError("empty schema text")
    schema.validate()
    return schema


def parse_schema_file(path: str) -> Schema:
    with open(path, encoding="utf-8") as handle:
        return parse_schema(handle.read())


def schema_to_text(schema: Schema) -> str:
    """Render *schema* in the textual format (parse round-trips)."""
    lines = [f"schema {schema.name}"]
    for class_def in schema:
        head = f"class {class_def.name}"
        if class_def.parents:
            head += " extends " + ", ".join(class_def.parents)
        lines.append(head)
        for attribute in class_def.attributes:
            lines.append(f"  attr {attribute.name}: {attribute.type_name()}")
        for aggregation in class_def.aggregations:
            lines.append(
                f"  agg {aggregation.name} -> {aggregation.range_class} "
                f"{aggregation.cardinality}"
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSON form
# ----------------------------------------------------------------------
def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """A JSON-serializable description of *schema*."""
    classes: List[Dict[str, Any]] = []
    for class_def in schema:
        classes.append(
            {
                "name": class_def.name,
                "parents": list(class_def.parents),
                "attributes": [
                    {
                        "name": attribute.name,
                        "type": str(attribute.value_type),
                        "multivalued": attribute.multivalued,
                    }
                    for attribute in class_def.attributes
                ],
                "aggregations": [
                    {
                        "name": aggregation.name,
                        "range": aggregation.range_class,
                        "cardinality": str(aggregation.cardinality),
                    }
                    for aggregation in class_def.aggregations
                ],
            }
        )
    return {"name": schema.name, "classes": classes}


def schema_from_dict(data: Dict[str, Any]) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    schema = Schema(data["name"])
    for class_data in data.get("classes", ()):
        class_def = ClassDef(class_data["name"], parents=class_data.get("parents", ()))
        for attr_data in class_data.get("attributes", ()):
            type_name = attr_data["type"]
            try:
                value_type: "DataType | ClassType" = DataType.parse(type_name)
            except ValueError:
                value_type = ClassType(type_name)
            class_def.attr(
                attr_data["name"], value_type, multivalued=attr_data.get("multivalued", False)
            )
        for agg_data in class_data.get("aggregations", ()):
            class_def.agg(
                agg_data["name"],
                agg_data["range"],
                Cardinality.parse(agg_data.get("cardinality", "[m:n]")),
            )
        schema.add_class(class_def)
    schema.validate()
    return schema
