"""Primitive data types of the object model (§2 of the paper).

The paper defines attribute types as drawn from::

    {boolean, integer, real, character, string, date} ∪ type(C)

i.e. an attribute either has one of six primitive types, is typed by
another class of the schema (a *nested* or *complex* attribute), or — in
our "not difficult to extend" reading of §2 — is a *set* of one of those
(multi-valued attributes such as ``interests: {string}`` in Example 6).

This module provides the primitive side: the :class:`DataType` enum, the
:class:`Date` value type (the standard library ``datetime.date`` is
accepted anywhere a ``Date`` is) and conformance checks used by
:mod:`repro.model.instances` when validating objects against their class.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any


class DataType(enum.Enum):
    """The six primitive attribute types of the paper's object model."""

    BOOLEAN = "boolean"
    INTEGER = "integer"
    REAL = "real"
    CHARACTER = "character"
    STRING = "string"
    DATE = "date"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def parse(cls, name: str) -> "DataType":
        """Return the data type named *name* (case-insensitive).

        Raises ``ValueError`` for unknown names, listing the valid ones so
        DSL error messages stay actionable.
        """
        try:
            return cls(name.strip().lower())
        except ValueError:
            valid = ", ".join(member.value for member in cls)
            raise ValueError(
                f"unknown primitive type {name!r}; expected one of: {valid}"
            ) from None


#: Python types accepted for each primitive type.  ``bool`` is checked
#: before ``int`` in :func:`conforms` because bool is an int subclass.
_PYTHON_TYPES = {
    DataType.BOOLEAN: (bool,),
    DataType.INTEGER: (int,),
    DataType.REAL: (float, int),
    DataType.CHARACTER: (str,),
    DataType.STRING: (str,),
    DataType.DATE: (datetime.date,),
}


def conforms(value: Any, data_type: DataType) -> bool:
    """Return True when *value* is a legal instance of *data_type*.

    ``None`` conforms to every type: the paper's data mappings explicitly
    produce ``Null`` when no correspondence exists, so nullability is part
    of the model rather than an error.
    """
    if value is None:
        return True
    if data_type is DataType.BOOLEAN:
        return isinstance(value, bool)
    if data_type is DataType.INTEGER:
        return isinstance(value, int) and not isinstance(value, bool)
    if data_type is DataType.CHARACTER:
        return isinstance(value, str) and len(value) == 1
    accepted = _PYTHON_TYPES[data_type]
    if data_type is DataType.REAL and isinstance(value, bool):
        return False
    return isinstance(value, accepted)


def default_value(data_type: DataType) -> Any:
    """Return a neutral value of *data_type*, used by workload generators."""
    return {
        DataType.BOOLEAN: False,
        DataType.INTEGER: 0,
        DataType.REAL: 0.0,
        DataType.CHARACTER: " ",
        DataType.STRING: "",
        DataType.DATE: datetime.date(1970, 1, 1),
    }[data_type]
