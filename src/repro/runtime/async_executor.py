"""The asyncio executor: multiplex agent scans on one event loop.

:class:`~repro.runtime.executor.FederationExecutor` spends an OS thread
per in-flight scan, so its fan-out width is bounded by the pool; 256
slow agents behind 10ms links cost ``256 / max_workers`` round-trip
waves.  :class:`AsyncFederationExecutor` drives the same
:class:`~repro.runtime.transport.ScanRequest` fan-out as coroutines —
an awaiting scan costs a timer, not a thread — with semantics
deliberately *shared*, not forked:

* the same :class:`~repro.runtime.policy.RuntimePolicy` object supplies
  retries, backoff schedule and per-call timeout;
* the same :class:`~repro.runtime.breaker.CircuitBreaker` *instance*
  may be shared with a threaded executor (its lock never crosses an
  ``await``), so both paths see one failure history per agent;
* the same :class:`~repro.runtime.metrics.RuntimeMetrics` vocabulary —
  ``timeouts``, ``retries``, ``breaker_trips`` — keeps ``--stats``
  identical across modes;
* per-call deadlines use :func:`asyncio.timeout` (``asyncio.wait_for``
  before 3.11): an overdue scan's coroutine is **cancelled**, not
  abandoned — the transport sees the cancellation, and the attempt is
  recorded as a timeout, never a success;
* fan-out width is a semaphore (``policy.max_inflight``), so admitting
  thousands of scans costs no OS resources.

The executor exposes both coroutine (:meth:`run_async`,
:meth:`run_one_async`) and synchronous (:meth:`run`, :meth:`run_one`)
APIs.  The sync bridge submits to a lazily-started daemon event-loop
thread, so the synchronous FSM query paths use the async mode without
any caller becoming async themselves.  Do not call the sync API from a
coroutine running on that same loop.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Awaitable, Callable, Dict, Iterable, List, Optional

from ..errors import (
    AgentTimeoutError,
    CircuitOpenError,
    ReproError,
    TransportError,
)
from .breaker import CLOSED, CircuitBreaker
from .executor import (
    ScanFailure,
    ScanOutcome,
    coalesce_by_endpoint,
    expand_outcome,
)
from .metrics import RuntimeMetrics
from .policy import RuntimePolicy
from .async_transport import AsyncAgentTransport
from .sharding import ShardPlan, ShardedOutcome, merge_outcome, split_requests
from .transport import Scannable, ScanRequest

#: asyncio.timeout landed in 3.11; 3.10 falls back to wait_for
_TIMEOUT_FACTORY = getattr(asyncio, "timeout", None)


async def _with_deadline(awaitable: Awaitable[Any], seconds: float) -> Any:
    if _TIMEOUT_FACTORY is not None:
        async with _TIMEOUT_FACTORY(seconds):
            return await awaitable
    return await asyncio.wait_for(awaitable, seconds)


class EventLoopThread:
    """A lazily-started daemon thread running one event loop forever.

    The synchronous facade submits coroutines with
    :func:`asyncio.run_coroutine_threadsafe` and blocks on the future —
    the standard sync-over-async bridge.  Restartable: if the thread
    died (interpreter teardown races in tests), the next submit starts
    a fresh loop.

    One instance may be *shared* by many executors: the federation
    service hands every tenant's :class:`AsyncFederationExecutor` the
    same loop thread, so all tenants' in-flight scans multiplex on one
    event loop instead of one loop thread per tenant.  Pass it as the
    executor's ``runner``; a shared runner is closed by its owner, not
    by the executors borrowing it.
    """

    def __init__(self, name: str = "fsm-async-loop") -> None:
        self._name = name
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    def _ensure(self) -> asyncio.AbstractEventLoop:
        with self._lock:
            if (
                self._loop is None
                or self._thread is None
                or not self._thread.is_alive()
            ):
                loop = asyncio.new_event_loop()
                thread = threading.Thread(
                    target=self._drive, args=(loop,), name=self._name, daemon=True
                )
                thread.start()
                self._loop, self._thread = loop, thread
            return self._loop

    @staticmethod
    def _drive(loop: asyncio.AbstractEventLoop) -> None:
        asyncio.set_event_loop(loop)
        loop.run_forever()

    def submit(self, coroutine: Awaitable[Any]) -> Any:
        """Run *coroutine* on the loop thread and return its result."""
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._ensure()  # type: ignore[arg-type]
        ).result()

    @property
    def alive(self) -> bool:
        """True while the loop thread is running (False before first use)."""
        with self._lock:
            return self._thread is not None and self._thread.is_alive()

    def close(self) -> None:
        with self._lock:
            loop, thread = self._loop, self._thread
            self._loop = self._thread = None
        if loop is None or thread is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        loop.close()


#: historical private name, kept for older call sites
_EventLoopThread = EventLoopThread


class AsyncFederationExecutor:
    """Schedule agent scans as coroutines under the shared failure model."""

    def __init__(
        self,
        transport: AsyncAgentTransport,
        policy: Optional[RuntimePolicy] = None,
        metrics: Optional[RuntimeMetrics] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
        runner: Optional[EventLoopThread] = None,
    ) -> None:
        self.transport = transport
        self.policy = policy or RuntimePolicy()
        self.metrics = metrics or RuntimeMetrics()
        self.breaker = breaker or CircuitBreaker(
            self.policy.breaker_threshold, self.policy.breaker_reset
        )
        self._sleep = sleep
        # a caller-supplied runner is *borrowed* (many executors can
        # multiplex on one loop thread); only a private one is closed here
        self._runner = runner if runner is not None else EventLoopThread()
        self._owns_runner = runner is None

    # ------------------------------------------------------------------
    # coroutine API
    # ------------------------------------------------------------------
    async def run_one_async(self, request: Scannable) -> Any:
        """One dispatch through the retry / breaker / deadline machinery.

        As in the threaded executor, the failure domain is
        :attr:`ScanRequest.endpoint` — per-shard circuits and histograms
        — and a batch records one round-trip but N agent scans.
        """
        policy = self.policy
        agent = request.endpoint
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_retries + 2):
            if attempt > 1:
                self.metrics.incr("retries")
                await self._sleep(policy.backoff(attempt - 1))
            probing = self.breaker.state(agent) != CLOSED
            if not self.breaker.allow(agent):
                self.metrics.incr("circuit_rejections")
                raise CircuitOpenError(agent)
            self.metrics.record_round_trip(agent)
            self.metrics.record_agent_scan(agent, count=len(request.granules))
            try:
                if policy.timeout is None:
                    value = await self.transport.perform(request)
                else:
                    value = await _with_deadline(
                        self.transport.perform(request), policy.timeout
                    )
            except (asyncio.TimeoutError, TimeoutError):
                self.metrics.incr("timeouts")
                if self.breaker.record_failure(agent):
                    self.metrics.incr("breaker_trips")
                last_error = AgentTimeoutError(agent, policy.timeout or 0.0)
                continue
            except asyncio.CancelledError:
                # externally cancelled (shutdown, caller deadline): release
                # a half-open probe slot so the breaker stays live, then
                # let the cancellation propagate
                if probing:
                    self.breaker.abandon_probe(agent)
                raise
            except TransportError as error:
                self.metrics.incr("transport_failures")
                if self.breaker.record_failure(agent):
                    self.metrics.incr("breaker_trips")
                last_error = error
                continue
            self.breaker.record_success(agent)
            return value
        assert last_error is not None
        raise last_error

    async def run_async(self, requests: Iterable[Scannable]) -> ScanOutcome:
        """Fan *requests* out concurrently; never raises per-scan failures."""
        pending = list(requests)
        results: Dict[Scannable, Any] = {}
        failures: List[ScanFailure] = []
        if not pending:
            return ScanOutcome(results)
        gate = asyncio.Semaphore(self.policy.max_inflight)

        async def guarded(request: Scannable) -> None:
            try:
                async with gate:
                    value = await self.run_one_async(request)
            except CircuitOpenError as error:
                failures.append(
                    ScanFailure(request, str(error), "circuit_open", attempts=0)
                )
            except AgentTimeoutError as error:
                failures.append(
                    ScanFailure(
                        request, str(error), "timeout", self.policy.max_retries + 1
                    )
                )
            except TransportError as error:
                failures.append(
                    ScanFailure(
                        request, str(error), "transport", self.policy.max_retries + 1
                    )
                )
            except ReproError as error:
                failures.append(ScanFailure(request, str(error), "error", attempts=1))
            else:
                results[request] = value

        await asyncio.gather(*(guarded(request) for request in pending))
        if failures:
            self.metrics.incr("scan_failures", len(failures))
        return ScanOutcome(results, failures)

    async def run_coalesced_async(
        self, requests: Iterable[ScanRequest]
    ) -> ScanOutcome:
        """Coalesced fan-out: one batched round-trip per endpoint, outcome
        expanded back to per-granule shape (see the threaded twin)."""
        outcome = await self.run_async(coalesce_by_endpoint(requests))
        return expand_outcome(outcome, self.metrics)

    async def run_sharded_async(
        self,
        requests: Iterable[ScanRequest],
        plan: ShardPlan,
        preloaded: Optional[Dict[ScanRequest, Any]] = None,
        coalesce: bool = False,
    ) -> ShardedOutcome:
        """Scatter/merge as coroutines — semantics identical to
        :meth:`FederationExecutor.run_sharded` (shared merge helpers)."""
        groups = split_requests(requests, plan)
        known: Dict[ScanRequest, Any] = dict(preloaded or {})
        pending = [
            shard_request
            for shard_requests in groups.values()
            for shard_request in shard_requests
            if shard_request not in known
        ]
        if coalesce:
            outcome = expand_outcome(
                await self.run_async(coalesce_by_endpoint(pending)), self.metrics
            )
        else:
            outcome = await self.run_async(pending)
        known.update(outcome.results)
        merged = merge_outcome(groups, known, outcome.failures)
        for endpoint in merged.missing_endpoints:
            self.metrics.record_missing_shard(endpoint)
        return merged

    # ------------------------------------------------------------------
    # synchronous bridge (what FederationRuntime calls in async mode)
    # ------------------------------------------------------------------
    def run_one(self, request: Scannable) -> Any:
        return self._runner.submit(self.run_one_async(request))

    def run(self, requests: Iterable[Scannable]) -> ScanOutcome:
        return self._runner.submit(self.run_async(requests))

    def run_coalesced(self, requests: Iterable[ScanRequest]) -> ScanOutcome:
        return self._runner.submit(self.run_coalesced_async(requests))

    def run_sharded(
        self,
        requests: Iterable[ScanRequest],
        plan: ShardPlan,
        preloaded: Optional[Dict[ScanRequest, Any]] = None,
        coalesce: bool = False,
    ) -> ShardedOutcome:
        return self._runner.submit(
            self.run_sharded_async(requests, plan, preloaded, coalesce)
        )

    def close(self) -> None:
        """Stop the bridge's event-loop thread (idempotent).

        A shared (caller-supplied) runner is left running — its owner
        closes it."""
        if self._owns_runner:
            self._runner.close()
