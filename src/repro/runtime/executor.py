"""The concurrent executor: fan extent scans out across FSM-agents.

The seed pulled component extents one agent at a time; under per-call
latency a global query over *n* agents paid *n* round-trips in series.
:class:`FederationExecutor` schedules :class:`ScanRequest`\\ s on a
thread pool (bounded by the policy's ``max_workers``) and wraps every
attempt in the full failure model:

* per-call **timeouts** (:class:`~repro.errors.AgentTimeoutError`);
* bounded **retries** with exponential backoff;
* a per-agent **circuit breaker** — persistent failers trip open and
  fast-fail instead of burning timeouts;
* a :class:`ScanOutcome` separating successes from failures so the
  caller's :class:`~repro.runtime.policy.FailurePolicy` can either
  degrade to partial answers or refuse the query.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..errors import (
    AgentTimeoutError,
    CircuitOpenError,
    ReproError,
    TransportError,
)
from .breaker import CircuitBreaker
from .metrics import RuntimeMetrics
from .policy import RuntimePolicy
from .sharding import ShardPlan, ShardedOutcome, merge_outcome, split_requests
from .transport import (
    AgentTransport,
    BatchScanRequest,
    BatchScanResult,
    Scannable,
    ScanRequest,
)


@dataclasses.dataclass(frozen=True)
class ScanFailure:
    """One scan that failed past all retries (or was fast-failed)."""

    request: Scannable
    error: str
    kind: str  # "transport" | "timeout" | "circuit_open" | "error"
    attempts: int

    def describe(self) -> str:
        return f"{self.request.describe()} failed after {self.attempts} attempt(s): {self.error}"


class ScanOutcome:
    """Fan-out result: per-request values plus the failures."""

    def __init__(
        self,
        results: Dict[Scannable, Any],
        failures: Sequence[ScanFailure] = (),
    ) -> None:
        self.results = results
        self.failures = list(failures)

    @property
    def partial(self) -> bool:
        return bool(self.failures)

    def warnings(self) -> List[str]:
        return [failure.describe() for failure in self.failures]


def coalesce_by_endpoint(requests: Iterable[ScanRequest]) -> List[Scannable]:
    """Group granules by endpoint: N granules for one endpoint become one
    :class:`BatchScanRequest` (one round-trip); singletons stay plain.

    Order is preserved — endpoints appear in first-seen order and each
    batch keeps its granules in request order, so results re-key
    deterministically.
    """
    groups: Dict[str, List[ScanRequest]] = {}
    for request in requests:
        groups.setdefault(request.endpoint, []).append(request)
    dispatches: List[Scannable] = []
    for members in groups.values():
        if len(members) == 1:
            dispatches.append(members[0])
        else:
            dispatches.append(BatchScanRequest(tuple(members)))
    return dispatches


def expand_outcome(
    outcome: ScanOutcome, metrics: Optional[RuntimeMetrics] = None
) -> ScanOutcome:
    """Re-key a coalesced fan-out back to per-granule results.

    Batch values are zipped against their granules in batch order; a
    failed batch expands to one :class:`ScanFailure` per granule — the
    exact account of what was lost.  Every lost granule (batched or a
    singleton dispatch) is recorded in the metrics so
    :attr:`RuntimeStats.lost_granules` names them uniformly.
    """
    results: Dict[Scannable, Any] = {}
    failures: List[ScanFailure] = []
    for request, value in outcome.results.items():
        if isinstance(request, BatchScanRequest):
            assert isinstance(value, BatchScanResult)
            for granule, granule_value in zip(request.requests, value.values):
                results[granule] = granule_value
        else:
            results[request] = value
    for failure in outcome.failures:
        if isinstance(failure.request, BatchScanRequest):
            for granule in failure.request.requests:
                failures.append(dataclasses.replace(failure, request=granule))
                if metrics is not None:
                    metrics.record_lost_granule(granule.describe())
        else:
            failures.append(failure)
            if metrics is not None:
                metrics.record_lost_granule(failure.request.describe())
    return ScanOutcome(results, failures)


def _call_with_timeout(fn: Callable[[], Any], timeout: float, agent: str) -> Any:
    """Run *fn* in a helper thread, abandoning it past *timeout* seconds.

    Synchronous transports cannot be interrupted; an overdue call keeps
    running in its daemon thread and its eventual result is discarded —
    the standard thread-pool timeout compromise.
    """
    holder: Dict[str, Any] = {}
    done = threading.Event()

    def target() -> None:
        try:
            holder["value"] = fn()
        except BaseException as error:  # noqa: BLE001 - re-raised below
            holder["error"] = error
        finally:
            done.set()

    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    if not done.wait(timeout):
        raise AgentTimeoutError(agent, timeout)
    if "error" in holder:
        raise holder["error"]
    return holder["value"]


class FederationExecutor:
    """Schedule agent scans under the runtime policy's failure model."""

    def __init__(
        self,
        transport: AgentTransport,
        policy: Optional[RuntimePolicy] = None,
        metrics: Optional[RuntimeMetrics] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.transport = transport
        self.policy = policy or RuntimePolicy()
        self.metrics = metrics or RuntimeMetrics()
        self.breaker = breaker or CircuitBreaker(
            self.policy.breaker_threshold, self.policy.breaker_reset
        )
        self._sleep = sleep

    # ------------------------------------------------------------------
    def _decode(self, value: Any) -> Any:
        """Hook: translate a transport payload to its caller-facing form.

        The threaded transport already answers in instance lists, so the
        base executor passes values through; the multiprocess executor
        overrides this to decode the columnar wire format exactly once,
        at the caller/cache boundary.
        """
        return value

    def run_one(self, request: Scannable) -> Any:
        """One dispatch through the retry / breaker / timeout machinery,
        decoded to caller-facing form."""
        return self._decode(self._run_one_raw(request))

    def _run_one_raw(self, request: Scannable) -> Any:
        """One dispatch, left in the transport's wire form.

        The failure domain is :attr:`ScanRequest.endpoint` — for sharded
        requests that is ``agent#index/of``, so each shard has its own
        circuit and scan histogram.  A :class:`BatchScanRequest` is one
        dispatch (one round-trip, one retry budget) carrying N granules:
        it records one ``round_trips`` tick but N ``agent_scans``, so the
        scan histogram stays comparable across planned and unplanned runs.
        """
        policy = self.policy
        agent = request.endpoint
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_retries + 2):
            if attempt > 1:
                self.metrics.incr("retries")
                self._sleep(policy.backoff(attempt - 1))
            if not self.breaker.allow(agent):
                self.metrics.incr("circuit_rejections")
                raise CircuitOpenError(agent)
            self.metrics.record_round_trip(agent)
            self.metrics.record_agent_scan(agent, count=len(request.granules))
            try:
                if policy.timeout is None:
                    value = self.transport.perform(request)
                else:
                    value = _call_with_timeout(
                        lambda: self.transport.perform(request),
                        policy.timeout,
                        agent,
                    )
            except AgentTimeoutError as error:
                self.metrics.incr("timeouts")
                if self.breaker.record_failure(agent):
                    self.metrics.incr("breaker_trips")
                last_error = error
                continue
            except TransportError as error:
                self.metrics.incr("transport_failures")
                if self.breaker.record_failure(agent):
                    self.metrics.incr("breaker_trips")
                last_error = error
                continue
            self.breaker.record_success(agent)
            return value
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    def run(
        self,
        requests: Iterable[Scannable],
        _run_one: Optional[Callable[[Scannable], Any]] = None,
    ) -> ScanOutcome:
        """Fan *requests* out; never raises for per-scan failures.

        *_run_one* is internal: :meth:`run_sharded` dispatches through
        :meth:`_run_one_raw` so shard slices stay in wire form for the
        array-level merge, decoding once after the fold.
        """
        dispatch = _run_one if _run_one is not None else self.run_one
        pending = list(requests)
        results: Dict[Scannable, Any] = {}
        failures: List[ScanFailure] = []
        if not pending:
            return ScanOutcome(results)

        def guarded(request: Scannable) -> None:
            try:
                value = dispatch(request)
            except CircuitOpenError as error:
                failures.append(
                    ScanFailure(request, str(error), "circuit_open", attempts=0)
                )
            except AgentTimeoutError as error:
                failures.append(
                    ScanFailure(
                        request, str(error), "timeout", self.policy.max_retries + 1
                    )
                )
            except TransportError as error:
                failures.append(
                    ScanFailure(
                        request, str(error), "transport", self.policy.max_retries + 1
                    )
                )
            except ReproError as error:
                failures.append(ScanFailure(request, str(error), "error", attempts=1))
            else:
                results[request] = value

        workers = min(self.policy.max_workers, len(pending))
        if workers <= 1:
            for request in pending:
                guarded(request)
        else:
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="fsm-scan"
            ) as pool:
                list(pool.map(guarded, pending))
        if failures:
            self.metrics.incr("scan_failures", len(failures))
        return ScanOutcome(results, failures)

    # ------------------------------------------------------------------
    def run_coalesced(self, requests: Iterable[ScanRequest]) -> ScanOutcome:
        """Fan *requests* out with scan coalescing: all granules bound for
        one endpoint ride a single batched round-trip, and the outcome is
        expanded back to per-granule results/failures — callers (cache
        fills, failure policies) see exactly the shape :meth:`run` gives.
        """
        outcome = self.run(coalesce_by_endpoint(requests))
        return expand_outcome(outcome, self.metrics)

    # ------------------------------------------------------------------
    def run_sharded(
        self,
        requests: Iterable[ScanRequest],
        plan: ShardPlan,
        preloaded: Optional[Dict[ScanRequest, Any]] = None,
        coalesce: bool = False,
    ) -> ShardedOutcome:
        """Scatter each logical request across *plan*'s shards and merge.

        *preloaded* carries per-shard values already known (warm cache
        entries); only the rest are fanned out — through the same retry
        / breaker / timeout machinery as any scan.  With *coalesce*, the
        pending shard requests are batched per shard endpoint first (all
        of one shard's granules in one round-trip).  The merge dedups by
        OID, and absent slices are reported per logical request and
        recorded in the metrics' missing-shard histogram.
        """
        groups = split_requests(requests, plan)
        known: Dict[ScanRequest, Any] = dict(preloaded or {})
        pending = [
            shard_request
            for shard_requests in groups.values()
            for shard_request in shard_requests
            if shard_request not in known
        ]
        if coalesce:
            outcome = expand_outcome(
                self.run(coalesce_by_endpoint(pending), _run_one=self._run_one_raw),
                self.metrics,
            )
        else:
            outcome = self.run(pending, _run_one=self._run_one_raw)
        known.update(outcome.results)
        merged = merge_outcome(groups, known, outcome.failures)
        # slices were merged in wire form (columnar folds stay on the
        # arrays); decode once here so callers and caches see instances
        for logical, value in list(merged.results.items()):
            merged.results[logical] = self._decode(value)
        for shard_request, value in list(merged.shard_results.items()):
            merged.shard_results[shard_request] = self._decode(value)
        for endpoint in merged.missing_endpoints:
            self.metrics.record_missing_shard(endpoint)
        return merged
