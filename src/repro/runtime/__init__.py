"""Federation runtime: concurrent, fault-tolerant, observable agent access.

The paper's FSM pulls one concept extension per FSM-agent call (§3,
Appendix B); the seed did every pull synchronously with no failure
model.  This package is the distribution/runtime layer between the
query paths and the agents:

* :mod:`~repro.runtime.transport` — the :class:`AgentTransport`
  abstraction: in-process calls or a simulated network with injectable
  latency, drops and flaky agents;
* :mod:`~repro.runtime.executor` — thread-pool fan-out with per-call
  timeouts, bounded exponential-backoff retries and per-agent circuit
  breakers;
* :mod:`~repro.runtime.async_transport` / :mod:`~repro.runtime.async_executor`
  — the asyncio twins: coroutine transports (including a fault-injecting
  simulated network that sleeps on the loop, not a thread) and an
  event-loop executor with ``asyncio.timeout`` deadlines and a
  semaphore-bounded in-flight window, sharing the same policy, breaker
  and metrics objects as the threaded path;
* :mod:`~repro.runtime.columnar` / :mod:`~repro.runtime.mp_executor`
  — the multiprocess data plane: :class:`ColumnarExtent` encodes
  O-term extents as tuples-of-arrays (cheap to pickle, lossless), and
  :class:`MultiprocessFederationExecutor` runs shard scans in
  ``spawn``-ed worker processes that rehydrate the federation's
  source adapters from manifest-vocabulary specs, so CPU-bound
  per-item work escapes the GIL;
* :mod:`~repro.runtime.sharding` — :class:`ShardPlan` /
  :class:`ShardSpec`: split one schema's extent across N shard
  endpoints (hash or range over global OIDs) and merge the slices back
  with OID-level dedup and exact missing-shard reporting;
* :mod:`~repro.runtime.cache` — the ``(agent, schema, class)`` extent
  cache (plus an ``(index, of, kind, band)`` coordinate per shard
  granule) with explicit and generation-based invalidation;
* :mod:`~repro.runtime.persistence` — the sqlite-backed
  :class:`PersistentExtentStore` the cache spills granules into, so a
  federation restarted with the same cache path warms up scan-free;
* :mod:`~repro.runtime.metrics` — counters, phase timers and per-agent
  access histograms behind :class:`RuntimeStats` snapshots;
* :mod:`~repro.runtime.planner` — the query planner: §6 assertion-graph
  pruning applied at query time, scan coalescing into per-endpoint
  :class:`BatchScanRequest` round-trips, and autonomy-preserving
  :class:`ScanHint` pushdown;
* :mod:`~repro.runtime.runtime` — the :class:`FederationRuntime` facade
  the FSM attaches via :meth:`repro.federation.fsm.FSM.use_runtime`.
"""

from .async_executor import AsyncFederationExecutor, EventLoopThread
from .async_transport import (
    AsyncAgentTransport,
    AsyncInProcessTransport,
    AsyncSimulatedNetworkTransport,
    AsyncTransportAdapter,
)
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .cache import MISS, ExtentCache
from .columnar import ColumnarExtent, merge_columnar
from .deltas import (
    DELTA_OPS,
    DeltaLog,
    DeltaOutcome,
    DeltaRecord,
    DeltaReply,
    DeltaUnpatchable,
    SourceDelta,
    describe_granule,
)
from .executor import (
    FederationExecutor,
    ScanFailure,
    ScanOutcome,
    coalesce_by_endpoint,
    expand_outcome,
)
from .metrics import RuntimeMetrics, RuntimeStats, TimerStats
from .mp_executor import (
    MultiprocessFederationExecutor,
    ProcessPoolTransport,
    build_worker_spec,
    wrap_multiprocess,
)
from .persistence import FORMAT_VERSION, PersistentExtentStore
from .planner import QueryPlan, contributing_classes, plan_query
from .policy import FailurePolicy, RuntimePolicy
from .runtime import MODES, FederationRuntime
from .sharding import (
    PLAN_KINDS,
    ShardPlan,
    ShardSpec,
    ShardedOutcome,
    merge_shard_values,
    shard_of_oid,
    split_requests,
)
from .transport import (
    AgentTransport,
    BatchScanRequest,
    BatchScanResult,
    FaultProfile,
    InProcessTransport,
    ScanHint,
    ScanRequest,
    SimulatedNetworkTransport,
    transfer_item_count,
)

__all__ = [
    "AgentTransport",
    "BatchScanRequest",
    "BatchScanResult",
    "AsyncAgentTransport",
    "AsyncFederationExecutor",
    "AsyncInProcessTransport",
    "AsyncSimulatedNetworkTransport",
    "AsyncTransportAdapter",
    "CLOSED",
    "CircuitBreaker",
    "ColumnarExtent",
    "DELTA_OPS",
    "DeltaLog",
    "DeltaOutcome",
    "DeltaRecord",
    "DeltaReply",
    "DeltaUnpatchable",
    "EventLoopThread",
    "ExtentCache",
    "FORMAT_VERSION",
    "FailurePolicy",
    "FaultProfile",
    "FederationExecutor",
    "FederationRuntime",
    "HALF_OPEN",
    "InProcessTransport",
    "MISS",
    "MODES",
    "MultiprocessFederationExecutor",
    "OPEN",
    "PLAN_KINDS",
    "ProcessPoolTransport",
    "PersistentExtentStore",
    "QueryPlan",
    "RuntimeMetrics",
    "RuntimePolicy",
    "RuntimeStats",
    "ScanFailure",
    "ScanHint",
    "ScanOutcome",
    "ScanRequest",
    "ShardPlan",
    "ShardSpec",
    "ShardedOutcome",
    "SimulatedNetworkTransport",
    "SourceDelta",
    "TimerStats",
    "build_worker_spec",
    "coalesce_by_endpoint",
    "contributing_classes",
    "describe_granule",
    "expand_outcome",
    "merge_columnar",
    "merge_shard_values",
    "plan_query",
    "shard_of_oid",
    "split_requests",
    "transfer_item_count",
    "wrap_multiprocess",
]
