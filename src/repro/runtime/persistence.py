"""Persistent extent store: cache granules that survive a restart.

The :class:`~repro.runtime.cache.ExtentCache` amortises the autonomy
cost of the paper's FSM design — every global query pulls single
concept extensions from component agents (§3, Appendix B) — but only
within one process: a restarted federation re-scanned every component
database from cold.  :class:`PersistentExtentStore` is the disk tier
under the cache: granules spill into a sqlite file on ``put`` and are
reloaded on construction, so a federation restarted with the same cache
path warms up without a single agent scan.

Entries are keyed by the **full granule coordinate** — agent, schema,
class, the shard coordinate ``(index, of, kind, band)`` when sharded,
and the ``(op, attribute)`` variant — and stamped with both the cache
generation and the component database ``version`` observed through
:meth:`AgentTransport.generation <repro.runtime.transport.AgentTransport.generation>`
at fill time.  Restored entries therefore obey exactly the live cache's
invalidation rules: a component write after the restart mismatches the
stored source version and forces a rescan, and a persisted
``bump_generation`` strands every older entry.

Entries whose component version was *unobservable* at fill time
(``source_generation is None``) are never spilled: across a restart
there is no way to tell whether the component database changed while
the federation was down, so those granules stay memory-only.

Crash safety:

* every write happens inside a sqlite transaction (the rollback journal
  makes partially-applied writes impossible);
* the file carries a format-version header (the ``meta`` table); a
  mismatch — an old layout, a future one — discards the file instead of
  misreading it;
* a corrupt or non-sqlite file at the cache path is moved aside to
  ``<path>.corrupt`` and the store starts cold (:attr:`recovered` is
  set so callers can report the recovery);
* a row whose pickled value no longer loads is deleted during
  :meth:`load` and simply misses, never poisons, the warm cache.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import threading
from pathlib import Path
from typing import Any, Iterator, List, Optional, Tuple

#: bump when the table layout or the value encoding changes; files
#: written under any other version are discarded, never misread
FORMAT_VERSION = 1

#: one granule coordinate: ``(agent, schema, class)`` or
#: ``(agent, schema, class, (index, of, kind, band))``
GranuleKey = Tuple[Any, ...]

#: one entry within a granule: ``(op, attribute)``
Variant = Tuple[str, Optional[str]]

#: a restored entry: key, variant, value, cache generation, source generation
StoredEntry = Tuple[GranuleKey, Variant, Any, int, Optional[int]]

_SHARD_SEPARATOR = "/"

_TABLES = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS granules (
        agent             TEXT NOT NULL,
        schema_name       TEXT NOT NULL,
        class_name        TEXT NOT NULL,
        shard             TEXT NOT NULL,
        op                TEXT NOT NULL,
        attribute         TEXT NOT NULL,
        value             BLOB NOT NULL,
        cache_generation  INTEGER NOT NULL,
        source_generation INTEGER NOT NULL,
        PRIMARY KEY (agent, schema_name, class_name, shard, op, attribute)
    )
    """,
)


def _encode_shard(key: GranuleKey) -> str:
    """The shard column: ``''`` unsharded, ``index/of/kind/band`` sharded."""
    if len(key) <= 3:
        return ""
    index, of, kind, band = key[3]
    return _SHARD_SEPARATOR.join((str(index), str(of), kind, str(band)))


def _decode_key(agent: str, schema_name: str, class_name: str, shard: str) -> GranuleKey:
    if not shard:
        return (agent, schema_name, class_name)
    index, of, kind, band = shard.split(_SHARD_SEPARATOR)
    return (agent, schema_name, class_name, (int(index), int(of), kind, int(band)))


class PersistentExtentStore:
    """A sqlite-backed spill target for :class:`ExtentCache` granules.

    Thread-safe: one connection guarded by a lock (the cache already
    serializes its calls, but the store is usable standalone).  All
    writes commit transactionally; see the module docstring for the
    crash-safety contract.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        #: True when a corrupt or mismatched file was moved aside and
        #: the store started cold instead of warm
        self.recovered = False
        self._lock = threading.Lock()
        self._conn = self._open()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(str(self.path), check_same_thread=False)
        connection.execute("PRAGMA synchronous=NORMAL")
        return connection

    def _initialise(self, connection: sqlite3.Connection) -> None:
        with connection:
            for statement in _TABLES:
                connection.execute(statement)
            connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('format', ?)",
                (FORMAT_VERSION,),
            )
            connection.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('generation', 0)"
            )

    def _validate(self, connection: sqlite3.Connection) -> None:
        """Raise :class:`sqlite3.DatabaseError` unless the file is ours."""
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'format'"
        ).fetchone()
        if row is None or row[0] != FORMAT_VERSION:
            raise sqlite3.DatabaseError(
                f"extent store format {row[0] if row else 'missing'!r} "
                f"!= {FORMAT_VERSION}"
            )

    def _open(self) -> sqlite3.Connection:
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        connection: Optional[sqlite3.Connection] = None
        try:
            connection = self._connect()
            if fresh:
                self._initialise(connection)
            else:
                self._validate(connection)
            return connection
        except sqlite3.DatabaseError:
            # corrupt file, foreign sqlite layout, or a format-version
            # mismatch: move the evidence aside and start cold
            if connection is not None:
                connection.close()
            os.replace(self.path, self.path.with_name(self.path.name + ".corrupt"))
            self.recovered = True
            connection = self._connect()
            self._initialise(connection)
            return connection

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------
    # generation header
    # ------------------------------------------------------------------
    def generation(self) -> int:
        """The persisted cache generation (0 on a fresh store)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'generation'"
            ).fetchone()
            return int(row[0]) if row is not None else 0

    def set_generation(self, generation: int) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('generation', ?)",
                (generation,),
            )

    # ------------------------------------------------------------------
    # entries
    # ------------------------------------------------------------------
    def load(self) -> Iterator[StoredEntry]:
        """Yield every live entry; purge stale and unreadable rows.

        Rows from an older cache generation are already invalid under
        the cache's rules, so they are deleted instead of restored; a
        row whose pickled value fails to load is likewise deleted (one
        bad granule costs one cold scan, not the whole warm start).
        """
        with self._lock, self._conn:
            generation = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'generation'"
            ).fetchone()
            current = int(generation[0]) if generation is not None else 0
            self._conn.execute(
                "DELETE FROM granules WHERE cache_generation != ?", (current,)
            )
            rows = self._conn.execute(
                "SELECT agent, schema_name, class_name, shard, op, attribute,"
                "       value, cache_generation, source_generation FROM granules"
            ).fetchall()
            doomed: List[Tuple[str, str, str, str, str, str]] = []
            entries: List[StoredEntry] = []
            for row in rows:
                (agent, schema_name, class_name, shard, op, attribute,
                 blob, cache_generation, source_generation) = row
                try:
                    value = pickle.loads(blob)
                except Exception:  # noqa: BLE001 - any undecodable row is dropped
                    doomed.append(
                        (agent, schema_name, class_name, shard, op, attribute)
                    )
                    continue
                entries.append(
                    (
                        _decode_key(agent, schema_name, class_name, shard),
                        (op, attribute or None),
                        value,
                        int(cache_generation),
                        int(source_generation),
                    )
                )
            for coordinates in doomed:
                self._conn.execute(
                    "DELETE FROM granules WHERE agent = ? AND schema_name = ? "
                    "AND class_name = ? AND shard = ? AND op = ? AND attribute = ?",
                    coordinates,
                )
        return iter(entries)

    def put(
        self,
        key: GranuleKey,
        variant: Variant,
        value: Any,
        cache_generation: int,
        source_generation: int,
    ) -> None:
        op, attribute = variant
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO granules (agent, schema_name, class_name,"
                " shard, op, attribute, value, cache_generation, source_generation)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    key[0],
                    key[1],
                    key[2],
                    _encode_shard(key),
                    op,
                    attribute or "",
                    pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
                    cache_generation,
                    source_generation,
                ),
            )

    def delete(self, key: GranuleKey, variant: Variant) -> None:
        """Drop one ``(op, attribute)`` entry of one granule."""
        op, attribute = variant
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM granules WHERE agent = ? AND schema_name = ? "
                "AND class_name = ? AND shard = ? AND op = ? AND attribute = ?",
                (key[0], key[1], key[2], _encode_shard(key), op, attribute or ""),
            )

    def delete_granule(self, key: GranuleKey) -> None:
        """Drop every variant of one granule coordinate."""
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM granules WHERE agent = ? AND schema_name = ? "
                "AND class_name = ? AND shard = ?",
                (key[0], key[1], key[2], _encode_shard(key)),
            )

    def clear(self) -> None:
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM granules")

    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute("SELECT COUNT(*) FROM granules").fetchone()
            return int(row[0])
