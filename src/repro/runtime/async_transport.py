"""Asyncio agent transports: coroutine-shaped access to FSM-agents.

The threaded executor needs one OS thread per in-flight scan; to
multiplex thousands of slow agents from one process the transport layer
must *suspend* instead of *block*.  :class:`AsyncAgentTransport` is the
coroutine twin of :class:`~repro.runtime.transport.AgentTransport`:
``perform`` is ``async`` while the cheap metadata lookups
(:meth:`agent_names`, :meth:`agent_for_schema`, :meth:`generation`)
stay synchronous so the :class:`~repro.runtime.runtime.FederationRuntime`
facade and the :class:`~repro.runtime.cache.ExtentCache` work unchanged
across modes.

Three implementations ship:

* :class:`AsyncInProcessTransport` — direct calls against registered
  agents (extent scans are CPU-bound and fast; no suspension needed);
* :class:`AsyncSimulatedNetworkTransport` — injects per-agent latency,
  jitter, drops and scripted failures through ``await asyncio.sleep``,
  reusing the existing :class:`~repro.runtime.transport.FaultProfile`
  vocabulary — 256 sleeping agents cost 256 timers, not 256 threads;
* :class:`AsyncTransportAdapter` — lifts any synchronous transport into
  the async protocol (its ``perform`` must not block the loop; wrap
  latency simulation with :class:`AsyncSimulatedNetworkTransport`
  instead of the thread-sleeping simulator).
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import threading
from collections import defaultdict
from typing import Any, Dict, Mapping, Optional, Tuple

from ..federation.agent import FSMAgent
from ..errors import TransportError
from .transport import (
    MAX_SCRIPT_ENTRIES,
    AgentTransport,
    FaultProfile,
    InProcessTransport,
    Scannable,
    ScanRequest,
    _prune_scripts,
    transfer_item_count,
)


class AsyncAgentTransport:
    """Protocol: route :class:`ScanRequest`\\ s to agents as coroutines."""

    def agent_names(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def agent_for_schema(self, schema_name: str) -> str:
        """The agent hosting *schema_name* (synchronous metadata lookup)."""
        raise NotImplementedError

    def generation(self, request: ScanRequest) -> Optional[int]:
        """Backing-store version for *request*, or None when unobservable."""
        return None

    def changes(self, request: ScanRequest, since: int) -> Optional[Any]:
        """Delta chain from *since* (synchronous control-plane lookup)."""
        return None

    async def perform(self, request: Scannable) -> Any:
        """Execute the scan (or coalesced batch) and return its raw value."""
        raise NotImplementedError


class AsyncTransportAdapter(AsyncAgentTransport):
    """Lift a synchronous :class:`AgentTransport` into the async protocol.

    The wrapped ``perform`` runs inline on the event loop — correct for
    in-process scans, wrong for anything that blocks (a
    :class:`~repro.runtime.transport.SimulatedNetworkTransport` with
    latency would stall every other coroutine; use
    :class:`AsyncSimulatedNetworkTransport` for fault injection).
    """

    def __init__(self, inner: AgentTransport) -> None:
        self.inner = inner

    def agent_names(self) -> Tuple[str, ...]:
        return self.inner.agent_names()

    def agent_for_schema(self, schema_name: str) -> str:
        return self.inner.agent_for_schema(schema_name)

    def generation(self, request: ScanRequest) -> Optional[int]:
        return self.inner.generation(request)

    def changes(self, request: ScanRequest, since: int) -> Optional[Any]:
        return self.inner.changes(request, since)

    async def perform(self, request: Scannable) -> Any:
        return self.inner.perform(request)


class AsyncInProcessTransport(AsyncTransportAdapter):
    """Direct coroutine calls against live :class:`FSMAgent` objects."""

    def __init__(
        self,
        agents: Mapping[str, FSMAgent],
        schema_host: Optional[Mapping[str, str]] = None,
    ) -> None:
        super().__init__(InProcessTransport(agents, schema_host))


class AsyncSimulatedNetworkTransport(AsyncAgentTransport):
    """Fault injection for the asyncio path: latency without threads.

    Mirrors :class:`~repro.runtime.transport.SimulatedNetworkTransport`
    — the same per-agent :class:`FaultProfile`\\ s, the same seeded
    reproducibility — but the delay is ``await asyncio.sleep``, so a
    fleet of slow agents shares one event loop.  Cancellation is
    first-class: a coroutine cancelled mid-flight (deadline, shutdown)
    is counted in :attr:`cancelled` and never in :attr:`completed`,
    which the cancellation tests use to prove overdue scans really die.

    Bookkeeping is guarded by a :class:`threading.Lock` held only across
    non-awaiting sections, so one instance may also serve transports
    driven from several loops or threads in tests.
    """

    def __init__(
        self,
        inner: AsyncAgentTransport,
        default_profile: Optional[FaultProfile] = None,
        seed: int = 0,
    ) -> None:
        self._inner = inner
        self._default = default_profile or FaultProfile()
        self._profiles: Dict[str, FaultProfile] = {}
        self._attempts: Dict[Tuple[Any, ...], int] = defaultdict(int)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: calls that reached this transport, per agent (faults included)
        self.calls: Dict[str, int] = defaultdict(int)
        #: calls whose coroutine was cancelled mid-flight, per agent
        self.cancelled: Dict[str, int] = defaultdict(int)
        #: calls that ran to a successful return (faulted calls are the
        #: remainder: ``calls - completed - cancelled``)
        self.completed: Dict[str, int] = defaultdict(int)
        #: granules that arrived carrying a planner pushdown hint
        self.hints: Dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    def set_profile(self, agent: str, profile: FaultProfile) -> FaultProfile:
        """Install *profile* for an agent name or shard endpoint name."""
        self._profiles[agent] = profile
        return profile

    def profile_for(self, endpoint: str) -> FaultProfile:
        """Endpoint profile, falling back to the base agent's, then the
        default."""
        if endpoint in self._profiles:
            return self._profiles[endpoint]
        base = endpoint.split("#", 1)[0]
        return self._profiles.get(base, self._default)

    def reset_scripts(self) -> None:
        """Forget scripted-failure attempt counters (fresh fault run)."""
        with self._lock:
            self._attempts.clear()

    # ------------------------------------------------------------------
    def agent_names(self) -> Tuple[str, ...]:
        return self._inner.agent_names()

    def agent_for_schema(self, schema_name: str) -> str:
        return self._inner.agent_for_schema(schema_name)

    def generation(self, request: ScanRequest) -> Optional[int]:
        return self._inner.generation(request)

    def changes(self, request: ScanRequest, since: int) -> Optional[Any]:
        # control-plane, like generation(): no latency or fault injection
        return self._inner.changes(request, since)

    async def perform(self, request: Scannable) -> Any:
        endpoint = request.endpoint
        profile = self.profile_for(endpoint)
        with self._lock:
            self.calls[endpoint] += 1
            for granule in request.granules:
                if granule.hint is not None:
                    self.hints[endpoint] += 1
            if profile.fail_times > 0:
                # mirror the threaded simulator: attempt history only for
                # scripted endpoints, bounded so it cannot grow forever
                key = dataclasses.astuple(request)
                self._attempts[key] += 1
                attempt = self._attempts[key]
                _prune_scripts(self._attempts, MAX_SCRIPT_ENTRIES)
            else:
                attempt = 1
            jitter = self._rng.random() * profile.jitter if profile.jitter else 0.0
            dropped = (
                profile.drop_rate > 0.0 and self._rng.random() < profile.drop_rate
            )
        delay = profile.latency + jitter
        try:
            if delay > 0.0:
                await asyncio.sleep(delay)
            if attempt <= profile.fail_times:
                raise TransportError(
                    f"injected failure {attempt}/{profile.fail_times} from agent "
                    f"{endpoint!r} ({request.describe()})"
                )
            if dropped:
                raise TransportError(
                    f"reply from agent {endpoint!r} dropped "
                    f"({request.describe()})"
                )
            value = await self._inner.perform(request)
            if profile.per_item > 0.0:
                transfer = transfer_item_count(value) * profile.per_item
                if transfer > 0.0:
                    await asyncio.sleep(transfer)
        except asyncio.CancelledError:
            with self._lock:
                self.cancelled[endpoint] += 1
            raise
        with self._lock:
            self.completed[endpoint] += 1
        return value
