"""Per-agent circuit breakers.

A component system that keeps failing should stop being hammered: after
*threshold* consecutive failures an agent's circuit **opens** and calls
fast-fail with :class:`~repro.errors.CircuitOpenError` instead of
burning a timeout each.  After *reset_timeout* seconds the circuit goes
**half-open**: one probe call is let through; success closes the
circuit, failure re-opens it for another full window.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class _AgentCircuit:
    __slots__ = ("failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at: float = -1.0  # < 0 means closed
        self.probing = False


class CircuitBreaker:
    """Thread-safe consecutive-failure breaker over a set of agents."""

    def __init__(
        self,
        threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._circuits: Dict[str, _AgentCircuit] = {}
        self._lock = threading.Lock()

    def _circuit(self, agent: str) -> _AgentCircuit:
        circuit = self._circuits.get(agent)
        if circuit is None:
            circuit = self._circuits[agent] = _AgentCircuit()
        return circuit

    # ------------------------------------------------------------------
    def allow(self, agent: str) -> bool:
        """May a call to *agent* proceed right now?

        While open, returns False until the reset window elapses, then
        admits exactly one probe (half-open) at a time.
        """
        with self._lock:
            circuit = self._circuit(agent)
            if circuit.opened_at < 0:
                return True
            if self._clock() - circuit.opened_at < self.reset_timeout:
                return False
            if circuit.probing:
                return False
            circuit.probing = True
            return True

    def record_success(self, agent: str) -> None:
        with self._lock:
            circuit = self._circuit(agent)
            circuit.failures = 0
            circuit.opened_at = -1.0
            circuit.probing = False

    def record_failure(self, agent: str) -> bool:
        """Count one failure; returns True when this call tripped the circuit."""
        with self._lock:
            circuit = self._circuit(agent)
            circuit.failures += 1
            was_open = circuit.opened_at >= 0
            if circuit.failures >= self.threshold or circuit.probing:
                circuit.opened_at = self._clock()
                circuit.probing = False
                return not was_open
            return False

    # ------------------------------------------------------------------
    def state(self, agent: str) -> str:
        with self._lock:
            circuit = self._circuits.get(agent)
            if circuit is None or circuit.opened_at < 0:
                return CLOSED
            if self._clock() - circuit.opened_at >= self.reset_timeout:
                return HALF_OPEN
            return OPEN

    def states(self) -> Dict[str, str]:
        return {agent: self.state(agent) for agent in tuple(self._circuits)}

    def reset(self, agent: str = "") -> None:
        """Force-close one agent's circuit (or all, with no argument)."""
        with self._lock:
            agents: Tuple[str, ...] = (agent,) if agent else tuple(self._circuits)
            for name in agents:
                if name in self._circuits:
                    self._circuits[name] = _AgentCircuit()
