"""Per-agent circuit breakers.

A component system that keeps failing should stop being hammered: after
*threshold* consecutive failures an agent's circuit **opens** and calls
fast-fail with :class:`~repro.errors.CircuitOpenError` instead of
burning a timeout each.  After *reset_timeout* seconds the circuit goes
**half-open**: one probe call is let through; success closes the
circuit, failure re-opens it for another full window.

The half-open probe is a *lease*, not a flag.  A plain "probing" boolean
deadlocks under asyncio: a probe coroutine cancelled between
:meth:`CircuitBreaker.allow` and its ``record_*`` call would leave the
flag set forever and no probe would ever run again.  Instead, an
admitted probe holds the slot only until *probe_lease* seconds elapse;
an abandoned (cancelled, crashed, lost) probe expires and the next
caller may probe.  Callers that know they were cancelled can release
the slot early with :meth:`abandon_probe`.  All state is guarded by one
lock and keyed by agent name — safe for any mix of threads and
coroutines, with no thread- or task-local assumptions.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class _AgentCircuit:
    __slots__ = ("failures", "opened_at", "probe_expires_at")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at: float = -1.0  # < 0 means closed
        self.probe_expires_at: float = -1.0  # < 0 means no probe in flight


class CircuitBreaker:
    """Consecutive-failure breaker over a set of agents.

    Safe to share between the threaded and the asyncio executors: every
    transition happens under one :class:`threading.Lock` with no
    blocking call inside, so coroutines never yield while holding it.
    """

    def __init__(
        self,
        threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        probe_lease: Optional[float] = None,
    ) -> None:
        self.threshold = threshold
        self.reset_timeout = reset_timeout
        #: seconds an admitted half-open probe may stay unreported before
        #: its slot is considered abandoned (defaults to reset_timeout)
        self.probe_lease = reset_timeout if probe_lease is None else probe_lease
        self._clock = clock
        self._circuits: Dict[str, _AgentCircuit] = {}
        self._lock = threading.Lock()

    def _circuit(self, agent: str) -> _AgentCircuit:
        circuit = self._circuits.get(agent)
        if circuit is None:
            circuit = self._circuits[agent] = _AgentCircuit()
        return circuit

    # ------------------------------------------------------------------
    def allow(self, agent: str) -> bool:
        """May a call to *agent* proceed right now?

        While open, returns False until the reset window elapses, then
        admits exactly one live probe (half-open) at a time; a probe
        whose lease expired no longer blocks the slot.
        """
        with self._lock:
            circuit = self._circuit(agent)
            if circuit.opened_at < 0:
                return True
            now = self._clock()
            if now - circuit.opened_at < self.reset_timeout:
                return False
            if now < circuit.probe_expires_at:
                return False
            circuit.probe_expires_at = now + self.probe_lease
            return True

    def record_success(self, agent: str) -> None:
        with self._lock:
            circuit = self._circuit(agent)
            circuit.failures = 0
            circuit.opened_at = -1.0
            circuit.probe_expires_at = -1.0

    def record_failure(self, agent: str) -> bool:
        """Count one failure; returns True when this call tripped the circuit."""
        with self._lock:
            circuit = self._circuit(agent)
            circuit.failures += 1
            was_open = circuit.opened_at >= 0
            probing = circuit.probe_expires_at >= 0
            if circuit.failures >= self.threshold or probing:
                circuit.opened_at = self._clock()
                circuit.probe_expires_at = -1.0
                return not was_open
            return False

    def abandon_probe(self, agent: str) -> None:
        """Release a half-open probe slot without recording an outcome.

        Cancellation handlers call this when a probe coroutine is torn
        down between :meth:`allow` and its ``record_*`` call, so the
        next caller may probe immediately instead of waiting out the
        lease.  The circuit stays open with its original timestamp.
        """
        with self._lock:
            circuit = self._circuits.get(agent)
            if circuit is not None:
                circuit.probe_expires_at = -1.0

    # ------------------------------------------------------------------
    def state(self, agent: str) -> str:
        with self._lock:
            circuit = self._circuits.get(agent)
            if circuit is None or circuit.opened_at < 0:
                return CLOSED
            if self._clock() - circuit.opened_at >= self.reset_timeout:
                return HALF_OPEN
            return OPEN

    def states(self) -> Dict[str, str]:
        return {agent: self.state(agent) for agent in tuple(self._circuits)}

    def reset(self, agent: str = "") -> None:
        """Force-close one agent's circuit (or all, with no argument)."""
        with self._lock:
            agents: Tuple[str, ...] = (agent,) if agent else tuple(self._circuits)
            for name in agents:
                if name in self._circuits:
                    self._circuits[name] = _AgentCircuit()
