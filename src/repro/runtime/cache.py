"""The extent cache: repeated global queries stop re-scanning locals.

Every :meth:`FSM.query <repro.federation.fsm.FSM.query>` builds a fresh
engine, and the seed re-lifted every component extent each time — N
agent scans per query forever.  :class:`ExtentCache` memoizes scan
results keyed by the ``(agent, schema, class)`` granule (each granule
holding its ``(op, attribute)`` variants), with two invalidation paths:

* **explicit** — :meth:`invalidate` by agent / schema / class, or
  :meth:`clear`;  sharded scans key a *fourth* coordinate —
  ``(agent, schema, class, (index, of, kind, band))`` — and the
  coordinate match deliberately ignores it, so
  ``invalidate(class_name="person")`` drops every shard granule of that
  class, never just the unsharded one;
* **generation-based** — entries record the component database's
  ``version`` at fill time (via the transport) plus the cache's own
  generation counter; a database write or a :meth:`bump_generation`
  makes the stale entry miss and evicts it lazily.

With a :class:`~repro.runtime.persistence.PersistentExtentStore`
attached, granules additionally spill to disk on :meth:`put` and are
reloaded on construction — a restarted federation warms up without an
agent scan — while every invalidation path above (explicit drops, stale
evictions, generation bumps) writes through, so the disk tier can never
resurrect an entry the in-memory tier already condemned.  Entries whose
component version was unobservable at fill time stay memory-only: after
a restart their freshness could not be checked.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, ContextManager, Dict, Mapping, Optional, Tuple

from .deltas import (
    ChainFetcher,
    DeltaOutcome,
    DeltaUnpatchable,
    chain_is_contiguous,
    describe_granule,
    patch_variant,
)
from .transport import ScanRequest

if TYPE_CHECKING:
    from .metrics import RuntimeMetrics
    from .persistence import PersistentExtentStore

_MISS = object()


class _Entry:
    __slots__ = ("value", "cache_generation", "source_generation")

    def __init__(
        self, value: Any, cache_generation: int, source_generation: Optional[int]
    ) -> None:
        self.value = value
        self.cache_generation = cache_generation
        self.source_generation = source_generation


def _copy(value: Any) -> Any:
    """Shallow-copy container results so callers cannot mutate the cache."""
    if isinstance(value, list):
        return list(value)
    if isinstance(value, (set, frozenset)):
        return set(value)
    if isinstance(value, Mapping):
        return dict(value)
    return value


class ExtentCache:
    """Thread-safe scan cache keyed by ``(agent, schema, class)`` —
    plus an ``(index, of, kind, band)`` shard coordinate for sharded
    granules — optionally backed by a persistent on-disk store."""

    def __init__(
        self,
        store: Optional["PersistentExtentStore"] = None,
        metrics: Optional["RuntimeMetrics"] = None,
    ) -> None:
        self._granules: Dict[
            Tuple[Any, ...], Dict[Tuple[str, Optional[str]], _Entry]
        ] = {}
        self._generation = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._store = store
        self._metrics = metrics
        #: entries reloaded from the persistent store at construction
        self.restored = 0
        if store is not None:
            with self._persistence_timer():
                self._generation = store.generation()
                for key, variant, value, cache_generation, source_generation in (
                    store.load()
                ):
                    self._granules.setdefault(key, {})[variant] = _Entry(
                        value, cache_generation, source_generation
                    )
                    self.restored += 1

    # ------------------------------------------------------------------
    def _persistence_timer(self) -> ContextManager[None]:
        """Time store traffic under the metrics' ``persistence`` phase."""
        if self._metrics is None:
            return nullcontext()
        return self._metrics.timer("persistence")

    @property
    def persistent(self) -> bool:
        return self._store is not None

    @property
    def generation(self) -> int:
        return self._generation

    def bump_generation(self) -> int:
        """Invalidate everything currently cached (lazily evicted)."""
        with self._lock:
            self._generation += 1
            if self._store is not None:
                with self._persistence_timer():
                    self._store.set_generation(self._generation)
            return self._generation

    def get(
        self, request: ScanRequest, source_generation: Optional[int] = None
    ) -> Any:
        """The cached value for *request*, or :data:`MISS`.

        A hit requires the entry to be from the current cache generation
        and, when *source_generation* is observable, to match the
        component database's version it was filled at.
        """
        key = request.cache_key
        variant = (request.op, request.attribute)
        with self._lock:
            granule = self._granules.get(key)
            entry = granule.get(variant) if granule else None
            if entry is None:
                self.misses += 1
                return _MISS
            stale = entry.cache_generation != self._generation or (
                source_generation is not None
                and entry.source_generation != source_generation
            )
            if stale:
                assert granule is not None
                granule.pop(variant, None)
                if not granule:
                    # an emptied granule dict must not be stranded forever
                    self._granules.pop(key, None)
                if self._store is not None:
                    with self._persistence_timer():
                        self._store.delete(key, variant)
                self.misses += 1
                return _MISS
            self.hits += 1
            return _copy(entry.value)

    def put(
        self, request: ScanRequest, value: Any, source_generation: Optional[int] = None
    ) -> None:
        key = request.cache_key
        variant = (request.op, request.attribute)
        with self._lock:
            granule = self._granules.setdefault(key, {})
            granule[variant] = _Entry(_copy(value), self._generation, source_generation)
            if self._store is not None and source_generation is not None:
                with self._persistence_timer():
                    self._store.put(
                        key, variant, value, self._generation, source_generation
                    )

    # ------------------------------------------------------------------
    # delta feeds (incremental invalidation)
    # ------------------------------------------------------------------
    def apply_deltas(
        self,
        agent: str,
        schema: str,
        target_version: int,
        fetch: ChainFetcher,
    ) -> DeltaOutcome:
        """Patch every stale granule of ``(agent, schema)`` toward
        *target_version* by replaying delta chains, instead of letting
        version-mismatch eviction force full rescans.

        *fetch* is called at most once per distinct stale entry version
        and answers with a :class:`~repro.runtime.deltas.DeltaReply`
        (or ``None`` when the store keeps no feed, which aborts the
        sync untouched).  Variants the chain cannot patch — a sequence
        gap, a rescan marker, a value-set delete — are **individually
        evicted** (memory and persistent tier), never the whole cache:
        the promised fallback is targeted granule invalidation, not a
        generation bump.  Patched entries are written through to the
        persistent store at the new version, so deltas survive a
        restart without an agent scan.
        """
        outcome = DeltaOutcome()
        chains: Dict[int, Any] = {}
        used: set = set()
        with self._lock:
            for key in [
                key
                for key in self._granules
                if key[0] == agent and key[1] == schema
            ]:
                granule = self._granules.get(key)
                if granule is None:
                    continue
                shard_coord = key[3] if len(key) > 3 else None
                for variant in list(granule):
                    entry = granule[variant]
                    if entry.cache_generation != self._generation:
                        continue  # condemned already; get() evicts lazily
                    since = entry.source_generation
                    if since is None or since == target_version:
                        continue
                    if since not in chains:
                        reply = fetch(since)
                        if reply is None:
                            outcome.feed_missing = True
                            return outcome
                        chain = reply.chain
                        if chain is not None and not chain_is_contiguous(
                            chain, since, target_version
                        ):
                            # the chain cannot certify freshness: an
                            # unlogged write slipped past the feed head,
                            # or entries were dropped, duplicated or
                            # reordered on the way here
                            chain = None
                        chains[since] = chain
                    chain = chains[since]
                    description = describe_granule(key, variant)
                    if chain is None:
                        self._evict_variant(key, granule, variant)
                        outcome.fallbacks.append((description, "sequence gap"))
                        continue
                    relevant = [
                        record
                        for delta in chain
                        for record in delta.records
                        if record.relation == key[2]
                    ]
                    try:
                        patch_variant(entry.value, variant, relevant, shard_coord)
                    except DeltaUnpatchable as reason:
                        self._evict_variant(key, granule, variant)
                        outcome.fallbacks.append((description, str(reason)))
                        continue
                    entry.source_generation = target_version
                    outcome.granules_patched += 1
                    if since not in used:
                        used.add(since)
                        outcome.deltas_applied += len(chain)
                    if self._store is not None:
                        with self._persistence_timer():
                            self._store.put(
                                key,
                                variant,
                                entry.value,
                                self._generation,
                                target_version,
                            )
        return outcome

    def _evict_variant(
        self,
        key: Tuple[Any, ...],
        granule: Dict[Tuple[str, Optional[str]], _Entry],
        variant: Tuple[str, Optional[str]],
    ) -> None:
        """Drop one variant (both tiers); the caller holds the lock."""
        granule.pop(variant, None)
        if not granule:
            self._granules.pop(key, None)
        if self._store is not None:
            with self._persistence_timer():
                self._store.delete(key, variant)

    # ------------------------------------------------------------------
    def invalidate(
        self,
        agent: Optional[str] = None,
        schema: Optional[str] = None,
        class_name: Optional[str] = None,
        shard: Optional[Tuple[Any, ...]] = None,
    ) -> int:
        """Drop every granule matching the given coordinates; counts drops.

        Any combination works: ``invalidate(agent="a1")`` drops one
        agent's granules, ``invalidate(schema="S1", class_name="person")``
        one class wherever hosted, ``invalidate()`` everything.  Keys are
        3-tuples for unsharded granules and 4-tuples (the extra element
        being the ``(index, of, kind, band)`` shard coordinate) for
        sharded ones; a coordinate-only match covers *both* shapes, so a
        class-level invalidation can never strand a shard granule.  Pass
        *shard* to narrow the drop to one shard's granules — either the
        legacy ``(index, of)`` pair, matched as a prefix across every
        plan kind and band, or the full 4-tuple for one exact plan.
        """
        probe = tuple(shard) if shard is not None else None
        with self._lock:
            doomed = [
                key
                for key in self._granules
                if (agent is None or key[0] == agent)
                and (schema is None or key[1] == schema)
                and (class_name is None or key[2] == class_name)
                and (
                    probe is None
                    or (len(key) > 3 and tuple(key[3][: len(probe)]) == probe)
                )
            ]
            for key in doomed:
                del self._granules[key]
            if self._store is not None and doomed:
                with self._persistence_timer():
                    for key in doomed:
                        self._store.delete_granule(key)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._granules.clear()
            if self._store is not None:
                with self._persistence_timer():
                    self._store.clear()

    def close(self) -> None:
        """Release the persistent store's connection (no-op when memory-only)."""
        if self._store is not None:
            self._store.close()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(granule) for granule in self._granules.values())


#: sentinel returned by :meth:`ExtentCache.get` on a miss
MISS = _MISS
