"""The extent cache: repeated global queries stop re-scanning locals.

Every :meth:`FSM.query <repro.federation.fsm.FSM.query>` builds a fresh
engine, and the seed re-lifted every component extent each time — N
agent scans per query forever.  :class:`ExtentCache` memoizes scan
results keyed by the ``(agent, schema, class)`` granule (each granule
holding its ``(op, attribute)`` variants), with two invalidation paths:

* **explicit** — :meth:`invalidate` by agent / schema / class, or
  :meth:`clear`;  sharded scans key a *fourth* coordinate —
  ``(agent, schema, class, (index, of))`` — and the coordinate match
  deliberately ignores it, so ``invalidate(class_name="person")`` drops
  every shard granule of that class, never just the unsharded one;
* **generation-based** — entries record the component database's
  ``version`` at fill time (via the transport) plus the cache's own
  generation counter; a database write or a :meth:`bump_generation`
  makes the stale entry miss and evicts it lazily.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from .transport import ScanRequest

_MISS = object()


class _Entry:
    __slots__ = ("value", "cache_generation", "source_generation")

    def __init__(
        self, value: Any, cache_generation: int, source_generation: Optional[int]
    ) -> None:
        self.value = value
        self.cache_generation = cache_generation
        self.source_generation = source_generation


def _copy(value: Any) -> Any:
    """Shallow-copy container results so callers cannot mutate the cache."""
    if isinstance(value, list):
        return list(value)
    if isinstance(value, (set, frozenset)):
        return set(value)
    return value


class ExtentCache:
    """Thread-safe scan cache keyed by ``(agent, schema, class)`` —
    plus a ``(index, of)`` shard coordinate for sharded granules."""

    def __init__(self) -> None:
        self._granules: Dict[
            Tuple[Any, ...], Dict[Tuple[str, Optional[str]], _Entry]
        ] = {}
        self._generation = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._generation

    def bump_generation(self) -> int:
        """Invalidate everything currently cached (lazily evicted)."""
        with self._lock:
            self._generation += 1
            return self._generation

    def get(
        self, request: ScanRequest, source_generation: Optional[int] = None
    ) -> Any:
        """The cached value for *request*, or :data:`MISS`.

        A hit requires the entry to be from the current cache generation
        and, when *source_generation* is observable, to match the
        component database's version it was filled at.
        """
        with self._lock:
            granule = self._granules.get(request.cache_key)
            entry = granule.get((request.op, request.attribute)) if granule else None
            if entry is None:
                self.misses += 1
                return _MISS
            stale = entry.cache_generation != self._generation or (
                source_generation is not None
                and entry.source_generation != source_generation
            )
            if stale:
                assert granule is not None
                granule.pop((request.op, request.attribute), None)
                self.misses += 1
                return _MISS
            self.hits += 1
            return _copy(entry.value)

    def put(
        self, request: ScanRequest, value: Any, source_generation: Optional[int] = None
    ) -> None:
        with self._lock:
            granule = self._granules.setdefault(request.cache_key, {})
            granule[(request.op, request.attribute)] = _Entry(
                _copy(value), self._generation, source_generation
            )

    # ------------------------------------------------------------------
    def invalidate(
        self,
        agent: Optional[str] = None,
        schema: Optional[str] = None,
        class_name: Optional[str] = None,
        shard: Optional[Tuple[int, int]] = None,
    ) -> int:
        """Drop every granule matching the given coordinates; counts drops.

        Any combination works: ``invalidate(agent="a1")`` drops one
        agent's granules, ``invalidate(schema="S1", class_name="person")``
        one class wherever hosted, ``invalidate()`` everything.  Keys are
        3-tuples for unsharded granules and 4-tuples (the extra element
        being the ``(index, of)`` shard coordinate) for sharded ones; a
        coordinate-only match covers *both* shapes, so a class-level
        invalidation can never strand a shard granule.  Pass *shard* to
        narrow the drop to one shard's granules.
        """
        with self._lock:
            doomed = [
                key
                for key in self._granules
                if (agent is None or key[0] == agent)
                and (schema is None or key[1] == schema)
                and (class_name is None or key[2] == class_name)
                and (
                    shard is None
                    or (len(key) > 3 and key[3] == tuple(shard))
                )
            ]
            for key in doomed:
                del self._granules[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._granules.clear()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(granule) for granule in self._granules.values())


#: sentinel returned by :meth:`ExtentCache.get` on a miss
MISS = _MISS
