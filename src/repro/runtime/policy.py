"""Runtime policy: the knobs governing fan-out, failure and caching.

One immutable :class:`RuntimePolicy` travels from the
:class:`~repro.runtime.runtime.FederationRuntime` facade down into the
executor and cache, so a federation can be tuned in one place — worker
count, per-call timeout, retry/backoff schedule, circuit-breaker
thresholds, and what to do when an agent stays down
(:attr:`FailurePolicy.PARTIAL` degrades to partial answers with a
warning; :attr:`FailurePolicy.ERROR` refuses the query).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from ..errors import RuntimeFederationError


class FailurePolicy(enum.Enum):
    """What a fan-out does when an agent fails past all retries."""

    PARTIAL = "partial"  # degrade: answer from surviving agents + warning
    ERROR = "error"  # refuse: raise PartialResultError

    @classmethod
    def coerce(cls, value: "FailurePolicy | str") -> "FailurePolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise RuntimeFederationError(
                f"unknown failure policy {value!r}; choose from "
                f"{sorted(p.value for p in cls)}"
            ) from None


@dataclasses.dataclass(frozen=True)
class RuntimePolicy:
    """Tuning parameters for the federation runtime."""

    #: threads fanning agent scans out; 1 degenerates to the sequential path
    max_workers: int = 8
    #: concurrent in-flight scans the asyncio executor admits (semaphore
    #: width); unlike threads, raising this costs no OS resources
    max_inflight: int = 64
    #: per-call budget in seconds; ``None`` waits forever
    timeout: Optional[float] = None
    #: retries *after* the first attempt of each scan
    max_retries: int = 2
    #: exponential backoff: base * multiplier**retry, capped at backoff_max
    backoff_base: float = 0.005
    backoff_multiplier: float = 2.0
    backoff_max: float = 0.25
    #: behaviour when an agent fails past all retries
    failure_policy: "FailurePolicy | str" = FailurePolicy.PARTIAL
    #: consecutive failures that trip an agent's circuit breaker
    breaker_threshold: int = 5
    #: seconds an open circuit stays closed to traffic before a probe
    breaker_reset: float = 30.0
    #: serve repeated scans from the extent cache
    cache_enabled: bool = True

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise RuntimeFederationError("max_workers must be >= 1")
        if self.max_inflight < 1:
            raise RuntimeFederationError("max_inflight must be >= 1")
        if self.max_retries < 0:
            raise RuntimeFederationError("max_retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise RuntimeFederationError("timeout must be positive (or None)")
        if self.breaker_threshold < 1:
            raise RuntimeFederationError("breaker_threshold must be >= 1")
        object.__setattr__(
            self, "failure_policy", FailurePolicy.coerce(self.failure_policy)
        )

    def backoff(self, retry: int) -> float:
        """Sleep before the (1-based) *retry*-th retry."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier ** max(0, retry - 1),
        )

    @classmethod
    def sequential(cls, **overrides) -> "RuntimePolicy":
        """One worker, no retries — the pre-runtime behaviour, measurable."""
        overrides.setdefault("max_workers", 1)
        overrides.setdefault("max_retries", 0)
        return cls(**overrides)
