"""Extent sharding: N agents each own a slice of one schema's extent.

The paper's FSM layer (§3) binds one agent to one component schema, so
fan-out width is capped by the number of schemas; sharding lifts that
cap by splitting a single class extension across *N* shard endpoints —
the runtime scatters one :class:`~repro.runtime.transport.ScanRequest`
per shard and merges the slices back with OID-level dedup, so answers
scale with data volume instead of schema count.

Two plan kinds partition the global OID space deterministically:

* ``hash`` — a stable CRC32 of the OID's string form modulo the shard
  count: uniform, order-free, the default;
* ``range`` — contiguous bands of the per-relation tuple numbers dealt
  round-robin (band *b*: numbers ``[k·b+1 .. (k+1)·b]`` go to shard
  ``k mod N``), preserving locality of consecutively-issued OIDs.

Both are pure functions of the OID, so the scatter side (the executor)
and the owning side (a transport filtering its extent) agree without
shared state: the whole coordinate travels inside the request as a
:class:`ShardSpec`.  A shard endpoint is named ``agent#index/of`` — the
circuit breaker, the per-agent scan histogram and the fault-injection
profiles all key on that name, so one dead shard trips (and reports)
alone instead of poisoning its siblings.

Merging is the dual of the scatter: extent slices concatenate in shard
order with duplicates dropped by OID (a retried shard, or an overlapping
plan, can never double a fact), value-set slices union.  Missing shards
are reported per logical request so the caller's failure policy can
either refuse or degrade with an exact account of what is absent.
"""

from __future__ import annotations

import dataclasses
import functools
import zlib
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import RuntimeFederationError, ShardMergeError
from .columnar import ColumnarExtent, merge_columnar
from .transport import ScanRequest

#: plan kinds understood by :func:`shard_of_oid`
PLAN_KINDS = ("hash", "range")

#: default contiguous-OID band width of the ``range`` plan
DEFAULT_BAND = 32


#: one entry per distinct relation coordinate; bounded so long-running
#: traffic over ever-new relations (dynamic federations, test churn)
#: cannot grow the memo without limit — eviction only costs a re-CRC
@functools.lru_cache(maxsize=4096)
def _relation_digest(agent: Any, system: Any, database: Any, relation: Any) -> int:
    return zlib.crc32(f"{agent}.{system}.{database}.{relation}".encode("utf-8"))


def _stable_hash(value: Any) -> int:
    """A process-stable hash (``hash()`` is salted per interpreter).

    Real OIDs take a fast path — a memoized CRC of the relation
    coordinate mixed with the tuple number — because ownership tests run
    once per instance per shard, i.e. O(shards × extent) times on the
    hot scatter path; anything else digests its string form.
    """
    number = getattr(value, "number", None)
    relation = getattr(value, "relation", None)
    if isinstance(number, int) and relation is not None:
        digest = _relation_digest(
            getattr(value, "agent", ""),
            getattr(value, "system", ""),
            getattr(value, "database", ""),
            relation,
        )
        # Knuth multiplicative mixing keeps consecutive numbers uniform
        return (digest ^ ((number * 0x9E3779B1) & 0xFFFFFFFF)) & 0xFFFFFFFF
    return zlib.crc32(str(value).encode("utf-8"))


def shard_of_oid(oid: Any, shards: int, kind: str = "hash", band: int = DEFAULT_BAND) -> int:
    """The shard index owning *oid* under a (*shards*, *kind*, *band*) plan.

    ``hash`` plans use a stable digest of the OID's string form; ``range``
    plans deal contiguous bands of the OID tuple *number* round-robin.
    Skolem tokens and other non-OID identities fall back to the hash —
    every identity is owned by exactly one shard either way.
    """
    if shards <= 1:
        return 0
    if kind == "range":
        number = getattr(oid, "number", None)
        if isinstance(number, int):
            return (max(number - 1, 0) // max(band, 1)) % shards
    return _stable_hash(oid) % shards


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One shard's coordinate: slot *index* of *of*, plus the plan rule.

    Carried inside :class:`~repro.runtime.transport.ScanRequest` so any
    transport can decide ownership (:meth:`owns`) without out-of-band
    plan state; hashable, so sharded requests key caches and retry
    scripts like any other request.
    """

    index: int
    of: int
    kind: str = "hash"
    band: int = DEFAULT_BAND

    def __post_init__(self) -> None:
        if self.of < 1:
            raise RuntimeFederationError(f"shard count must be >= 1, got {self.of}")
        if not 0 <= self.index < self.of:
            raise RuntimeFederationError(
                f"shard index {self.index} outside [0, {self.of})"
            )
        if self.kind not in PLAN_KINDS:
            raise RuntimeFederationError(
                f"unknown shard plan kind {self.kind!r}; choose from {PLAN_KINDS}"
            )

    @property
    def suffix(self) -> str:
        """The endpoint suffix: ``#index/of``."""
        return f"#{self.index}/{self.of}"

    def owns(self, oid: Any) -> bool:
        """Does this shard own *oid* under its plan?"""
        return shard_of_oid(oid, self.of, self.kind, self.band) == self.index

    def filter_instances(self, instances: Iterable[Any]) -> List[Any]:
        """The sub-extent this shard serves (instances carry ``.oid``).

        This runs O(shards × extent) times on the scatter path, so the
        ownership test is inlined (one :meth:`owns` call per instance
        would double the cost of sharding a large extent under the GIL);
        it must stay exactly equivalent to :func:`shard_of_oid`.
        """
        if self.of <= 1:
            return list(instances)
        index, of, band = self.index, self.of, max(self.band, 1)
        owned: List[Any] = []
        if self.kind == "range":
            for instance in instances:
                number = getattr(instance.oid, "number", None)
                if isinstance(number, int):
                    owner = (max(number - 1, 0) // band) % of
                else:
                    owner = _stable_hash(instance.oid) % of
                if owner == index:
                    owned.append(instance)
            return owned
        digests: Dict[Tuple[Any, ...], int] = {}
        for instance in instances:
            oid = instance.oid
            number = getattr(oid, "number", None)
            relation = getattr(oid, "relation", None)
            if isinstance(number, int) and relation is not None:
                key = (
                    getattr(oid, "agent", ""),
                    getattr(oid, "system", ""),
                    getattr(oid, "database", ""),
                    relation,
                )
                digest = digests.get(key)
                if digest is None:
                    digest = digests[key] = _relation_digest(*key)
                owner = (
                    (digest ^ ((number * 0x9E3779B1) & 0xFFFFFFFF)) & 0xFFFFFFFF
                ) % of
            else:
                owner = _stable_hash(oid) % of
            if owner == index:
                owned.append(instance)
        return owned


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """How one schema's extents split across *shards* agent endpoints."""

    shards: int
    kind: str = "hash"
    band: int = DEFAULT_BAND

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise RuntimeFederationError(
                f"a shard plan needs >= 1 shards, got {self.shards}"
            )
        if self.kind not in PLAN_KINDS:
            raise RuntimeFederationError(
                f"unknown shard plan kind {self.kind!r}; choose from {PLAN_KINDS}"
            )

    @classmethod
    def coerce(cls, value: "ShardPlan | int | None") -> Optional["ShardPlan"]:
        """Accept a plan, a bare shard count, or None (sharding off)."""
        if value is None or isinstance(value, cls):
            return value
        return cls(int(value))

    def spec(self, index: int) -> ShardSpec:
        return ShardSpec(index, self.shards, self.kind, self.band)

    def specs(self) -> Tuple[ShardSpec, ...]:
        return tuple(self.spec(index) for index in range(self.shards))

    def shard_of(self, oid: Any) -> int:
        return shard_of_oid(oid, self.shards, self.kind, self.band)

    def split(self, request: ScanRequest) -> Tuple[ScanRequest, ...]:
        """One shard-coordinated request per shard of *request*.

        An already-sharded request is returned as-is (idempotent), so
        callers may mix pre-split and logical requests freely.
        """
        if request.shard is not None:
            return (request,)
        return tuple(
            dataclasses.replace(request, shard=spec) for spec in self.specs()
        )


def split_requests(
    requests: Iterable[ScanRequest], plan: ShardPlan
) -> Dict[ScanRequest, Tuple[ScanRequest, ...]]:
    """Map each logical request to its per-shard scatter set (ordered)."""
    return {request: plan.split(request) for request in dict.fromkeys(requests)}


_NO_OID = object()


def merge_shard_values(op: str, slices: Sequence[Any]) -> Any:
    """Fold per-shard scan results back into one logical result.

    Extent slices concatenate in the given (shard) order with OID-level
    dedup — the first occurrence wins, so a shard that answered twice
    (retry races, overlapping plans) can never duplicate a fact.
    Value-set slices union.  An instance without an ``.oid`` cannot be
    keyed and raises :class:`~repro.errors.ShardMergeError` — hashing
    the object itself would silently collapse distinct-but-equal facts.

    When every slice is a :class:`~repro.runtime.columnar.ColumnarExtent`
    (the multiprocess wire format) the fold happens at the array level
    and the merged value stays columnar; the caller decodes once at the
    end.  A mix of columnar and instance-list slices (warm cache next
    to cold worker replies) decodes the columnar slices and merges
    per-instance.
    """
    if op == "value_set":
        merged: set = set()
        for piece in slices:
            merged.update(piece)
        return merged
    if slices and all(isinstance(piece, ColumnarExtent) for piece in slices):
        return merge_columnar(slices)
    seen: set = set()
    result: List[Any] = []
    for piece in slices:
        if isinstance(piece, ColumnarExtent):
            piece = piece.to_instances()
        for instance in piece:
            oid = getattr(instance, "oid", _NO_OID)
            if oid is _NO_OID:
                raise ShardMergeError(op, instance)
            if oid in seen:
                continue
            seen.add(oid)
            result.append(instance)
    return result


@dataclasses.dataclass
class ShardedOutcome:
    """Scatter/merge result: merged values plus an exact absence report.

    ``results`` maps each *logical* request to its merged value (partial
    merges included — ``missing`` says which shard indexes are absent
    from them); ``shard_results`` keeps the raw per-shard values so
    callers can fill shard-granular caches; ``failures`` carries the
    executor's per-scan failure records.
    """

    results: Dict[ScanRequest, Any]
    shard_results: Dict[ScanRequest, Any]
    missing: Dict[ScanRequest, Tuple[int, ...]]
    missing_endpoints: List[str]
    failures: List[Any]

    @property
    def partial(self) -> bool:
        return bool(self.missing)

    def warnings(self) -> List[str]:
        """One message per partially-answered logical request."""
        messages = [
            f"{request.describe()}: missing shard(s) "
            f"{', '.join(str(index) for index in indexes)}"
            for request, indexes in self.missing.items()
        ]
        messages.extend(failure.describe() for failure in self.failures)
        return messages


def merge_outcome(
    groups: Mapping[ScanRequest, Tuple[ScanRequest, ...]],
    values: Mapping[ScanRequest, Any],
    failures: Sequence[Any],
) -> ShardedOutcome:
    """Assemble a :class:`ShardedOutcome` from scatter groups + raw values.

    Shared by the threaded and asyncio executors so both modes merge —
    and report missing shards — identically.
    """
    results: Dict[ScanRequest, Any] = {}
    shard_results: Dict[ScanRequest, Any] = {}
    missing: Dict[ScanRequest, Tuple[int, ...]] = {}
    missing_endpoints: List[str] = []
    for logical, shard_requests in groups.items():
        slices: List[Any] = []
        absent: List[int] = []
        for shard_request in shard_requests:
            if shard_request in values:
                value = values[shard_request]
                shard_results[shard_request] = value
                slices.append(value)
            else:
                spec = shard_request.shard
                absent.append(spec.index if spec is not None else 0)
                missing_endpoints.append(shard_request.endpoint)
        results[logical] = merge_shard_values(logical.op, slices)
        if absent:
            missing[logical] = tuple(absent)
    return ShardedOutcome(
        results, shard_results, missing, missing_endpoints, list(failures)
    )
