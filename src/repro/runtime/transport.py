"""Agent transports: how the runtime reaches FSM-agents.

The paper's FSM pulls one concept extension per agent call (§3,
Appendix B); :class:`AgentTransport` is that call made explicit.  A
:class:`ScanRequest` names the agent, schema, class and operation; the
transport performs it and returns the raw value.

Two implementations ship:

* :class:`InProcessTransport` — direct calls against registered
  :class:`~repro.federation.agent.FSMAgent` objects (the seed behaviour);
* :class:`SimulatedNetworkTransport` — a decorator adding injectable
  per-agent latency, drop probability and scripted failures, so the
  executor's retry / circuit-breaker / partial-result machinery is
  testable without a real network.

A :class:`BatchScanRequest` groups many granules bound for **one**
endpoint into a single round-trip (the query planner's scan
coalescing).  Transports unpack it granule by granule and return a
:class:`BatchScanResult` whose per-granule values align with the batch
order; the fault model of the simulated network applies once per batch
— one latency, one drop roll, one scripted-failure attempt — because a
batch *is* one call on the wire, while the transfer cost still scales
with the total items carried.  A :class:`ScanHint` rides along as an
autonomy-preserving pushdown: agents may use the projected attributes
and equality predicates to narrow their work, but are never required
to — hints are excluded from request equality and cache keys, so a
hinted and an unhinted scan share one cache granule.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
import threading
import time
from collections import defaultdict
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple, Union

from ..errors import RegistrationError, TransportError
from ..federation.agent import FSMAgent

if TYPE_CHECKING:  # sharding imports ScanRequest; only the type flows back
    from .sharding import ShardSpec

#: operations a transport can perform against one class of one schema
_OPS = ("direct_extent", "extent", "value_set")

#: most scripted-failure attempt counters a simulated network retains;
#: the oldest are evicted past this, so long-running traffic over many
#: distinct requests cannot grow the side table without bound
MAX_SCRIPT_ENTRIES = 1024


def _prune_scripts(attempts: Dict[Tuple[Any, ...], int], cap: int) -> None:
    """Evict the oldest attempt counters once *attempts* exceeds *cap*.

    Dicts iterate in insertion order, so the front of the table is the
    least-recently-scripted request set.  Call with the owner's lock held.
    """
    if len(attempts) <= cap:
        return
    for key in list(itertools.islice(iter(attempts), len(attempts) - cap)):
        del attempts[key]


def _value_set_of(instances: Any, attribute: str) -> set:
    """``value_set(att)`` over an instance slice — mirrors
    :meth:`repro.model.database.ObjectDatabase.value_set` flattening."""
    values: set = set()
    for obj in instances:
        value = obj.get(attribute)
        if value is None:
            continue
        if isinstance(value, frozenset):
            values.update(v for v in value if v is not None)
        else:
            values.add(value)
    return values


@dataclasses.dataclass(frozen=True)
class ScanHint:
    """Autonomy-preserving pushdown attached to a scan by the planner.

    *attributes* are the projections the query will read; *equalities*
    are its simple ``attribute = constant`` predicates.  Both are
    **advisory**: an agent may use them to narrow its work, but the
    runtime never relies on the narrowing — per-attribute data mappings
    (fuzzy, conversion functions) translate values between local and
    global vocabularies, so a constant from the global query cannot be
    compared against local values at the agent without breaking
    correctness, and rule bodies may touch attributes the query does
    not name.  Hints therefore never change what a transport returns;
    they only tell the component system what the federation is after.
    """

    attributes: Tuple[str, ...] = ()
    equalities: Tuple[Tuple[str, Any], ...] = ()

    def describe(self) -> str:
        parts = list(self.attributes)
        parts.extend(f"{name}={value!r}" for name, value in self.equalities)
        return f"hint({', '.join(parts)})"


@dataclasses.dataclass(frozen=True)
class ScanRequest:
    """One agent scan: the unit the executor schedules and the cache keys.

    A *shard* coordinate (see :mod:`repro.runtime.sharding`) narrows the
    scan to the slice of the extent that shard owns; unsharded requests
    leave it None and behave exactly as before.  The *hint* carries the
    planner's pushdown and is excluded from equality/hashing so hinted
    and unhinted scans of one granule share cache entries and dedup.
    """

    agent: str
    schema: str
    class_name: str
    op: str = "direct_extent"
    attribute: Optional[str] = None
    shard: Optional["ShardSpec"] = None
    hint: Optional[ScanHint] = dataclasses.field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise TransportError(f"unknown scan op {self.op!r}; choose from {_OPS}")
        if self.op == "value_set" and not self.attribute:
            raise TransportError("value_set scans need an attribute")

    @property
    def endpoint(self) -> str:
        """The failure-domain name: ``agent`` or ``agent#index/of``.

        Circuit breakers, scan histograms and fault profiles key on
        this, so one shard trips and reports independently of its
        siblings, while :attr:`agent` stays the routing key.
        """
        if self.shard is None:
            return self.agent
        return f"{self.agent}{self.shard.suffix}"

    @property
    def cache_key(self) -> Tuple[Any, ...]:
        """The cache granule: ``(agent, schema, class)`` for unsharded
        scans, ``(agent, schema, class, (index, of, kind, band))`` per
        shard.

        The shard coordinate carries the *whole* plan rule, not just the
        slot: a hash plan and a range plan with equal ``index``/``of``
        own different OID subsets, and two range plans differ again by
        band width — collapsing the coordinate to ``(index, of)`` made
        those distinct slices share one granule, so a runtime whose plan
        changed kind or band served stale slices cut under the old plan.
        """
        if self.shard is None:
            return (self.agent, self.schema, self.class_name)
        return (
            self.agent,
            self.schema,
            self.class_name,
            (self.shard.index, self.shard.of, self.shard.kind, self.shard.band),
        )

    def describe(self) -> str:
        suffix = f".{self.attribute}" if self.attribute else ""
        return f"{self.op}({self.endpoint}:{self.schema}.{self.class_name}{suffix})"

    @property
    def granules(self) -> Tuple["ScanRequest", ...]:
        """The cacheable units this dispatch carries (itself)."""
        return (self,)


@dataclasses.dataclass(frozen=True)
class BatchScanRequest:
    """Many granules for **one** endpoint, shipped as one round-trip.

    The planner coalesces every :class:`ScanRequest` bound for the same
    endpoint into one of these; the executor schedules it like any
    other request (one dispatch, one retry budget, one breaker entry),
    and transports unpack it granule by granule.  Results come back as
    a :class:`BatchScanResult` aligned with :attr:`requests`, and the
    caller re-keys them per granule — the cache never sees the batch.
    """

    requests: Tuple[ScanRequest, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise TransportError("a batch scan needs at least one granule")
        endpoints = {request.endpoint for request in self.requests}
        if len(endpoints) > 1:
            raise TransportError(
                "a batch scan targets one endpoint; got "
                + ", ".join(sorted(endpoints))
            )

    @property
    def agent(self) -> str:
        return self.requests[0].agent

    @property
    def endpoint(self) -> str:
        return self.requests[0].endpoint

    @property
    def shard(self) -> Optional["ShardSpec"]:
        return self.requests[0].shard

    @property
    def granules(self) -> Tuple[ScanRequest, ...]:
        """The cacheable units this dispatch carries."""
        return self.requests

    def __len__(self) -> int:
        return len(self.requests)

    def describe(self) -> str:
        ops = ", ".join(
            f"{request.op}:{request.schema}.{request.class_name}"
            + (f".{request.attribute}" if request.attribute else "")
            for request in self.requests
        )
        return f"batch[{len(self.requests)}]({self.endpoint}: {ops})"


@dataclasses.dataclass(frozen=True)
class BatchScanResult:
    """Per-granule values of a batch, aligned with the batch order.

    ``len()`` is the **total item count across granules**, so the
    simulated network's ``per_item`` transfer cost stays honest: a
    batch moves the same data as its granules would separately, it just
    pays latency once.
    """

    values: Tuple[Any, ...]

    def __len__(self) -> int:
        return transfer_item_count(self)


#: anything the executor can dispatch: one granule or a coalesced batch
Scannable = Union[ScanRequest, BatchScanRequest]


def transfer_item_count(result: Any) -> int:
    """Data items a transport reply carries, for ``per_item`` pricing.

    Counts what actually crosses the wire: a batch is the sum of its
    granule payloads (a coalesced round-trip moves the same data as its
    granules would separately — it only pays latency once); ``None``
    carries nothing; a payload advertising ``item_count`` (e.g. a
    :class:`~repro.runtime.columnar.ColumnarExtent`) is priced by that
    count even when it is not sized; only a genuinely opaque payload
    falls back to one item.  Before this helper, any non-sized result —
    including a whole batch value that failed ``len()`` — was silently
    priced as ``per_item * 1``, making coalesced round-trips look
    cheaper than the singleton scans they replaced.
    """
    if result is None:
        return 0
    if isinstance(result, BatchScanResult):
        return sum(transfer_item_count(value) for value in result.values)
    count = getattr(result, "item_count", None)
    if count is not None:
        return int(count)
    try:
        return len(result)
    except TypeError:
        return 1


class AgentTransport:
    """Protocol: route :class:`ScanRequest`\\ s to component systems."""

    def agent_names(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def agent_for_schema(self, schema_name: str) -> str:
        """The agent hosting *schema_name*."""
        raise NotImplementedError

    def generation(self, request: ScanRequest) -> Optional[int]:
        """Backing-store version for *request*, or None when unobservable.

        Caches compare this against the generation an entry was filled
        at, so component-database writes invalidate stale extents.
        """
        return None

    def changes(self, request: ScanRequest, since: int) -> Optional[Any]:
        """The delta chain from *since* to the store's current version.

        A control-plane lookup like :meth:`generation` — cheap, local,
        no fault injection.  Returns ``None`` when the store keeps no
        delta feed at all (the cache then relies on ordinary version-
        mismatch eviction), or a
        :class:`~repro.runtime.deltas.DeltaReply` whose ``chain`` is
        ``None`` when a feed exists but cannot cover the span.
        """
        return None

    def perform(self, request: Scannable) -> Any:
        """Execute the scan (or coalesced batch) and return its raw value."""
        raise NotImplementedError


class InProcessTransport(AgentTransport):
    """Direct calls against live :class:`FSMAgent` objects.

    *agents* may be the FSM's own (mutable) registry — agents registered
    after construction are visible, matching
    :meth:`repro.federation.fsm.FSM.use_runtime` semantics.
    """

    def __init__(
        self,
        agents: Mapping[str, FSMAgent],
        schema_host: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._agents = agents
        self._schema_host = schema_host

    def agent_names(self) -> Tuple[str, ...]:
        return tuple(self._agents)

    def agent_for_schema(self, schema_name: str) -> str:
        if self._schema_host is not None and schema_name in self._schema_host:
            return self._schema_host[schema_name]
        for name, agent in self._agents.items():
            if schema_name in agent.schema_names():
                return name
        raise RegistrationError(f"no registered agent hosts schema {schema_name!r}")

    def _agent(self, name: str) -> FSMAgent:
        try:
            return self._agents[name]
        except KeyError:
            raise RegistrationError(f"no agent {name!r} registered") from None

    def generation(self, request: ScanRequest) -> Optional[int]:
        try:
            return self._agent(request.agent).database(request.schema).version
        except RegistrationError:
            return None

    def changes(self, request: ScanRequest, since: int) -> Optional[Any]:
        try:
            return self._agent(request.agent).fetch_changes(request.schema, since)
        except RegistrationError:
            return None

    def perform(self, request: Scannable) -> Any:
        if isinstance(request, BatchScanRequest):
            # one round-trip on the wire; granule semantics are untouched
            return BatchScanResult(
                tuple(self.perform(granule) for granule in request.requests)
            )
        agent = self._agent(request.agent)
        if request.op == "direct_extent":
            extent = agent.fetch_direct_extent(request.schema, request.class_name)
        elif request.op == "extent":
            extent = agent.fetch_extent(request.schema, request.class_name)
        else:
            assert request.attribute is not None
            if request.shard is None:
                return agent.fetch_value_set(
                    request.schema, request.class_name, request.attribute
                )
            # a shard's value set is computed over the slice it owns, with
            # the same flattening semantics as ObjectDatabase.value_set
            owned = request.shard.filter_instances(
                agent.fetch_extent(request.schema, request.class_name)
            )
            return _value_set_of(owned, request.attribute)
        if request.shard is not None:
            extent = request.shard.filter_instances(extent)
        return extent


@dataclasses.dataclass(frozen=True)
class FaultProfile:
    """Injectable faults for one agent (or shard endpoint) behind the
    simulated network."""

    #: fixed seconds added to every call
    latency: float = 0.0
    #: extra uniform-random seconds on top of the fixed latency
    jitter: float = 0.0
    #: probability a call is dropped (raises TransportError)
    drop_rate: float = 0.0
    #: each distinct request fails its first N attempts, then succeeds —
    #: the deterministic "flaky agent" script retries must ride out
    fail_times: int = 0
    #: seconds per result item (transfer cost) — what sharding amortises:
    #: N concurrent shards each carry ~1/N of the extent
    per_item: float = 0.0


class SimulatedNetworkTransport(AgentTransport):
    """A transport decorator that injects latency, drops and failures.

    Per-agent :class:`FaultProfile`\\ s are installed with
    :meth:`set_profile`; agents without one use *default_profile*.  A
    profile may also target one shard endpoint (``"agent1#2/4"``) — the
    lookup tries the exact endpoint first, then the base agent — so a
    single shard can be killed while its siblings stay healthy.
    Randomness is seeded, so runs are reproducible.
    """

    def __init__(
        self,
        inner: AgentTransport,
        default_profile: Optional[FaultProfile] = None,
        seed: int = 0,
        clock: Any = time.sleep,
    ) -> None:
        self._inner = inner
        self._default = default_profile or FaultProfile()
        self._profiles: Dict[str, FaultProfile] = {}
        self._attempts: Dict[Tuple[Any, ...], int] = defaultdict(int)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._sleep = clock
        #: calls that reached this transport, per agent (injected faults
        #: included) — the "network side" view of the access histogram
        self.calls: Dict[str, int] = defaultdict(int)
        #: granules that arrived carrying a planner pushdown hint, per
        #: endpoint — proves hints reach the wire without changing results
        self.hints: Dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    def set_profile(self, agent: str, profile: FaultProfile) -> FaultProfile:
        """Install *profile* for an agent name or shard endpoint name."""
        self._profiles[agent] = profile
        return profile

    def profile_for(self, endpoint: str) -> FaultProfile:
        """Endpoint profile, falling back to the base agent's, then the
        default."""
        if endpoint in self._profiles:
            return self._profiles[endpoint]
        base = endpoint.split("#", 1)[0]
        return self._profiles.get(base, self._default)

    def reset_scripts(self) -> None:
        """Forget scripted-failure attempt counters (fresh fault run)."""
        with self._lock:
            self._attempts.clear()

    # ------------------------------------------------------------------
    def agent_names(self) -> Tuple[str, ...]:
        return self._inner.agent_names()

    def agent_for_schema(self, schema_name: str) -> str:
        return self._inner.agent_for_schema(schema_name)

    def generation(self, request: ScanRequest) -> Optional[int]:
        return self._inner.generation(request)

    def changes(self, request: ScanRequest, since: int) -> Optional[Any]:
        # control-plane, like generation(): no latency or fault injection
        return self._inner.changes(request, since)

    def perform(self, request: Scannable) -> Any:
        endpoint = request.endpoint
        profile = self.profile_for(endpoint)
        with self._lock:
            self.calls[endpoint] += 1
            for granule in request.granules:
                if granule.hint is not None:
                    self.hints[endpoint] += 1
            if profile.fail_times > 0:
                # only scripted endpoints need per-request attempt history;
                # tracking every healthy request would grow without bound
                key = dataclasses.astuple(request)
                self._attempts[key] += 1
                attempt = self._attempts[key]
                _prune_scripts(self._attempts, MAX_SCRIPT_ENTRIES)
            else:
                attempt = 1
            jitter = self._rng.random() * profile.jitter if profile.jitter else 0.0
            dropped = (
                profile.drop_rate > 0.0 and self._rng.random() < profile.drop_rate
            )
        delay = profile.latency + jitter
        if delay > 0.0:
            self._sleep(delay)
        if attempt <= profile.fail_times:
            raise TransportError(
                f"injected failure {attempt}/{profile.fail_times} from agent "
                f"{endpoint!r} ({request.describe()})"
            )
        if dropped:
            raise TransportError(
                f"reply from agent {endpoint!r} dropped ({request.describe()})"
            )
        result = self._inner.perform(request)
        if profile.per_item > 0.0:
            transfer = transfer_item_count(result) * profile.per_item
            if transfer > 0.0:
                self._sleep(transfer)
        return result
