"""The multiprocess data plane: shard scans in worker processes.

The threaded executor fans scans out over a thread pool, but the §3
per-item work — deserializing rows, coercing types, running the data
mappings, filtering shard ownership — is pure Python and serializes on
the GIL: E-R1/E-R4 show throughput flatlining as workers are added.
``mode="multiprocess"`` moves that work into
:class:`concurrent.futures.ProcessPoolExecutor` workers:

* :func:`build_worker_spec` captures a picklable description of every
  hosted component store — native object databases ship by value, disk
  source adapters ship as their **manifest** description (kind, path,
  declared relations and §3 data mappings in the ``federation.json``
  vocabulary), memory source adapters ship a row snapshot — and each
  worker's initializer rebuilds the agents from that spec, exactly the
  way :func:`repro.sources.manifest.build_adapter` does from a
  manifest entry;
* :class:`ProcessPoolTransport` replaces the innermost
  :class:`~repro.runtime.transport.InProcessTransport` hop of a
  transport chain, dispatching each :class:`Scannable` (a shard
  granule, or one shard's whole coalesced batch) to the pool; extents
  come back as :class:`~repro.runtime.columnar.ColumnarExtent` arrays,
  cheap to pickle across the process boundary.  Control-plane calls —
  ``generation``, ``changes``, agent lookup — stay parent-side, so the
  cache, persistence and delta-feed paths are byte-for-byte the ones
  the threaded runtime uses;
* :class:`MultiprocessFederationExecutor` inherits the retry, backoff,
  deadline (:func:`~repro.runtime.executor._call_with_timeout`) and
  circuit-breaker machinery from the threaded twin unchanged, and
  decodes columnar payloads exactly once at the caller/cache boundary
  (shard merges fold the arrays first, see
  :func:`~repro.runtime.sharding.merge_shard_values`).

Worker snapshots are guarded by **generation staleness**: the spec
records each store's version at build time, and a ``perform`` that
observes a newer parent-side version rebuilds the pool before
dispatching, so a component write is never answered from a stale
worker snapshot.  The pool uses the ``spawn`` start method
unconditionally — the fork-unsafe-by-default semantics of macOS and
Windows — so CI exercises the portable path everywhere.

Worker exceptions are re-raised as plain, single-argument
:class:`~repro.errors.TransportError`\\ s: richer exception types with
multi-argument constructors do not survive the pickle round-trip, and
a worker fault should land on the executor's retry / breaker / lost
granule path exactly like a dropped reply.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..errors import RuntimeFederationError, TransportError
from ..federation.agent import FSMAgent
from .breaker import CircuitBreaker
from .columnar import ColumnarExtent
from .executor import FederationExecutor
from .metrics import RuntimeMetrics
from .policy import RuntimePolicy
from .transport import (
    AgentTransport,
    BatchScanRequest,
    BatchScanResult,
    InProcessTransport,
    Scannable,
)

__all__ = [
    "MultiprocessFederationExecutor",
    "ProcessPoolTransport",
    "build_worker_spec",
    "wrap_multiprocess",
]


# ----------------------------------------------------------------------
# worker bootstrap specs (everything here must pickle under spawn)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ObjectStoreSpec:
    """A native object database, shipped by value (it pickles whole)."""

    schema: str
    database: Any


@dataclasses.dataclass(frozen=True)
class DiskSourceSpec:
    """A disk-backed source adapter as its manifest entry: the worker
    re-opens the same container and re-declares the same relation specs
    and data mappings, in the ``federation.json`` JSON vocabulary."""

    kind: str
    path: str
    name: str
    agent: str
    system: str
    schema: str
    relations: Optional[Tuple[Any, ...]]
    mappings: Optional[Tuple[Tuple[str, Tuple[Any, ...]], ...]]


@dataclasses.dataclass(frozen=True)
class MemorySourceSpec:
    """A memory source adapter: manifest vocabulary plus a row snapshot
    (tombstones included, so tuple numbering — and OIDs — survive)."""

    name: str
    agent: str
    system: str
    schema: str
    relations: Tuple[Any, ...]
    mappings: Optional[Tuple[Tuple[str, Tuple[Any, ...]], ...]]
    rows: Tuple[Tuple[str, Tuple[Optional[Dict[str, Any]], ...]], ...]
    version: int


@dataclasses.dataclass(frozen=True)
class AgentSpec:
    name: str
    system: str
    stores: Tuple[Any, ...]


@dataclasses.dataclass(frozen=True)
class WorkerSpec:
    agents: Tuple[AgentSpec, ...]
    schema_host: Optional[Tuple[Tuple[str, str], ...]]


def _mappings_payload(adapter: Any) -> Optional[Tuple[Tuple[str, Tuple[Any, ...]], ...]]:
    from ..sources.manifest import mapping_to_json

    declared: Mapping[str, Tuple[Any, ...]] = adapter._mappings
    if not declared:
        return None
    return tuple(
        (relation, tuple(mapping_to_json(mapping) for mapping in mappings))
        for relation, mappings in declared.items()
    )


def _store_spec(agent_name: str, schema: str, store: Any) -> Any:
    from ..sources.manifest import relation_to_json

    adapter = getattr(store, "adapter", None)
    if adapter is None:
        return ObjectStoreSpec(schema, store)
    common = dict(
        name=adapter.name,
        agent=adapter.agent,
        system=adapter.system,
        schema=schema,
        mappings=_mappings_payload(adapter),
    )
    if adapter.kind == "memory":
        return MemorySourceSpec(
            relations=tuple(relation_to_json(spec) for spec in adapter.relations()),
            rows=tuple(
                (
                    relation,
                    tuple(
                        dict(row) if row is not None else None for row in slots
                    ),
                )
                for relation, slots in adapter._rows.items()
            ),
            version=adapter.source_version(),
            **common,
        )
    path = getattr(adapter, "path", None) or getattr(adapter, "directory", None)
    if path is None:
        raise RuntimeFederationError(
            f"source adapter {adapter.name!r} (kind {adapter.kind!r}) exposes "
            f"no path/directory; it cannot be rehydrated inside a worker"
        )
    declared = adapter._declared
    return DiskSourceSpec(
        kind=adapter.kind,
        path=str(path),
        relations=(
            tuple(relation_to_json(spec) for spec in declared)
            if declared is not None
            else None
        ),
        **common,
    )


def build_worker_spec(
    agents: Mapping[str, FSMAgent],
    schema_host: Optional[Mapping[str, str]] = None,
) -> Tuple[WorkerSpec, Dict[Tuple[str, str], Optional[int]]]:
    """Snapshot the agent registry into a picklable worker spec.

    Returns the spec plus the ``(agent, schema) → version`` map observed
    at snapshot time — the staleness fingerprint
    :class:`ProcessPoolTransport` compares before every dispatch.
    """
    agent_specs = []
    versions: Dict[Tuple[str, str], Optional[int]] = {}
    for name, agent in dict(agents).items():
        stores = []
        for schema in agent.schema_names():
            store = agent.database(schema)
            stores.append(_store_spec(name, schema, store))
            versions[(name, schema)] = getattr(store, "version", None)
        agent_specs.append(AgentSpec(name, agent.system, tuple(stores)))
    host = tuple(schema_host.items()) if schema_host is not None else None
    return WorkerSpec(tuple(agent_specs), host), versions


# ----------------------------------------------------------------------
# worker side (module-level: spawn pickles these by qualified name)
# ----------------------------------------------------------------------
_WORKER_TRANSPORT: Optional[InProcessTransport] = None


def _rebuild_store(spec: Any) -> Any:
    from ..sources.base import MemorySourceAdapter
    from ..sources.manifest import (
        ADAPTER_KINDS,
        mapping_from_json,
        relation_from_json,
    )

    mappings = (
        {
            relation: [mapping_from_json(payload) for payload in payloads]
            for relation, payloads in spec.mappings
        }
        if spec.mappings is not None
        else None
    )
    if isinstance(spec, MemorySourceSpec):
        adapter = MemorySourceAdapter(
            spec.name,
            {},
            [relation_from_json(payload) for payload in spec.relations],
            mappings=mappings,
            agent=spec.agent,
            system=spec.system,
        )
        adapter._rows = {
            relation: [dict(row) if row is not None else None for row in slots]
            for relation, slots in spec.rows
        }
        adapter._version = spec.version
        return adapter.database(spec.schema)
    adapter_type = ADAPTER_KINDS[spec.kind]
    adapter = adapter_type(
        Path(spec.path),
        name=spec.name,
        agent=spec.agent,
        system=spec.system,
        relations=(
            [relation_from_json(payload) for payload in spec.relations]
            if spec.relations is not None
            else None
        ),
        mappings=mappings,
    )
    return adapter.database(spec.schema)


def _worker_initialize(spec: WorkerSpec) -> None:
    """Per-process bootstrap: rebuild the agents behind a local transport."""
    global _WORKER_TRANSPORT
    agents: Dict[str, FSMAgent] = {}
    for agent_spec in spec.agents:
        agent = FSMAgent(agent_spec.name, system=agent_spec.system)
        for store_spec in agent_spec.stores:
            if isinstance(store_spec, ObjectStoreSpec):
                agent.host_object_database(store_spec.database)
            else:
                agent.host_source(_rebuild_store(store_spec))
        agents[agent_spec.name] = agent
    schema_host = dict(spec.schema_host) if spec.schema_host is not None else None
    _WORKER_TRANSPORT = InProcessTransport(agents, schema_host)


def _encode_payload(request: Scannable, value: Any) -> Any:
    if isinstance(request, BatchScanRequest):
        assert isinstance(value, BatchScanResult)
        return BatchScanResult(
            tuple(
                _encode_payload(granule, granule_value)
                for granule, granule_value in zip(request.requests, value.values)
            )
        )
    if request.op in ("extent", "direct_extent"):
        return ColumnarExtent.from_instances(value)
    return value


def _worker_scan(request: Scannable) -> Any:
    """One scan inside a worker: perform, then encode columnar."""
    transport = _WORKER_TRANSPORT
    if transport is None:  # pragma: no cover - initializer always ran
        raise TransportError("worker process was never initialized")
    try:
        return _encode_payload(request, transport.perform(request))
    except BaseException as error:  # noqa: BLE001 - must cross pickle boundary
        raise TransportError(
            f"worker scan failed ({request.describe()}): "
            f"{type(error).__name__}: {error}"
        ) from None


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ProcessPoolTransport(AgentTransport):
    """Dispatch scans to a spawn-based worker pool; control plane stays local.

    Wraps an :class:`InProcessTransport` (or a chain ending in one):
    ``perform`` ships the :class:`Scannable` to a worker — a coalesced
    :class:`BatchScanRequest` keeps one shard's granules in one task,
    so task batching follows the shard plan — while ``generation`` /
    ``changes`` / agent lookup answer from the parent's live registry.
    """

    def __init__(
        self,
        inner: AgentTransport,
        workers: int = 8,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        self._inner = inner
        self._registry = _find_in_process(inner)
        self._workers = max(1, int(workers))
        # spawn unconditionally: matches macOS/Windows semantics and
        # never inherits the parent's locks mid-flight
        self._context = mp_context or multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._versions: Dict[Tuple[str, str], Optional[int]] = {}
        self._closed = False
        #: pool (re)builds — 1 on first dispatch, +1 per staleness refresh
        self.rebuilds = 0

    # -------------------------------------------------- control plane
    def agent_names(self) -> Tuple[str, ...]:
        return self._inner.agent_names()

    def agent_for_schema(self, schema_name: str) -> str:
        return self._inner.agent_for_schema(schema_name)

    def generation(self, request: Any) -> Optional[int]:
        return self._inner.generation(request)

    def changes(self, request: Any, since: int) -> Optional[Any]:
        return self._inner.changes(request, since)

    # -------------------------------------------------- pool lifecycle
    def _build_pool(self) -> None:
        """(Re)create the pool from a fresh registry snapshot (locked)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        spec, versions = build_worker_spec(
            self._registry._agents, self._registry._schema_host
        )
        self._pool = ProcessPoolExecutor(
            max_workers=self._workers,
            mp_context=self._context,
            initializer=_worker_initialize,
            initargs=(spec,),
        )
        self._versions = versions
        self.rebuilds += 1

    def _stale(self, request: Scannable) -> bool:
        """Did any granule's store move past the worker snapshot?"""
        for granule in request.granules:
            key = (granule.agent, granule.schema)
            current = self._inner.generation(granule)
            if key not in self._versions:
                if current is not None:
                    return True  # registered after the snapshot
                continue
            if self._versions[key] != current:
                return True
        return False

    def perform(self, request: Scannable) -> Any:
        with self._lock:
            if self._closed:
                raise TransportError("multiprocess transport is closed")
            if self._pool is None or self._stale(request):
                self._build_pool()
            pool = self._pool
        assert pool is not None
        try:
            return pool.submit(_worker_scan, request).result()
        except TransportError:
            raise
        except BrokenProcessPool as error:
            raise TransportError(
                f"multiprocess worker pool broke ({request.describe()}): {error}"
            ) from error
        except RuntimeError as error:
            raise TransportError(
                f"multiprocess dispatch failed ({request.describe()}): {error}"
            ) from error

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None


def _find_in_process(transport: Any) -> InProcessTransport:
    """The innermost in-process registry of a transport chain."""
    hop = transport
    while hop is not None:
        if isinstance(hop, InProcessTransport):
            return hop
        hop = getattr(hop, "_inner", None)
    raise RuntimeFederationError(
        "multiprocess mode needs an in-process agent registry at the "
        "bottom of the transport chain to bootstrap its workers"
    )


def wrap_multiprocess(
    transport: AgentTransport, workers: int = 8
) -> AgentTransport:
    """Splice a :class:`ProcessPoolTransport` into *transport*'s chain.

    The innermost :class:`InProcessTransport` hop is replaced, so
    parent-side wrappers (e.g. a
    :class:`~repro.runtime.transport.SimulatedNetworkTransport` pricing
    latency and per-item transfer) keep observing every dispatch.
    Idempotent: a chain that already dispatches to a pool is returned
    unchanged.
    """
    hop: Any = transport
    while hop is not None:
        if isinstance(hop, ProcessPoolTransport):
            return transport
        hop = getattr(hop, "_inner", None)
    if isinstance(transport, InProcessTransport):
        return ProcessPoolTransport(transport, workers=workers)
    hop = transport
    while True:
        inner = getattr(hop, "_inner", None)
        if inner is None:
            raise RuntimeFederationError(
                "multiprocess mode needs an in-process agent registry at "
                "the bottom of the transport chain to bootstrap its workers"
            )
        if isinstance(inner, InProcessTransport):
            hop._inner = ProcessPoolTransport(inner, workers=workers)
            return transport
        hop = inner


def _find_pool(transport: Any) -> ProcessPoolTransport:
    hop = transport
    while hop is not None:
        if isinstance(hop, ProcessPoolTransport):
            return hop
        hop = getattr(hop, "_inner", None)
    raise RuntimeFederationError(
        "no ProcessPoolTransport in the transport chain; wrap it with "
        "wrap_multiprocess() first"
    )


class MultiprocessFederationExecutor(FederationExecutor):
    """The threaded executor's failure model over a worker-process pool.

    Retries, backoff, per-call deadlines and the circuit breaker are
    inherited unchanged — the pool hop raises the same
    :class:`~repro.errors.TransportError` taxonomy the simulated
    network does.  The only override is the decode boundary: columnar
    payloads become instance lists exactly once, after shard merges
    have folded the arrays.
    """

    def __init__(
        self,
        transport: AgentTransport,
        policy: Optional[RuntimePolicy] = None,
        metrics: Optional[RuntimeMetrics] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__(transport, policy, metrics, breaker, sleep)
        self._pool_transport = _find_pool(transport)

    def _decode(self, value: Any) -> Any:
        if isinstance(value, ColumnarExtent):
            return value.to_instances()
        if isinstance(value, BatchScanResult):
            return BatchScanResult(
                tuple(self._decode(granule_value) for granule_value in value.values)
            )
        return value

    def close(self) -> None:
        self._pool_transport.close()
