"""Delta feeds: component writes patch cached extents instead of nuking them.

Until now every component write invalidated by *version mismatch*: the
extent cache compared the source's current version against the version
an entry was filled at, and any difference meant a full rescan of that
granule — correct, but the worst possible behaviour under mixed
read/write traffic, where a single-row insert threw away (and re-lifted)
hundred-thousand-row extents.  This module is the incremental path:

* a source adapter that observes its own writes appends a
  :class:`SourceDelta` (the per-relation :class:`DeltaRecord`\\ s of one
  version step) to its bounded :class:`DeltaLog`;
* the transport forwards :meth:`~DeltaLog.changes_since` questions to
  the agent and wraps the answer in a :class:`DeltaReply` — ``None``
  from the transport means *this store keeps no feed at all* (plain
  in-memory databases), while ``DeltaReply(chain=None)`` means *a feed
  exists but cannot serve this span* (a gap: records evicted from the
  ring, or a write the adapter did not observe);
* :meth:`ExtentCache.apply_deltas
  <repro.runtime.cache.ExtentCache.apply_deltas>` replays a contiguous
  chain onto every stale granule of the ``(agent, schema)`` pair —
  patching extent lists by OID and value sets by insertion, honouring
  shard ownership — and **falls back to targeted per-granule eviction,
  never a full generation bump**, for anything un-patchable.

Records carry *mapped* instances: the adapter runs the §3 pipeline
(type coercion, per-attribute data mappings, FK resolution) on the
written row before logging it, so the cache patches global O-terms and
never sees raw component values.  The ``"rescan"`` op is the adapter
saying "this relation's extent changed in a way I cannot express as row
records" — e.g. positional OIDs shifted after a physical delete, or a
write to an FK target changed how *other* relations' references
resolve — and always routes to the targeted-eviction fallback.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: operations a delta record can describe.  ``rescan`` is the explicit
#: un-patchable marker: the emitting adapter knows the relation changed
#: but cannot express the change as row records.
DELTA_OPS = ("insert", "delete", "update", "rescan")

#: how many version steps a :class:`DeltaLog` retains before the oldest
#: fall off the ring (readers further behind hit the gap fallback)
DEFAULT_LOG_CAPACITY = 256


class DeltaUnpatchable(Exception):
    """A chain cannot be replayed onto one cache variant; evict instead."""


@dataclasses.dataclass(frozen=True)
class DeltaRecord:
    """One row-level change, already lifted through the §3 pipeline.

    *instance* is the mapped global O-term after the write (``None`` for
    deletes and rescan markers); *oid* identifies the affected object
    (``None`` for rescan markers, which address a whole relation).
    """

    op: str
    relation: str
    oid: Any = None
    instance: Any = None

    def __post_init__(self) -> None:
        if self.op not in DELTA_OPS:
            raise ValueError(
                f"unknown delta op {self.op!r}; choose from {DELTA_OPS}"
            )


@dataclasses.dataclass(frozen=True)
class SourceDelta:
    """The records of one version step: *base_version* → *new_version*."""

    base_version: int
    new_version: int
    records: Tuple[DeltaRecord, ...] = ()


@dataclasses.dataclass(frozen=True)
class DeltaReply:
    """An agent's answer to ``changes_since``: the chain, or no chain.

    ``chain=None`` is the *gap* signal — a feed exists but cannot cover
    the requested span, so the cache must fall back to targeted
    eviction.  An **absent** reply (the transport returning ``None``)
    means the store keeps no feed at all; the cache then leaves entries
    to the ordinary lazy version-mismatch eviction and counts nothing.
    """

    chain: Optional[Tuple[SourceDelta, ...]]


class DeltaLog:
    """A bounded ring of :class:`SourceDelta`\\ s with contiguous replay.

    :meth:`changes_since` returns the suffix of deltas that walks a
    reader from *version* to the log's head — or ``None`` when no such
    contiguous chain exists (the reader is too far behind, the versions
    do not link up, or duplicated/out-of-order entries broke the chain).
    Callers treat ``None`` as the gap signal and fall back; they never
    guess.
    """

    def __init__(self, capacity: int = DEFAULT_LOG_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("delta log capacity must be positive")
        self._capacity = capacity
        self._deltas: List[SourceDelta] = []
        # a capacity eviction that lands mid-walk shifts every index the
        # cursor has already verified, so an unverified broken link can
        # end up inside the returned "contiguous" suffix; readers walk a
        # snapshot taken under this lock instead of the live list
        self._lock = threading.Lock()

    def record(self, delta: SourceDelta) -> None:
        """Append one version step, evicting the oldest past capacity."""
        with self._lock:
            self._deltas.append(delta)
            if len(self._deltas) > self._capacity:
                del self._deltas[: len(self._deltas) - self._capacity]

    def __len__(self) -> int:
        with self._lock:
            return len(self._deltas)

    @property
    def head_version(self) -> Optional[int]:
        """The newest version the log can replay to (None when empty)."""
        with self._lock:
            return self._deltas[-1].new_version if self._deltas else None

    def changes_since(self, version: int) -> Optional[Tuple[SourceDelta, ...]]:
        """The contiguous chain from *version* to the head, or ``None``.

        A reader already at the head gets the empty chain.  The walk
        runs backwards from the head so that if a version value ever
        recurs (content fingerprints may revisit an old value), the
        *latest* occurrence wins — only suffixes that actually reach the
        head are valid replay material.
        """
        with self._lock:
            deltas = tuple(self._deltas)
        if deltas and version == deltas[-1].new_version:
            return ()
        for start in range(len(deltas) - 1, -1, -1):
            if (
                start + 1 < len(deltas)
                and deltas[start].new_version != deltas[start + 1].base_version
            ):
                # the chain is broken here; nothing earlier can reach
                # the head, so no older suffix is servable
                return None
            if deltas[start].base_version == version:
                return tuple(deltas[start:])
        return None


def chain_is_contiguous(
    chain: Sequence[SourceDelta], since: int, target_version: int
) -> bool:
    """Does *chain* walk gaplessly from *since* to *target_version*?

    The cache's guard against feeds (or transports) that drop,
    duplicate or reorder entries: every link must extend the previous
    one exactly, and the walk must end at the version the caller just
    observed — anything else is treated as a gap and takes the
    targeted-eviction fallback rather than risking a stale patch.
    """
    cursor = since
    for delta in chain:
        if delta.base_version != cursor:
            return False
        cursor = delta.new_version
    return cursor == target_version


@dataclasses.dataclass
class DeltaOutcome:
    """What one :meth:`ExtentCache.apply_deltas` sync accomplished."""

    #: feed entries (version steps) replayed, counted once per distinct
    #: chain that patched at least one granule variant
    deltas_applied: int = 0
    #: cache variants brought to the target version in place
    granules_patched: int = 0
    #: ``(granule description, reason)`` for every variant evicted via
    #: the targeted fallback — the exact account the stats owe callers
    fallbacks: List[Tuple[str, str]] = dataclasses.field(default_factory=list)
    #: the store keeps no feed; nothing was patched or evicted
    feed_missing: bool = False


def _owned(oid: Any, shard_coord: Optional[Tuple[Any, ...]]) -> bool:
    """Does the granule's shard coordinate own *oid* (True unsharded)?"""
    if shard_coord is None:
        return True
    from .sharding import shard_of_oid  # lazy: sharding imports transport

    index, of, kind, band = shard_coord
    return shard_of_oid(oid, of, kind, band) == index


def _patch_extent(
    value: List[Any],
    records: Sequence[DeltaRecord],
    shard_coord: Optional[Tuple[Any, ...]],
) -> None:
    """Replay *records* onto an extent list in place (storage order).

    Inserts land at the tail — new rows carry the highest tuple numbers,
    which is exactly where a rescan would put them — deletes splice out,
    and updates replace in position, so a patched list stays ordered the
    way the adapter's scan orders it.
    """
    for record in records:
        if record.op == "rescan":
            raise DeltaUnpatchable("relation marked for rescan")
        if record.oid is None:
            raise DeltaUnpatchable(f"{record.op} record without an OID")
        position = next(
            (i for i, instance in enumerate(value) if instance.oid == record.oid),
            None,
        )
        owned = _owned(record.oid, shard_coord)
        if record.op == "delete":
            if position is not None:
                del value[position]
            continue
        if not owned:
            # an update cannot migrate an OID across shards (ownership is
            # a pure function of the OID), but stay defensive
            if position is not None:
                del value[position]
            continue
        if record.instance is None:
            raise DeltaUnpatchable(f"{record.op} record without an instance")
        if position is None:
            value.append(record.instance)
        else:
            value[position] = record.instance


def _patch_value_set(
    value: Any,
    records: Sequence[DeltaRecord],
    attribute: Optional[str],
    shard_coord: Optional[Tuple[Any, ...]],
) -> None:
    """Replay *records* onto a cached value set in place.

    Only inserts are patchable: a set has no multiplicity, so removing
    a deleted or overwritten value could drop one still contributed by
    another instance.  Deletes and updates raise, routing the variant
    to the targeted-eviction fallback.
    """
    for record in records:
        if record.op != "insert":
            raise DeltaUnpatchable(
                f"value_set cannot replay {record.op!r} (no multiplicity)"
            )
        if record.oid is None or record.instance is None:
            raise DeltaUnpatchable("insert record without an OID or instance")
        if not _owned(record.oid, shard_coord):
            continue
        assert attribute is not None
        inserted = record.instance.get(attribute)
        if inserted is None:
            continue
        if isinstance(inserted, frozenset):
            value.update(v for v in inserted if v is not None)
        else:
            value.add(inserted)


def patch_variant(
    value: Any,
    variant: Tuple[str, Optional[str]],
    records: Sequence[DeltaRecord],
    shard_coord: Optional[Tuple[Any, ...]] = None,
) -> None:
    """Replay *records* onto one cached variant's value in place.

    Raises :class:`DeltaUnpatchable` when the variant cannot absorb the
    chain; the caller evicts that variant (and only that variant).
    """
    op, attribute = variant
    if op in ("extent", "direct_extent"):
        _patch_extent(value, records, shard_coord)
    elif op == "value_set":
        _patch_value_set(value, records, attribute, shard_coord)
    else:
        raise DeltaUnpatchable(f"unknown cache variant {op!r}")


def describe_granule(
    key: Tuple[Any, ...], variant: Tuple[str, Optional[str]]
) -> str:
    """A granule name in :meth:`ScanRequest.describe` vocabulary —
    ``op(agent#index/of:schema.class.attribute)`` — so fallback stats
    read like every other per-granule account."""
    op, attribute = variant
    endpoint = str(key[0])
    if len(key) > 3:
        index, of = key[3][0], key[3][1]
        endpoint = f"{endpoint}#{index}/{of}"
    suffix = f".{attribute}" if attribute else ""
    return f"{op}({endpoint}:{key[1]}.{key[2]}{suffix})"


#: signature the cache expects for the per-sync chain fetcher
ChainFetcher = Callable[[int], Optional[DeltaReply]]
