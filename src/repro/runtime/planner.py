"""The federation query planner: prune, coalesce, push down.

The runtime executes one :class:`~repro.runtime.transport.ScanRequest`
per (agent, class, op, attribute); a multi-class query or Appendix-B
rule evaluation therefore pays many round-trips per agent.  This module
plans a :class:`~repro.federation.query.FederatedQuery` into a
:class:`QueryPlan` before any scan is dispatched:

1. **Prune** — the assertion-graph reachability argument §6's
   ``schema_integration`` applies at integration time is replayed at
   query time: starting from the queried class, a fixpoint over the
   integrated is-a links (descendant extents feed ancestors through the
   inheritance rules) and the evaluable derivation rules (a rule whose
   head can reach a relevant class makes its body classes relevant)
   yields the set of integrated classes that can possibly contribute a
   fact to the answer.  Everything else is never scanned and never
   lifted.  The closure is deliberately conservative: any indeterminate
   head or schematic (variable-class) body disables pruning for that
   path, so a planned query can only scan *less*, never answer less.
2. **Coalesce** — all granules bound for one endpoint ride a single
   batched round-trip (:func:`~repro.runtime.executor.coalesce_by_endpoint`
   builds the :class:`~repro.runtime.transport.BatchScanRequest`\\ s;
   the executors own that step since they own dispatch).
3. **Push down** — the query's attribute projections and simple
   equality predicates travel as a
   :class:`~repro.runtime.transport.ScanHint`: advisory,
   autonomy-preserving, and excluded from request identity, so hinted
   scans share cache granules with unhinted ones.

The planner sees only schema-level metadata (the integrated schema's
classes, links and rules) — never component data — so planning cost is
independent of extent sizes.
"""

from __future__ import annotations

import dataclasses
from typing import (
    TYPE_CHECKING,
    Container,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from ..logic.atoms import Atom
from ..logic.oterms import OTerm, parse_predicate
from .transport import ScanHint

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..federation.query import FederatedQuery
    from ..integration.result import IntegratedSchema

#: body predicates whose facts exist independently of class scans —
#: ``same_object`` comes from the identity specs, ``is_a`` from the
#: integrated schema itself — so they never widen the scan set
_SCAN_FREE_PREDICATES = frozenset({"same_object", "is_a"})


@dataclasses.dataclass(frozen=True)
class QueryPlan:
    """What one query needs from the federation, decided before dispatch."""

    #: the integrated class the query ranges over
    class_name: str
    #: integrated classes that can contribute facts to the answer
    contributing: FrozenSet[str]
    #: non-virtual integrated classes the plan skips (never scanned)
    pruned: Tuple[str, ...]
    #: (schema, local class) direct-extent scans the plan still needs
    pairs: Tuple[Tuple[str, str], ...]
    #: advisory projection/predicate pushdown for every planned scan
    hint: Optional[ScanHint] = None

    def allows(self, class_name: str) -> bool:
        """May *class_name* contribute to this query's answer?"""
        return class_name in self.contributing

    def describe(self) -> str:
        kept = len(self.contributing)
        return (
            f"plan({self.class_name}: {kept} classes kept, "
            f"{len(self.pruned)} pruned, {len(self.pairs)} scans"
            + (f", {self.hint.describe()}" if self.hint else "")
            + ")"
        )


class _RuleFeeds:
    """One evaluable rule's head/body coordinates for the fixpoint."""

    __slots__ = (
        "head_classes",
        "head_predicates",
        "head_indeterminate",
        "body_classes",
        "body_predicates",
        "body_schematic",
    )

    def __init__(self) -> None:
        self.head_classes: Set[str] = set()
        self.head_predicates: Set[str] = set()
        #: a variable class name (or non-O-term head) can derive facts
        #: about any class — such a rule always fires in the closure
        self.head_indeterminate = False
        self.body_classes: Set[str] = set()
        self.body_predicates: Set[str] = set()
        #: a schematic body ranges over every class — pruning must stop
        self.body_schematic = False


def _classify_rule(rule) -> _RuleFeeds:
    feeds = _RuleFeeds()
    for head in rule.heads:
        if isinstance(head, OTerm):
            if isinstance(head.class_name, str):
                feeds.head_classes.add(head.class_name)
            else:
                feeds.head_indeterminate = True
        elif isinstance(head, Atom):
            parsed = parse_predicate(head.predicate)
            if parsed is not None:
                feeds.head_classes.add(parsed[0])
            else:
                feeds.head_predicates.add(head.predicate)
        else:  # TypingOTerm or anything newer: be conservative
            feeds.head_indeterminate = True
    for item in rule.body:
        element = item.element
        if isinstance(element, OTerm):
            if isinstance(element.class_name, str):
                feeds.body_classes.add(element.class_name)
            else:
                feeds.body_schematic = True
        elif isinstance(element, Atom):
            parsed = parse_predicate(element.predicate)
            if parsed is not None:
                feeds.body_classes.add(parsed[0])
            else:
                feeds.body_predicates.add(element.predicate)
        # Comparisons and typing O-terms consume no scanned facts
    return feeds


def contributing_classes(
    integrated: "IntegratedSchema", class_name: str
) -> FrozenSet[str]:
    """The integrated classes whose extents can feed facts about
    *class_name* — the §6 pruning argument run at query time.

    Unknown classes (or any indeterminate rule shape encountered during
    the closure) fall back to *every* class: the planner never guesses.
    """
    all_classes = frozenset(integrated.classes)
    if class_name not in all_classes:
        return all_classes

    children: Dict[str, Set[str]] = {}
    for child, parent in integrated.is_a_links():
        children.setdefault(parent, set()).add(child)
    feeds = [_classify_rule(rule) for rule in integrated.evaluable_rules()]
    # base facts for same_object / is_a exist without any class scan —
    # but only treat them as scan-free if no rule also *derives* them
    derived_predicates: Set[str] = set()
    for rule in feeds:
        derived_predicates.update(rule.head_predicates)
    scan_free = _SCAN_FREE_PREDICATES - derived_predicates

    relevant: Set[str] = {class_name}
    relevant_predicates: Set[str] = set()
    changed = True
    while changed:
        changed = False
        # descendants feed ancestors: inst$parent(x) <= inst$child(x),
        # and lifting pushes a class's facts up its whole ancestor chain
        frontier = list(relevant)
        while frontier:
            for child in children.get(frontier.pop(), ()):
                if child not in relevant:
                    relevant.add(child)
                    frontier.append(child)
                    changed = True
        for rule in feeds:
            fires = (
                rule.head_indeterminate
                or not rule.head_classes.isdisjoint(relevant)
                or not rule.head_predicates.isdisjoint(relevant_predicates)
            )
            if not fires:
                continue
            if rule.body_schematic:
                return all_classes
            for body_class in rule.body_classes:
                if body_class not in relevant:
                    relevant.add(body_class)
                    changed = True
            for predicate in rule.body_predicates:
                if predicate not in scan_free and predicate not in relevant_predicates:
                    relevant_predicates.add(predicate)
                    changed = True
    return frozenset(relevant & all_classes)


def plan_query(
    integrated: "IntegratedSchema",
    query: "FederatedQuery",
    schemas: Optional[Container[str]] = None,
) -> QueryPlan:
    """Plan *query* against *integrated*: prune + build the pushdown hint.

    *schemas* restricts the scan pairs to component schemas the caller
    can actually reach (the FSM's registered databases); None keeps all
    origins.
    """
    contributing = contributing_classes(integrated, query.class_name)
    pruned: List[str] = []
    pairs: List[Tuple[str, str]] = []
    for integrated_class in integrated:
        if integrated_class.virtual:
            continue
        if integrated_class.name not in contributing:
            pruned.append(integrated_class.name)
            continue
        for schema_name, local_class in integrated_class.origins:
            if schemas is None or schema_name in schemas:
                pairs.append((schema_name, local_class))
    attributes = list(dict.fromkeys(
        [name for name, _ in query.where] + list(query.select)
    ))
    hint = ScanHint(attributes=tuple(attributes), equalities=tuple(query.where))
    return QueryPlan(
        class_name=query.class_name,
        contributing=contributing,
        pruned=tuple(pruned),
        pairs=tuple(dict.fromkeys(pairs)),
        hint=hint,
    )
