"""Runtime metrics: counters, phase timers, per-agent access histograms.

The paper's autonomy argument is *counted* — the FSM only ever fetches
single concept extensions from agents (§3, Appendix B) — and the
ROADMAP's heavy-traffic goal needs the hot path visible.  This module
makes both observable: a thread-safe :class:`RuntimeMetrics` collector
the executor and cache write into, and an immutable :class:`RuntimeStats`
snapshot with delta arithmetic (``after - before``) so callers can
attribute counts to a single query.

Counter vocabulary (all monotonic):

``requests``            scans asked of the runtime
``cache_hits`` / ``cache_misses``   extent-cache outcomes
``agent_scans``         granules that reached the transport
``round_trips``         dispatches on the wire (a coalesced batch of N
                        granules is N ``agent_scans`` but 1 round-trip;
                        unplanned traffic has the two counters equal)
``retries``             re-attempts after a failure
``transport_failures`` / ``timeouts``   failed attempts by kind
``breaker_trips``       circuits opened
``circuit_rejections``  calls fast-failed while a circuit was open
``scan_failures``       scans that exhausted retries
``partial_results``     fan-outs degraded to partial answers
``sharded_scans``       logical scans answered by scatter/merge
``missing_shards``      shard slices absent from a merged answer
``cache_restores``      entries reloaded from a persistent extent store
``planned_queries``     queries the planner pruned/coalesced
``pruned_classes``      integrated classes skipped by query-time pruning
``lost_granules``       granules lost when their batch's dispatch failed
``deltas_applied``      delta-feed version steps replayed into the cache
``granules_patched``    cache variants patched in place by delta chains
``fallback_invalidations``  variants evicted because a delta chain could
                        not patch them (gap / rescan marker / value-set
                        delete) — targeted eviction, never a full bump

Timer vocabulary includes the ``persistence`` phase: every persistent
extent-store interaction (the warm-restart reload, spills on fill,
write-through invalidations) accumulates there, so the disk tier's cost
is visible next to ``fan_out`` and ``query``.

Sharded runs additionally record *which* shard endpoints went missing:
:attr:`RuntimeStats.missing_shards` maps ``agent#index/of`` endpoint
names to how many merges they were absent from — the exact account the
partial failure policy promises (ISSUE 4).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, NamedTuple, Optional


class TimerStats(NamedTuple):
    """Aggregate wall-clock of one phase."""

    count: int
    total: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class RuntimeStats:
    """An immutable snapshot of the collector; supports ``a - b`` deltas."""

    def __init__(
        self,
        counters: Mapping[str, int],
        agent_scans: Mapping[str, int],
        timers: Mapping[str, TimerStats],
        missing_shards: Optional[Mapping[str, int]] = None,
        agent_round_trips: Optional[Mapping[str, int]] = None,
        lost_granules: Optional[Mapping[str, int]] = None,
        fallback_invalidations: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.counters: Dict[str, int] = dict(counters)
        self.agent_scans: Dict[str, int] = dict(agent_scans)
        self.timers: Dict[str, TimerStats] = dict(timers)
        #: shard endpoints absent from merged answers -> occurrence count
        self.missing_shards: Dict[str, int] = dict(missing_shards or {})
        #: wire dispatches per endpoint — the planner's coalescing win
        #: shows as this histogram dropping below :attr:`agent_scans`
        self.agent_round_trips: Dict[str, int] = dict(agent_round_trips or {})
        #: granule descriptions lost to failed batch dispatches -> count,
        #: the exact account a degraded planned fan-out owes the caller
        self.lost_granules: Dict[str, int] = dict(lost_granules or {})
        #: granule descriptions evicted by the delta fallback -> count —
        #: names exactly which variants a broken feed forced to rescan
        self.fallback_invalidations: Dict[str, int] = dict(
            fallback_invalidations or {}
        )

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def __sub__(self, earlier: "RuntimeStats") -> "RuntimeStats":
        counters = {
            name: value - earlier.counters.get(name, 0)
            for name, value in self.counters.items()
        }
        scans = {
            agent: value - earlier.agent_scans.get(agent, 0)
            for agent, value in self.agent_scans.items()
        }
        missing = {
            endpoint: value - earlier.missing_shards.get(endpoint, 0)
            for endpoint, value in self.missing_shards.items()
        }
        trips = {
            endpoint: value - earlier.agent_round_trips.get(endpoint, 0)
            for endpoint, value in self.agent_round_trips.items()
        }
        lost = {
            granule: value - earlier.lost_granules.get(granule, 0)
            for granule, value in self.lost_granules.items()
        }
        fallbacks = {
            granule: value - earlier.fallback_invalidations.get(granule, 0)
            for granule, value in self.fallback_invalidations.items()
        }
        timers = {}
        for phase, stats in self.timers.items():
            prior = earlier.timers.get(phase, TimerStats(0, 0.0, 0.0))
            delta_total = stats.total - prior.total
            # the true max of just the new samples is unrecoverable from
            # aggregates; their sum bounds it, and so does the overall max
            timers[phase] = TimerStats(
                stats.count - prior.count, delta_total, min(stats.max, delta_total)
            )
        return RuntimeStats(
            {k: v for k, v in counters.items() if v},
            {k: v for k, v in scans.items() if v},
            {k: v for k, v in timers.items() if v.count},
            {k: v for k, v in missing.items() if v},
            {k: v for k, v in trips.items() if v},
            {k: v for k, v in lost.items() if v},
            {k: v for k, v in fallbacks.items() if v},
        )

    def describe(self) -> str:
        """A readable report (the CLI's ``--stats`` output)."""
        lines = ["runtime stats:"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<22} {self.counters[name]}")
        if self.agent_scans:
            lines.append("  agent scans:")
            for agent in sorted(self.agent_scans):
                lines.append(f"    {agent:<20} {self.agent_scans[agent]}")
        if self.agent_round_trips:
            lines.append("  agent round-trips:")
            for endpoint in sorted(self.agent_round_trips):
                lines.append(
                    f"    {endpoint:<20} {self.agent_round_trips[endpoint]}"
                )
        if self.lost_granules:
            lines.append("  lost granules:")
            for granule in sorted(self.lost_granules):
                lines.append(f"    {granule:<20} {self.lost_granules[granule]}")
        if self.fallback_invalidations:
            lines.append("  fallback invalidations:")
            for granule in sorted(self.fallback_invalidations):
                lines.append(
                    f"    {granule:<20} {self.fallback_invalidations[granule]}"
                )
        if self.missing_shards:
            lines.append("  missing shards:")
            for endpoint in sorted(self.missing_shards):
                lines.append(f"    {endpoint:<20} {self.missing_shards[endpoint]}")
        if self.timers:
            lines.append("  phases:")
            for phase in sorted(self.timers):
                stats = self.timers[phase]
                lines.append(
                    f"    {phase:<20} n={stats.count}  "
                    f"total={stats.total * 1000:.2f}ms  "
                    f"mean={stats.mean * 1000:.2f}ms  "
                    f"max={stats.max * 1000:.2f}ms"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RuntimeStats({self.counters!r}, agents={self.agent_scans!r})"


class RuntimeMetrics:
    """Thread-safe collector the runtime components write into."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._agent_scans: Dict[str, int] = {}
        self._timers: Dict[str, TimerStats] = {}
        self._missing_shards: Dict[str, int] = {}
        self._agent_round_trips: Dict[str, int] = {}
        self._lost_granules: Dict[str, int] = {}
        self._fallback_invalidations: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def record_agent_scan(self, agent: str, count: int = 1) -> None:
        """*count* granules reached the transport for *agent* (a batch of
        N granules records N, keeping this histogram dispatch-shape
        independent — planned and unplanned runs scan the same granules)."""
        with self._lock:
            self._counters["agent_scans"] = (
                self._counters.get("agent_scans", 0) + count
            )
            self._agent_scans[agent] = self._agent_scans.get(agent, 0) + count

    def record_round_trip(self, endpoint: str) -> None:
        """One dispatch went on the wire to *endpoint* — batch or single."""
        with self._lock:
            self._counters["round_trips"] = self._counters.get("round_trips", 0) + 1
            self._agent_round_trips[endpoint] = (
                self._agent_round_trips.get(endpoint, 0) + 1
            )

    def record_lost_granule(self, description: str) -> None:
        """One granule of a failed batch dispatch could not be answered."""
        with self._lock:
            self._counters["lost_granules"] = (
                self._counters.get("lost_granules", 0) + 1
            )
            self._lost_granules[description] = (
                self._lost_granules.get(description, 0) + 1
            )

    def record_fallback_invalidation(self, description: str) -> None:
        """One cache variant was evicted because its delta chain could
        not patch it — the targeted fallback the delta path promises."""
        with self._lock:
            self._counters["fallback_invalidations"] = (
                self._counters.get("fallback_invalidations", 0) + 1
            )
            self._fallback_invalidations[description] = (
                self._fallback_invalidations.get(description, 0) + 1
            )

    def record_missing_shard(self, endpoint: str) -> None:
        """One shard endpoint's slice was absent from a merged answer."""
        with self._lock:
            self._counters["missing_shards"] = (
                self._counters.get("missing_shards", 0) + 1
            )
            self._missing_shards[endpoint] = self._missing_shards.get(endpoint, 0) + 1

    def record_phase(self, phase: str, elapsed: float) -> None:
        with self._lock:
            prior = self._timers.get(phase, TimerStats(0, 0.0, 0.0))
            self._timers[phase] = TimerStats(
                prior.count + 1, prior.total + elapsed, max(prior.max, elapsed)
            )

    @contextmanager
    def timer(self, phase: str) -> Iterator[None]:
        """Time a phase: ``with metrics.timer("lift_facts"): ...``."""
        started = self._clock()
        try:
            yield
        finally:
            self.record_phase(phase, self._clock() - started)

    # ------------------------------------------------------------------
    def snapshot(self) -> RuntimeStats:
        with self._lock:
            return RuntimeStats(
                self._counters,
                self._agent_scans,
                self._timers,
                self._missing_shards,
                self._agent_round_trips,
                self._lost_granules,
                self._fallback_invalidations,
            )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._agent_scans.clear()
            self._timers.clear()
            self._missing_shards.clear()
            self._agent_round_trips.clear()
            self._lost_granules.clear()
            self._fallback_invalidations.clear()
